"""Setuptools shim.

The execution environment is offline and lacks the ``wheel`` package,
so PEP 517 editable installs (which build a wheel) fail.  This shim
lets ``pip install -e . --no-build-isolation`` and
``python setup.py develop`` work with the legacy code path; all project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
