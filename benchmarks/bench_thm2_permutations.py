"""Theorem 2 — the BNB network self-routes ALL permutations.

The headline claim.  Exhaustive verification at N <= 8 (all 40320
permutations at N = 8, via the vectorized model for speed) and heavy
sampling to N = 4096; times the verification sweeps.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.analysis.verification import verify_router
from repro.core import BNBNetwork
from repro.permutations import random_permutation


@pytest.mark.parametrize("n", [2, 4])
def test_exhaustive_tiny(benchmark, n):
    report = benchmark(lambda: verify_router("bnb", n, mode="exhaustive"))
    assert report.all_delivered


def test_exhaustive_n8_fast_model(benchmark):
    """All 40320 permutations of 8 inputs through the vectorized model."""
    net = BNBNetwork(3)
    expected = np.arange(8)

    def route_all():
        delivered = 0
        for p in itertools.permutations(range(8)):
            out = net.route_fast(np.array(p, dtype=np.int64))
            delivered += bool((out == expected).all())
        return delivered

    delivered = benchmark.pedantic(route_all, rounds=1, iterations=1)
    assert delivered == 40320


@pytest.mark.parametrize("m", [4, 6, 8, 10, 12])
def test_sampled_delivery(benchmark, m):
    """100 random permutations per size, vectorized model."""
    net = BNBNetwork(m)
    n = 1 << m
    workloads = [
        np.array(random_permutation(n, rng=seed).to_list()) for seed in range(100)
    ]
    expected = np.arange(n)

    def route_all():
        return sum(
            bool((net.route_fast(w) == expected).all()) for w in workloads
        )

    assert benchmark.pedantic(route_all, rounds=1, iterations=1) == 100


@pytest.mark.parametrize("m", [6, 8, 10])
def test_object_model_delivery(benchmark, m):
    """The reference (unvectorized) model at moderate sizes."""
    net = BNBNetwork(m)
    n = 1 << m
    pi = random_permutation(n, rng=3)

    outputs = benchmark(lambda: net.route(pi.to_list())[0])
    assert all(w.address == a for a, w in enumerate(outputs))
