"""Table 1 — hardware complexities of Batcher, Koppelman and BNB.

Regenerates the paper's Table 1 rows from *constructed* networks
(structural counts, not just formulas), asserts the reproduced shape —
BNB's switch leading term is 2/3 of Batcher's and its total hardware
heads to 1/3 — and times the inventory construction.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import (
    batcher_function_slices,
    batcher_switch_slices,
    bnb_function_nodes,
    bnb_switch_slices,
)
from repro.analysis.tables import render_table1
from repro.hardware.accounting import (
    batcher_inventory,
    bnb_inventory,
    koppelman_inventory,
    table1_rows,
)


@pytest.mark.parametrize("m", [4, 6, 8, 10])
def test_table1_counts_from_structures(benchmark, m):
    """Constructed inventories equal Eq. 6 / Eq. 11 exactly."""

    def build():
        return table1_rows(m, w=0)

    rows = benchmark(build)
    n = 1 << m
    batcher, koppelman, bnb = rows
    assert batcher.switch_slices == batcher_switch_slices(n)
    assert batcher.function_units == batcher_function_slices(n)
    assert bnb.switch_slices == bnb_switch_slices(n)
    assert bnb.function_units == bnb_function_nodes(n)
    assert koppelman.adder_slices == n * m * m


def test_table1_shape_bnb_vs_batcher(benchmark, write_artifact):
    """The comparison's shape: BNB uses ~2/3 of Batcher's switches at
    leading order, far fewer function units, and its total-hardware
    ratio decreases monotonically toward 1/3."""

    def ratios():
        out = []
        for m in (4, 8, 12, 16, 20):
            n = 1 << m
            bnb = bnb_inventory(m) if m <= 12 else None
            switches_bnb = (
                bnb.switch_slices if bnb else bnb_switch_slices(n)
            )
            functions_bnb = (
                bnb.function_units if bnb else bnb_function_nodes(n)
            )
            switches_bat = batcher_switch_slices(n)
            functions_bat = batcher_function_slices(n)
            out.append(
                (
                    n,
                    switches_bnb / switches_bat,
                    (switches_bnb + functions_bnb)
                    / (switches_bat + functions_bat),
                )
            )
        return out

    series = benchmark(ratios)
    switch_ratios = [r for _n, r, _t in series]
    total_ratios = [t for _n, _r, t in series]
    # Switch ratio approaches (1/6)/(1/4) = 2/3 from above.
    assert all(r > 2 / 3 for r in switch_ratios)
    assert switch_ratios == sorted(switch_ratios, reverse=True)
    assert switch_ratios[-1] < 0.75
    # Total ratio decreases toward 1/3.
    assert total_ratios == sorted(total_ratios, reverse=True)
    assert total_ratios[-1] < 0.45

    lines = ["N | BNB/Batcher switches | BNB/Batcher total hardware"]
    lines += [f"{n} | {r:.4f} | {t:.4f}" for n, r, t in series]
    write_artifact("table1_ratios.txt", "\n".join(lines))


def test_table1_render(benchmark, write_artifact):
    """Render the full Table 1 at the paper-style sizes."""
    text = benchmark(lambda: render_table1(1024, w=16))
    assert "This paper" in text
    write_artifact("table1_n1024_w16.txt", text)
    write_artifact("table1_n256_w0.txt", render_table1(256, w=0))


def test_table1_koppelman_row_shape(benchmark):
    """Koppelman matches Batcher's switch order but adds adder slices;
    BNB needs no adders and fewer function units than Koppelman."""

    def inventories():
        return [
            (koppelman_inventory(m), bnb_inventory(m)) for m in (6, 8, 10)
        ]

    rows = benchmark(inventories)
    for koppelman, bnb in rows:
        assert koppelman.adder_slices > 0
        assert bnb.adder_slices == 0
        assert bnb.switch_slices < koppelman.switch_slices
        assert bnb.function_units < koppelman.function_units
