"""Ablation benches: how much each design choice buys.

DESIGN.md's load-bearing choices, measured by removal:

* MSB-first radix schedule (vs every other bit order);
* the arbiter's generate rule (vs pure flag forwarding);
* the nesting itself (vs a plain baseline network).
"""

from __future__ import annotations

import itertools

import pytest

from repro.analysis.ablations import (
    bare_baseline_delivery_fraction,
    bit_order_delivery_fraction,
    unbalance_after_ablated_splitter,
)


def test_bit_order_ablation(benchmark, write_artifact):
    def sweep():
        rows = []
        for order in itertools.permutations(range(3)):
            rows.append(
                (order, bit_order_delivery_fraction(3, list(order), samples=60))
            )
        return rows

    rows = benchmark(sweep)
    fractions = dict(rows)
    assert fractions[(0, 1, 2)] == 1.0  # the paper's schedule
    for order, fraction in rows:
        if order != (0, 1, 2):
            assert fraction < 1.0, order

    lines = ["bit order (0 = MSB) | delivered fraction (N=8, 60 samples)"]
    lines += [f"{order} | {fraction:.3f}" for order, fraction in rows]
    write_artifact("ablation_bit_order.txt", "\n".join(lines))


def test_generate_rule_ablation(benchmark, write_artifact):
    def sweep():
        worst = {}
        for p in (2, 3):
            n = 1 << p
            worst[n] = max(
                unbalance_after_ablated_splitter(list(bits))
                for bits in itertools.product([0, 1], repeat=n)
                if sum(bits) * 2 == n
            )
        return worst

    worst = benchmark(sweep)
    # Theorem 3 would require unbalance 0; the ablated splitter can be
    # maximally unbalanced (every 1 on an odd output).
    assert worst[4] == 2
    assert worst[8] == 4
    write_artifact(
        "ablation_generate_rule.txt",
        "\n".join(
            [f"sp({n.bit_length() - 1}) worst |M_e - M_o| without the "
             f"generate rule: {value}" for n, value in worst.items()]
        ),
    )


def test_nesting_ablation(benchmark, write_artifact):
    def sweep():
        return {
            1 << m: bare_baseline_delivery_fraction(m, samples=150, seed=m)
            for m in (3, 4, 5)
        }

    fractions = benchmark(sweep)
    assert fractions[8] > fractions[16] >= fractions[32]
    assert fractions[32] < 0.01
    lines = ["N | plain baseline delivered fraction (150 random perms)"]
    lines += [f"{n} | {f:.4f}" for n, f in sorted(fractions.items())]
    lines += ["(the BNB delivers 1.0 at every size; the nested sorting",
              " networks are what close this gap)"]
    write_artifact("ablation_nesting.txt", "\n".join(lines))
