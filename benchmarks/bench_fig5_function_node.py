"""Fig. 5 — the arbiter function node.

Regenerates the node's truth table from the gate netlist, checks the
"few gates" claim (4 gates, depth 3), measures its event-driven settle
time, and renders the schematic.
"""

from __future__ import annotations

import itertools

import pytest

from repro.hardware import build_function_node, function_node_truth
from repro.sim import GateLevelSimulator, UNIT_DELAYS
from repro.viz import render_function_node


def test_truth_table(benchmark):
    netlist = build_function_node()

    def evaluate_all():
        rows = []
        for x1, x2, z_down in itertools.product([0, 1], repeat=3):
            got = netlist.evaluate({"x1": x1, "x2": x2, "z_down": z_down})
            rows.append((x1, x2, z_down, got["z_up"], got["y1"], got["y2"]))
        return rows

    rows = benchmark(evaluate_all)
    for x1, x2, z_down, z_up, y1, y2 in rows:
        assert (z_up, y1, y2) == function_node_truth(x1, x2, z_down)


def test_few_gates_claim(benchmark):
    netlist = benchmark(build_function_node)
    assert netlist.gate_count == 4
    assert netlist.critical_path_length() == 3


def test_des_settle_time(benchmark):
    """One D_FN in the paper's unit model = at most 3 gate delays here;
    the DES confirms the node settles within its critical path."""
    netlist = build_function_node()
    simulator = GateLevelSimulator(netlist)

    def run_all():
        worst = 0.0
        for x1, x2, z_down in itertools.product([0, 1], repeat=3):
            result = simulator.run({"x1": x1, "x2": x2, "z_down": z_down})
            worst = max(worst, result.settle_time)
        return worst

    worst = benchmark(run_all)
    assert 0 < worst <= netlist.weighted_depth(UNIT_DELAYS)


def test_fig5_render(benchmark, write_artifact):
    text = benchmark(render_function_node)
    assert "z_u = x1 XOR x2" in text
    write_artifact("fig5_function_node.txt", text)
