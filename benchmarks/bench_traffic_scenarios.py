"""Traffic-scenario replay benchmark: the SLO gates behind ``repro replay``.

Replays three scenarios from :mod:`repro.traffic` through an in-process
gateway and writes ``traffic_scenarios.json``, which
``check_artifacts.py`` gates on:

* **uniform** — the no-contention baseline delivers every word;
* **multicast** — the copy-network expansion delivers 100% of the
  expanded copies (every copy of every fanout reaches its output);
* **qos_hotspot** — two tenant classes (gold weight 8, bronze weight 1)
  share one hotspot stream at offered load >= 1.0: the weighted class's
  p99 latency must not exceed the unweighted class's, and no tenant may
  starve (every admitted word delivered).

``BENCH_TRAFFIC_QUICK=1`` shrinks the event counts for CI smoke runs;
the gates are identical in both modes.  The tuned replay parameters
(burst 32, capacity 64, hot fraction 1/16) are documented in
``docs/traffic.md`` — small bursts interleave the classes within each
destination queue, which is what makes per-class tails separable at all.
"""

from __future__ import annotations

import asyncio
import json
import os

from repro.server import AsyncGateway, GatewayConfig
from repro.traffic import Scenario, TenantSpec, replay_scenario

QUICK = bool(os.environ.get("BENCH_TRAFFIC_QUICK"))
#: The QoS gate needs enough events to saturate the hot output (offered
#: load >= 1.0 including retry re-offers); 3000 clears it with margin.
EVENTS = 3000 if QUICK else 6000
M = 4  # N=16: small enough to saturate, large enough for real contention
SEED = 1

#: The two-class contention scenario the QoS gate measures.  One hot
#: output (hot_fraction 1/16 of N=16) absorbs 90% of the words, so both
#: classes queue behind the same destination and the deficit-weighted
#: scheduler is the only thing separating their latency tails.
QOS_SCENARIO = Scenario(
    name="qos_hotspot",
    description=(
        "gold (weight 8) vs bronze (weight 1) on a single-hot-output "
        "stream, equal offered shares"
    ),
    distribution="hotspot",
    hot_fraction=1 / 16,
    hot_weight=0.9,
    tenants=(
        TenantSpec("gold", weight=8, share=0.5),
        TenantSpec("bronze", weight=1, share=0.5),
    ),
)

#: Scenario name -> report document, filled by the tests in definition
#: order and written out by the final test.
RESULTS = {}


def _replay(scenario, *, tenants=None, events=EVENTS):
    config = GatewayConfig(
        m=M,
        queue_capacity=64,
        engine="vector",
        tenants=tenants,
    )

    async def run():
        async with AsyncGateway(config) as gateway:
            return await replay_scenario(
                gateway,
                scenario,
                events=events,
                seed=SEED,
                burst=32,
                retry_attempts=512,
            )

    return asyncio.run(run())


def test_uniform_baseline(benchmark):
    report = benchmark.pedantic(
        lambda: _replay("uniform"), rounds=1, iterations=1
    )
    assert report.words_delivered == report.words_offered
    assert not report.check_slos(require_delivery=True)
    RESULTS["uniform"] = report.to_document()


def test_multicast_copies_delivered(benchmark):
    report = benchmark.pedantic(
        lambda: _replay("multicast"), rounds=1, iterations=1
    )
    # The headline multicast gate: every expanded copy reaches its
    # output — fanout never silently degrades to partial delivery.
    assert report.multicast_copies > 0
    assert report.multicast_delivered == report.multicast_copies
    assert report.words_delivered == report.words_offered
    RESULTS["multicast"] = report.to_document()


def test_qos_hotspot_differentiation(benchmark):
    report = benchmark.pedantic(
        lambda: _replay(
            QOS_SCENARIO, tenants=QOS_SCENARIO.tenant_weights
        ),
        rounds=1,
        iterations=1,
    )
    document = report.to_document()
    # The replay saturates the hot output: offered load (including
    # retry re-offers) of at least fabric capacity.
    assert report.offered_load is not None and report.offered_load >= 1.0
    gold = document["tenants"]["gold"]["latency_cycles"]
    bronze = document["tenants"]["bronze"]["latency_cycles"]
    assert gold["p99"] <= bronze["p99"], (
        f"weight-8 gold p99 {gold['p99']} worse than bronze {bronze['p99']}"
    )
    assert gold["p50"] <= bronze["p50"]
    # No tenant starves: every admitted word is delivered.
    for tenant, row in document["tenants"].items():
        assert row["delivered"] == row["offered"], f"{tenant} starved"
    RESULTS["qos_hotspot"] = document


def test_write_artifact(write_artifact):
    assert set(RESULTS) == {"uniform", "multicast", "qos_hotspot"}
    write_artifact(
        "traffic_scenarios.json",
        json.dumps(
            {
                "quick": QUICK,
                "events": EVENTS,
                "n": 1 << M,
                "scenarios": RESULTS,
            },
            indent=2,
        ),
    )
