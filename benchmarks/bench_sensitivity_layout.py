"""Technology-sensitivity and layout benches (library extensions).

* The delay advantage is unconditional in the technology constants
  (the switch terms of Eq. 9 and Eq. 12 are identical), swept and
  tabulated over D_SW/D_FN ratios.
* The wire-length model quantifies the "good regularity" remark:
  later GBN connections are block-local, and total BNB wiring grows
  super-linearly — the physical-design cost the unit model hides.
"""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    advantage_ratio_sweep,
    delay_advantage_holds,
    switch_terms_identical,
)
from repro.hardware.layout import bnb_total_wire_length, gbn_wiring_costs


def test_technology_sweep(benchmark, write_artifact):
    n = 1 << 10

    def sweep():
        return advantage_ratio_sweep(
            n, ratios=(0.0, 0.1, 0.5, 1.0, 2.0, 10.0, 100.0)
        )

    rows = benchmark(sweep)
    values = [value for _ratio, value in rows]
    assert values == sorted(values)
    assert values[-1] <= 1.0
    assert all(switch_terms_identical(1 << m) for m in range(1, 12))
    assert all(
        delay_advantage_holds(n, d_sw, d_fn)
        for d_sw in (0.0, 1.0, 7.5)
        for d_fn in (0.5, 1.0, 4.0)
    )
    lines = ["D_SW/D_FN | BNB/Batcher delay ratio (N=1024)"]
    lines += [f"{ratio:9.1f} | {value:.4f}" for ratio, value in rows]
    lines.append("(identical switch paths: the advantage never inverts)")
    write_artifact("sensitivity_technology.txt", "\n".join(lines))


@pytest.mark.parametrize("m", [4, 6, 8])
def test_gbn_wiring_locality(benchmark, m):
    costs = benchmark(lambda: gbn_wiring_costs(m))
    totals = [cost.total_length for cost in costs]
    assert totals == sorted(totals, reverse=True)


def test_bnb_wiring_growth(benchmark, write_artifact):
    def series():
        return {m: bnb_total_wire_length(m, w=0) for m in range(2, 9)}

    lengths = benchmark(series)
    # Wiring grows faster than the switch count's N log^3 N? At least
    # super-linearly in N.
    for m in range(2, 8):
        assert lengths[m + 1] > 2 * lengths[m]
    lines = ["m | N | total vertical wire length (w=0)"]
    lines += [f"{m} | {1 << m} | {length}" for m, length in lengths.items()]
    write_artifact("layout_wire_growth.txt", "\n".join(lines))
