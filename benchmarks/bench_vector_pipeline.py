"""Object engine vs compiled vector engine: pipelined cycles per second.

The ISSUE 4 acceptance benchmark: the same cycle-accurate schedule —
offer one fresh permutation per cycle, step, repeat — clocked once on
the reference object-model :class:`PipelinedBNBFabric` and once on the
compiled-plan numpy :class:`VectorPipelinedFabric`, at m in {6, 8, 10}.
The vector engine must sustain **>= 10x** the object engine's
cycles/sec at m=8 (measured ~15x in the container this grew up in),
and the gateway must still fill frames (>= 0.9 steady-state fill at
offered load 1.0) when its planes run the vector engine.

``BENCH_VECTOR_QUICK=1`` (the CI smoke) trims the sweep to m in
{6, 8} and shortens the runs; the m=8 speedup bar still applies.

Findings (see ``benchmarks/out/vector_pipeline.json``):

* the object engine walks every word through every splitter as Python
  objects, so its cycle cost grows ~ N log^2 N interpreter operations;
* the vector engine's cycle cost is a handful of whole-array numpy
  passes per stage, so the gap *widens* with m — the compiled plan is
  how the software model starts behaving like the hardware it models;
* sampled boundary verification (the serving layer's integrity check)
  preserves the gap: the gateway at m=4, vector planes, load 1.0 fills
  frames exactly like the object-plane run in ``bench_gateway_load``.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.pipeline import PipelinedBNBFabric
from repro.core.pipeline_fast import VectorPipelinedFabric
from repro.permutations import random_permutation
from repro.server import AsyncGateway, GatewayConfig

from bench_gateway_load import drive_open_loop

QUICK = bool(os.environ.get("BENCH_VECTOR_QUICK"))
SWEEP_MS = (6, 8) if QUICK else (6, 8, 10)
CYCLES = {6: 60, 8: 40, 10: 20} if QUICK else {6: 200, 8: 120, 10: 40}
SPEEDUP_BAR_M = 8
SPEEDUP_BAR = 10.0


def _cycles_per_sec(fabric_cls, m: int, cycles: int) -> float:
    """Steady-state offered-every-cycle throughput of one engine."""
    n = 1 << m
    # Pre-generate the permutations so the measurement window times the
    # engines, not the generator.
    perms = [
        random_permutation(n, rng=seed).to_list() for seed in range(8)
    ]
    fabric = fabric_cls(m, retain_delivered=False)
    for k in range(m + 1):  # fill the pipeline before the clock starts
        fabric.offer(perms[k % len(perms)], tag=("warmup", k))
        fabric.step()
    start = time.perf_counter()
    for k in range(cycles):
        fabric.offer(perms[k % len(perms)], tag=k)
        fabric.step()
    elapsed = time.perf_counter() - start
    assert fabric.delivered_count >= cycles  # back-to-back, no bubbles
    return cycles / elapsed


def test_vector_engine_speedup(write_artifact):
    """The compiled engine clears the 10x bar at m=8 and the gap widens."""
    rows = []
    for m in SWEEP_MS:
        cycles = CYCLES[m]
        object_rate = _cycles_per_sec(PipelinedBNBFabric, m, cycles)
        vector_rate = _cycles_per_sec(VectorPipelinedFabric, m, cycles)
        rows.append(
            {
                "m": m,
                "n": 1 << m,
                "cycles_timed": cycles,
                "object_cycles_per_sec": object_rate,
                "vector_cycles_per_sec": vector_rate,
                "speedup": vector_rate / object_rate,
            }
        )

    by_m = {row["m"]: row for row in rows}
    # ISSUE acceptance: >= 10x at m=8 (measured ~15x; headroom for CI).
    assert by_m[SPEEDUP_BAR_M]["speedup"] >= SPEEDUP_BAR, by_m[SPEEDUP_BAR_M]
    for row in rows:
        assert row["speedup"] > 1.0, row

    # The gateway keeps its saturation behaviour on vector planes.
    gateway = AsyncGateway(
        GatewayConfig(m=4, planes=1, queue_capacity=16, engine="vector")
    )
    load = 1.0
    gateway_row = drive_open_loop(
        gateway, load, 120 if QUICK else 300, 20 if QUICK else 50
    )
    assert gateway_row["steady_fill"] >= 0.9
    assert gateway_row["words_delivered"] == gateway_row["words_accepted"]
    stats = gateway.stats()
    assert stats["planes"][0]["kind"] == "VectorPlane"
    assert stats["planes"][0]["full_verifies"] > 0

    artifact = {
        "benchmark": "vector_pipeline",
        "quick": QUICK,
        "speedup_bar": SPEEDUP_BAR,
        "speedup_bar_m": SPEEDUP_BAR_M,
        "sweep": rows,
        "gateway": {
            "m": 4,
            "engine": "vector",
            "offered_load": load,
            "steady_fill": gateway_row["steady_fill"],
            "words_delivered": gateway_row["words_delivered"],
            "words_accepted": gateway_row["words_accepted"],
            "full_verifies": stats["planes"][0]["full_verifies"],
            "spot_verifies": stats["planes"][0]["spot_verifies"],
        },
    }
    write_artifact("vector_pipeline.json", json.dumps(artifact, indent=2))
