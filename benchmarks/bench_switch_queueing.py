"""Queueing benchmark: the BNB fabric inside an input-queued switch.

Extension beyond the paper: packet-level simulation around the routing
fabric.  Reproduced shape — the textbook input-queueing results:

* FIFO input queues saturate near the HOL-blocking limit
  ``2 - sqrt(2) ~ 0.586`` under uniform overload;
* virtual output queues (VOQ) with maximal matching sustain >0.85;
* latency diverges at saturation for FIFO while VOQ stays bounded.
"""

from __future__ import annotations

import pytest

from repro.sim import SwitchSimulator


@pytest.mark.parametrize("mode", ["fifo", "voq"])
def test_saturation_throughput(benchmark, mode, write_artifact):
    stats = benchmark.pedantic(
        lambda: SwitchSimulator(4, mode=mode, seed=13).run(400, load=1.0),
        rounds=1,
        iterations=1,
    )
    if mode == "fifo":
        assert 0.5 < stats.throughput < 0.72
    else:
        assert stats.throughput > 0.85
    write_artifact(
        f"queueing_saturation_{mode}.txt",
        f"{mode} N=16 load=1.0: throughput={stats.throughput:.3f} "
        f"mean latency={stats.mean_latency:.1f} "
        f"max queue={stats.max_queue_depth}",
    )


def test_load_sweep(benchmark, write_artifact):
    """Throughput/latency curves over offered load for both queueing
    disciplines — the figure every switching paper draws."""

    def sweep():
        rows = []
        for load in (0.2, 0.4, 0.55, 0.7, 0.85, 1.0):
            for mode in ("fifo", "voq"):
                stats = SwitchSimulator(4, mode=mode, seed=29).run(300, load)
                rows.append((load, mode, stats.throughput, stats.mean_latency))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_key = {(load, mode): (tp, lat) for load, mode, tp, lat in rows}
    # Below the HOL limit both disciplines carry the offered load.
    for load in (0.2, 0.4, 0.55):
        assert by_key[(load, "fifo")][0] == pytest.approx(load, abs=0.06)
        assert by_key[(load, "voq")][0] == pytest.approx(load, abs=0.06)
    # Above it, FIFO flatlines while VOQ keeps carrying.
    assert by_key[(1.0, "fifo")][0] < 0.72
    assert by_key[(1.0, "voq")][0] > 0.85
    assert by_key[(1.0, "fifo")][1] > by_key[(1.0, "voq")][1]

    lines = ["load | mode | throughput | mean latency"]
    lines += [
        f"{load:.2f} | {mode:4s} | {tp:.3f} | {lat:8.2f}"
        for load, mode, tp, lat in rows
    ]
    write_artifact("queueing_load_sweep.txt", "\n".join(lines))


def test_clos_route_cost(benchmark):
    """Clos rearrangeable routing (repeated matchings) per permutation."""
    from repro.baselines import ClosNetwork
    from repro.permutations import random_permutation

    clos = ClosNetwork(4, 4, 8)  # N = 32
    workload = [random_permutation(32, rng=s) for s in range(8)]
    state = {"i": 0}

    def route_once():
        pi = workload[state["i"] % len(workload)]
        state["i"] += 1
        return clos.route(pi.to_list())

    outputs = benchmark(route_once)
    assert [w.address for w in outputs] == list(range(32))
