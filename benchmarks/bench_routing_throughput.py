"""Software routing throughput of all implemented networks.

Not a claim from the paper (the paper's costs are hardware units), but
the natural systems benchmark for this library: how fast each router
processes permutations, and how the self-routing BNB compares with the
globally-routed Benes whose setup cost motivated it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BatcherNetwork, BenesNetwork, KoppelmanSRPN
from repro.core import BNBNetwork
from repro.permutations import random_permutation


def _workload(n, count=16):
    return [random_permutation(n, rng=seed).to_list() for seed in range(count)]


@pytest.mark.parametrize("m", [6, 8])
def test_bnb_object_model(benchmark, m):
    net = BNBNetwork(m)
    workload = _workload(1 << m)
    state = {"i": 0}

    def route():
        addresses = workload[state["i"] % len(workload)]
        state["i"] += 1
        return net.route(addresses)[0]

    outputs = benchmark(route)
    assert all(w.address == a for a, w in enumerate(outputs))


@pytest.mark.parametrize("m", [8, 10, 12])
def test_bnb_vectorized(benchmark, m):
    net = BNBNetwork(m)
    n = 1 << m
    workload = [np.array(w) for w in _workload(n)]
    state = {"i": 0}

    def route():
        array = workload[state["i"] % len(workload)]
        state["i"] += 1
        return net.route_fast(array)

    out = benchmark(route)
    assert (out == np.arange(n)).all()


@pytest.mark.parametrize("m", [6, 8])
def test_batcher_throughput(benchmark, m):
    net = BatcherNetwork(m)
    workload = _workload(1 << m)
    state = {"i": 0}

    def route():
        addresses = workload[state["i"] % len(workload)]
        state["i"] += 1
        return net.route(addresses)[0]

    outputs = benchmark(route)
    assert all(w.address == a for a, w in enumerate(outputs))


@pytest.mark.parametrize("m", [6, 8])
def test_benes_setup_plus_route(benchmark, m):
    """The Benes pays the looping algorithm on every permutation —
    the 'global routing overhead' of the paper's introduction."""
    net = BenesNetwork(m)
    workload = _workload(1 << m)
    state = {"i": 0}

    def route():
        addresses = workload[state["i"] % len(workload)]
        state["i"] += 1
        return net.route(addresses)[0]

    outputs = benchmark(route)
    assert all(w.address == a for a, w in enumerate(outputs))


@pytest.mark.parametrize("m", [6, 8])
def test_koppelman_throughput(benchmark, m):
    net = KoppelmanSRPN(m)
    workload = _workload(1 << m)
    state = {"i": 0}

    def route():
        addresses = workload[state["i"] % len(workload)]
        state["i"] += 1
        return net.route(addresses)

    outputs = benchmark(route)
    assert all(w.address == a for a, w in enumerate(outputs))
