"""Fig. 3 — the NB(i, l) / BSN(i, l) profile of the BNB network.

Regenerates the per-stage nested-network inventory, checks the slice
accounting the cost model relies on (a P-input nested network carries
log P + w slices), and renders the profile.
"""

from __future__ import annotations

import pytest

from repro.core import BNBNetwork
from repro.viz import render_bnb_profile


@pytest.mark.parametrize("m", [3, 5, 8])
def test_profile_inventory(benchmark, m):
    net = BNBNetwork(m, w=4)
    profile = benchmark(net.profile)
    assert len(profile) == m
    for i, stage in enumerate(profile):
        assert len(stage) == 1 << i
        for l, spec in enumerate(stage):
            assert spec.label == f"NB({i},{l})"
            assert spec.size == 1 << (m - i)
            assert spec.slice_count == (m - i) + 4


@pytest.mark.parametrize("m", [3, 6, 9])
def test_profile_totals_drive_cost(benchmark, m):
    """Summing the profile reproduces the network's switch count —
    the profile IS the cost model's input."""
    net = BNBNetwork(m, w=2)

    def total_from_profile():
        total = 0
        for spec in net.nested_network_specs():
            p = spec.size_exponent
            total += (spec.size // 2) * p * spec.slice_count
        return total

    assert benchmark(total_from_profile) == net.switch_count


def test_fig3_render(benchmark, write_artifact):
    text = benchmark(lambda: render_bnb_profile(3, w=1))
    assert "NB(1,1)" in text
    write_artifact("fig3_profile_8.txt", text)
