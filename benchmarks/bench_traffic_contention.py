"""Contended-traffic benchmark: multipass routing on the BNB fabric.

Extension beyond the paper (which routes full permutations): random
many-to-one traffic is delivered in rounds equal to the worst output
contention, using the partial-permutation completion to keep every
round inside Theorem 2's precondition.
"""

from __future__ import annotations

import random

import pytest

from repro.core import BNBNetwork, MultipassRouter, route_partial
from repro.permutations import (
    TrafficSampler,
    partial_fill_destinations,
    random_permutation,
)


def _uniform_random_traffic(n, load, rng):
    """Each input holds a request with probability *load*, destination
    uniform — the classic output-queued switch workload."""
    requests = []
    for j in range(n):
        if rng.random() < load:
            requests.append((rng.randrange(n), f"pkt{j}"))
        else:
            requests.append(None)
    return requests


@pytest.mark.parametrize("m", [4, 6])
def test_partial_permutation_pass(benchmark, m):
    net = BNBNetwork(m)
    n = 1 << m
    rng = random.Random(m)
    pi = random_permutation(n, rng=1)
    requests = [
        (pi(j), f"pkt{j}") if rng.random() < 0.5 else None for j in range(n)
    ]
    result = benchmark(lambda: route_partial(net, requests))
    active = sum(1 for r in requests if r is not None)
    assert result.active_count == active
    assert sum(1 for o in result.outputs if o is not None) == active


@pytest.mark.parametrize("load", [0.25, 0.5, 1.0])
def test_multipass_rounds_scale_with_contention(benchmark, load, write_artifact):
    m = 5
    net = BNBNetwork(m)
    router = MultipassRouter(net)
    n = 1 << m
    rng = random.Random(17)
    workloads = [_uniform_random_traffic(n, load, rng) for _ in range(6)]
    state = {"i": 0}

    def route_one():
        requests = workloads[state["i"] % len(workloads)]
        state["i"] += 1
        return router.route(requests)

    result = benchmark(route_one)
    # Every request delivered exactly once.
    requests = workloads[(state["i"] - 1) % len(workloads)]
    delivered = sorted(
        payload
        for output in range(n)
        for payload in result.all_payloads_at(output)
    )
    expected = sorted(req[1] for req in requests if req is not None)
    assert delivered == expected
    assert result.rounds == result.max_multiplicity


def test_contention_statistics(benchmark, write_artifact):
    """Round counts over many random workloads: the expected maximum
    multiplicity grows ~ log n / log log n at full load."""
    m = 5
    router = MultipassRouter(BNBNetwork(m))
    n = 1 << m
    rng = random.Random(23)

    def collect():
        per_load = {}
        for load in (0.25, 0.5, 1.0):
            rounds = [
                router.route(_uniform_random_traffic(n, load, rng)).rounds
                for _ in range(20)
            ]
            per_load[load] = sum(rounds) / len(rounds)
        return per_load

    averages = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert averages[0.25] <= averages[0.5] <= averages[1.0]
    assert averages[1.0] >= 2  # contention is essentially certain
    lines = ["offered load | mean rounds to deliver (N=32, 20 workloads)"]
    lines += [f"{load:.2f} | {mean:.2f}" for load, mean in averages.items()]
    write_artifact("traffic_contention.txt", "\n".join(lines))


def test_skew_inflates_rounds(benchmark, write_artifact):
    """Destination skew drives the round count: the same scenario
    distributions ``repro replay`` serves (uniform, Zipf, hotspot — see
    docs/traffic.md), routed offline at full load.  The hotter the
    distribution, the more passes the fabric needs."""
    m = 5
    n = 1 << m
    router = MultipassRouter(BNBNetwork(m))

    def mean_rounds(distribution, **knobs):
        sampler = TrafficSampler(
            n, distribution, rng=random.Random(7), **knobs
        )
        totals = [
            router.route(
                [(dest, f"pkt{j}") for j, dest in
                 enumerate(sampler.destinations(n))]
            ).rounds
            for _ in range(12)
        ]
        return sum(totals) / len(totals)

    def collect():
        return {
            "uniform": mean_rounds("uniform"),
            "zipf": mean_rounds("zipf", zipf_alpha=1.3),
            "hotspot": mean_rounds(
                "hotspot", hot_fraction=1 / 16, hot_weight=0.9
            ),
        }

    rounds = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert rounds["uniform"] < rounds["zipf"] < rounds["hotspot"]
    lines = ["distribution | mean rounds to deliver (N=32, full load)"]
    lines += [f"{name} | {mean:.2f}" for name, mean in rounds.items()]
    write_artifact("traffic_skew_rounds.txt", "\n".join(lines))


@pytest.mark.parametrize("fill", [0.25, 0.75])
def test_partial_fill_single_pass(benchmark, fill):
    """A partial-fill frame (distinct destinations) always routes in
    one pass, whatever the fill factor — the property the scheduler's
    coalescer relies on."""
    m = 5
    net = BNBNetwork(m)
    n = 1 << m
    rng = random.Random(int(fill * 100))
    frames = [
        [
            (dest, f"pkt{line}") if dest is not None else None
            for line, dest in
            enumerate(partial_fill_destinations(n, fill, rng=rng))
        ]
        for _ in range(8)
    ]
    state = {"i": 0}

    def route_one():
        frame = frames[state["i"] % len(frames)]
        state["i"] += 1
        return route_partial(net, frame)

    result = benchmark(route_one)
    assert result.active_count == round(fill * n)
