"""Backend arena: every compiled routing engine, measured head to head.

The ISSUE 9 acceptance benchmark.  Each registered backend (the compiled
BNB vector engine, the object-model reference, the KR-Benes looping
tables, the multiway comparator sorter) is differentially verified
against the crossbar oracle and then timed per ``(m, workload class)``
cell — ``single`` (one frame per ``route_frame`` call, the latency
shape) and ``batch`` (``batch_window`` frames per ``route_frame_batch``
call, the throughput shape).  The winner of each cell is whatever the
clock says on this machine; the acceptance bar is that the measurement
*matters*: on at least two cells the winner must beat the slowest
candidate by >= 1.2x (measured spreads run 25-200x in the container
this grew up in).

``BENCH_ARENA_QUICK=1`` (the CI smoke) trims the sweep to m in {3, 5}
and shortens the timing loops; the spread bar still applies.

Findings (see ``benchmarks/out/backend_arena.json``):

* the multiway sorter's handful of whole-array comparator passes win
  both workloads at every measured m — sorting-by-destination costs
  O(log^2 N) vectorized stages but each stage is one fancy-index pass;
* KR-Benes is latency-competitive (the Waksman looping dominates; the
  compiled gather application is nearly free) but cannot amortize the
  per-frame control computation across a batch, so it falls behind on
  the batch workload;
* the object engine loses every cell by 1-2 orders of magnitude, which
  is exactly why ``engine="auto"`` exists: the gateway should never
  guess when it can measure.
"""

from __future__ import annotations

import json
import os

from repro.backends import (
    backend_names,
    calibrate,
    clear_arena_cache,
    select_backend,
    verify_backend,
)

QUICK = bool(os.environ.get("BENCH_ARENA_QUICK"))
SWEEP_MS = (3, 5) if QUICK else (3, 5, 7)
FRAMES = 6 if QUICK else 16
BATCH_WINDOW = 16 if QUICK else 32
REPEATS = 2 if QUICK else 3
VERIFY_SAMPLES = 4 if QUICK else 12
SPREAD_BAR = 1.2
SPREAD_CELLS = 2


def test_backend_arena(write_artifact):
    """Calibrate every backend per (m, workload); the spread bar holds."""
    clear_arena_cache()  # measure fresh, not whatever this process cached
    names = backend_names()
    assert {"bnb", "bnb-object", "krbenes", "msorter"} <= set(names)

    verified = {
        name: {
            str(m): verify_backend(name, m, samples=VERIFY_SAMPLES)
            for m in SWEEP_MS
        }
        for name in names
    }

    cells = []
    for m in SWEEP_MS:
        table = calibrate(
            m,
            frames=FRAMES,
            batch_window=BATCH_WINDOW,
            repeats=REPEATS,
            verify_samples=VERIFY_SAMPLES,
        )
        for workload, costs in table.items():
            decision = select_backend(m, workload=workload)
            assert decision.backend == min(costs, key=costs.__getitem__)
            cells.append(
                {
                    "m": m,
                    "n": 1 << m,
                    "workload": workload,
                    "winner": decision.backend,
                    "spread": decision.spread,
                    "seconds_per_frame": {
                        name: costs[name] for name in sorted(costs)
                    },
                    "frames_per_sec": {
                        name: 1.0 / costs[name] for name in sorted(costs)
                    },
                }
            )

    # Acceptance: the measured choice matters on >= 2 cells.
    decisive = [cell for cell in cells if cell["spread"] >= SPREAD_BAR]
    assert len(decisive) >= SPREAD_CELLS, [
        (cell["m"], cell["workload"], cell["spread"]) for cell in cells
    ]
    for cell in cells:
        for cost in cell["seconds_per_frame"].values():
            assert cost > 0.0, cell

    artifact = {
        "benchmark": "backend_arena",
        "quick": QUICK,
        "spread_bar": SPREAD_BAR,
        "spread_cells_required": SPREAD_CELLS,
        "backends": names,
        "verified_frames": verified,
        "cells": cells,
    }
    write_artifact("backend_arena.json", json.dumps(artifact, indent=2))
