"""Statistical-bias benches: is the fabric fair?

Chi-square tests over routed traffic (extensions; scipy): switch
controls behave as fair coins and no output position is favoured.
"""

from __future__ import annotations

import pytest

from repro.analysis.distributions import (
    exchange_count_dispersion,
    first_stage_control_bias,
    output_position_uniformity,
)


def test_control_fairness(benchmark, write_artifact):
    report = benchmark.pedantic(
        lambda: first_stage_control_bias(4, samples=120, seed=3),
        rounds=1,
        iterations=1,
    )
    assert report.unbiased_at(alpha=0.01)
    write_artifact(
        "bias_controls.txt",
        f"first-stage controls: chi2={report.statistic:.3f} "
        f"p={report.p_value:.3f} over {report.observations} decisions "
        f"(fair at alpha=0.01)",
    )


def test_output_uniformity(benchmark, write_artifact):
    report = benchmark.pedantic(
        lambda: output_position_uniformity(3, input_line=2, samples=320, seed=5),
        rounds=1,
        iterations=1,
    )
    assert report.unbiased_at(alpha=0.01)
    write_artifact(
        "bias_positions.txt",
        f"input-2 delivered-position uniformity: chi2={report.statistic:.3f} "
        f"p={report.p_value:.3f} over {report.observations} permutations",
    )


def test_exchange_dispersion(benchmark):
    stats = benchmark.pedantic(
        lambda: exchange_count_dispersion(4, samples=40, seed=7),
        rounds=1,
        iterations=1,
    )
    assert stats["variance"] > 0
    assert stats["min"] < stats["mean"] < stats["max"]
