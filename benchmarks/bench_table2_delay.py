"""Table 2 — propagation delay of the three networks.

Regenerates the delay comparison with *measured* structural timing
(arrival-time propagation through constructed networks), asserts the
shape — BNB beats Batcher everywhere and the ratio trends to 2/3;
the BNB-vs-Koppelman crossover sits near N = 2^7 — and times the
measurement.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import (
    batcher_delay,
    bnb_delay,
    koppelman_delay_table2,
)
from repro.analysis.delay import batcher_measured_delay, bnb_measured_delay
from repro.analysis.tables import render_table2


@pytest.mark.parametrize("m", [4, 6, 8, 10])
def test_measured_equals_eq9(benchmark, m):
    measured = benchmark(lambda: bnb_measured_delay(m))
    assert measured == pytest.approx(bnb_delay(1 << m))


@pytest.mark.parametrize("m", [4, 6, 8])
def test_measured_equals_eq12(benchmark, m):
    measured = benchmark(lambda: batcher_measured_delay(m))
    assert measured == pytest.approx(batcher_delay(1 << m))


def test_table2_shape(benchmark, write_artifact):
    """BNB is fastest of the three at every N >= 256; the ratio to
    Batcher decreases monotonically toward 2/3; the Koppelman row
    crosses BNB's near N = 2^7 (Koppelman wins below, loses above)."""

    def series():
        rows = []
        for m in range(3, 16):
            n = 1 << m
            rows.append(
                (
                    n,
                    batcher_delay(n),
                    koppelman_delay_table2(n),
                    bnb_measured_delay(m),
                )
            )
        return rows

    rows = benchmark(series)
    ratios = [bnb / bat for _n, bat, _kop, bnb in rows]
    assert all(bnb < bat for _n, bat, _kop, bnb in rows)
    # The ratio peaks at N=16 (0.840) and is strictly decreasing after.
    assert max(ratios) == ratios[1]
    assert ratios[1:] == sorted(ratios[1:], reverse=True)
    assert 2 / 3 < ratios[-1] < 0.76

    crossover = None
    for (n, _bat, kop, bnb) in rows:
        if bnb < kop and crossover is None:
            crossover = n
    assert crossover == 2**7  # BNB overtakes Koppelman at N=128

    lines = ["N | Batcher (Eq.12) | Koppelman (Table 2) | BNB measured | BNB/Batcher"]
    lines += [
        f"{n} | {bat:.0f} | {kop:.0f} | {bnb:.0f} | {bnb / bat:.3f}"
        for n, bat, kop, bnb in rows
    ]
    write_artifact("table2_series.txt", "\n".join(lines))


def test_table2_render(benchmark, write_artifact):
    text = benchmark(lambda: render_table2(1024))
    assert "1/3 log^3 N" in text
    write_artifact("table2_n1024.txt", text)
