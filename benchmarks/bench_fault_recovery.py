"""Adaptive fault model and detect-and-reroute recovery benches.

Findings (extensions; see EXPERIMENTS.md):

* **architectural masking** — early stuck switches are frequently
  healed by downstream splitters re-deciding on live data, so the
  adaptive model misroutes *less often* than the frozen-replay model
  at the same fault sites, but *cascades further* when it does (odd
  blast radii occur);
* **recovery** — re-injecting misdelivered words as repair passes
  restores full delivery for ~90% of (fault, workload) pairs within a
  few passes; the residue is late-stage faults exercised by every
  repair arrangement.
"""

from __future__ import annotations

import pytest

from repro.core import Word
from repro.faults import (
    SwitchCoordinate,
    misrouted_outputs,
    recovery_experiment,
    route_with_stuck_switch,
)
from repro.permutations import random_permutation


def test_masking_rate(benchmark, write_artifact):
    """How often is a stage-0 fault invisible at the outputs?"""
    m = 4

    def measure():
        coordinate = SwitchCoordinate(0, 0, 0, 0, 0)
        masked = 0
        total = 0
        for seed in range(25):
            pi = random_permutation(1 << m, rng=seed)
            words = [Word(address=pi(j), payload=j) for j in range(1 << m)]
            for value in (0, 1):
                outputs = route_with_stuck_switch(m, words, coordinate, value)
                total += 1
                masked += not misrouted_outputs(outputs)
        return masked, total

    masked, total = benchmark.pedantic(measure, rounds=1, iterations=1)
    rate = masked / total
    assert rate > 0.5  # the architecture self-heals early faults
    write_artifact(
        "fault_masking.txt",
        f"stage-0 stuck-at masking rate (adaptive model, N=16): "
        f"{masked}/{total} = {rate:.2f}",
    )


@pytest.mark.parametrize("m", [3, 4])
def test_recovery_statistics(benchmark, m, write_artifact):
    stats = benchmark.pedantic(
        lambda: recovery_experiment(m, trials=40, seed=m, max_passes=8),
        rounds=1,
        iterations=1,
    )
    assert stats["recovery_rate"] > 0.75
    assert stats["mean_passes"] < 3.0
    write_artifact(
        f"fault_recovery_m{m}.txt",
        f"N={1 << m}: recovery rate {stats['recovery_rate']:.2f}, "
        f"mean passes {stats['mean_passes']:.2f}, "
        f"worst {stats['worst_passes']:.0f}",
    )
