"""Adaptive fault model and detect-and-reroute recovery benches.

Findings (extensions; see EXPERIMENTS.md):

* **architectural masking** — early stuck switches are frequently
  healed by downstream splitters re-deciding on live data, so the
  adaptive model misroutes *less often* than the frozen-replay model
  at the same fault sites, but *cascades further* when it does (odd
  blast radii occur);
* **recovery** — re-injecting misdelivered words as repair passes
  restores full delivery for ~90% of (fault, workload) pairs within a
  few passes; the residue is late-stage faults exercised by every
  repair arrangement;
* **service** — wrapping the fabric in
  :class:`~repro.service.ResilientFabric` closes that residue: every
  single stuck-at fault at N=8 is BIST-detected, uniquely localized
  and survived (degraded or failed-over) with 100% word delivery.

Alongside the ``.txt`` snippets, machine-readable ``.json`` artifacts
land in ``benchmarks/out/`` (probe counts, localization accuracy,
retries to full delivery, failover rates) for trend tracking in CI.
"""

from __future__ import annotations

import json

import pytest

from repro.core import Word
from repro.core.pipeline import PipelinedBNBFabric, stuck_control_override
from repro.faults import (
    SwitchCoordinate,
    build_bist_schedule,
    enumerate_switch_coordinates,
    misrouted_outputs,
    recovery_experiment,
    route_with_stuck_switch,
)
from repro.permutations import random_permutation
from repro.service import ResilientFabric


def test_masking_rate(benchmark, write_artifact):
    """How often is a stage-0 fault invisible at the outputs?"""
    m = 4

    def measure():
        coordinate = SwitchCoordinate(0, 0, 0, 0, 0)
        masked = 0
        total = 0
        for seed in range(25):
            pi = random_permutation(1 << m, rng=seed)
            words = [Word(address=pi(j), payload=j) for j in range(1 << m)]
            for value in (0, 1):
                outputs = route_with_stuck_switch(m, words, coordinate, value)
                total += 1
                masked += not misrouted_outputs(outputs)
        return masked, total

    masked, total = benchmark.pedantic(measure, rounds=1, iterations=1)
    rate = masked / total
    assert rate > 0.5  # the architecture self-heals early faults
    write_artifact(
        "fault_masking.txt",
        f"stage-0 stuck-at masking rate (adaptive model, N=16): "
        f"{masked}/{total} = {rate:.2f}",
    )


@pytest.mark.parametrize("m", [3, 4])
def test_recovery_statistics(benchmark, m, write_artifact):
    stats = benchmark.pedantic(
        lambda: recovery_experiment(m, trials=40, seed=m, max_passes=8),
        rounds=1,
        iterations=1,
    )
    assert stats["recovery_rate"] > 0.75
    assert stats["mean_passes"] < 3.0
    write_artifact(
        f"fault_recovery_m{m}.txt",
        f"N={1 << m}: recovery rate {stats['recovery_rate']:.2f}, "
        f"mean passes {stats['mean_passes']:.2f}, "
        f"worst {stats['worst_passes']:.0f}",
    )
    write_artifact(
        f"fault_recovery_m{m}.json",
        json.dumps(
            {"n": 1 << m, "trials": 40, "max_passes": 8, **stats},
            indent=2,
            sort_keys=True,
        ),
    )


def _faulty_pipeline(m, coordinate, value):
    return PipelinedBNBFabric(
        m,
        control_override=stuck_control_override(
            coordinate.main_stage,
            coordinate.nested,
            coordinate.nested_stage,
            coordinate.box,
            coordinate.switch,
            value,
        ),
    )


def test_resilient_service_sweep(benchmark, write_artifact):
    """Exhaustive single-fault sweep of the full service at N=8.

    The machine-readable artifact carries the service's headline
    numbers: BIST probe count, localization accuracy, retries needed
    for full delivery, and how much traffic ends up on the spare.
    """
    m = 3
    n = 1 << m
    schedule = build_bist_schedule(m)
    faults = [
        (coordinate, value)
        for coordinate in enumerate_switch_coordinates(m)
        for value in (0, 1)
    ]

    def sweep():
        unique = 0
        exact = 0
        delivered = 0
        retries = []
        failover_batches = 0
        batches = 0
        for coordinate, value in faults:
            fabric = ResilientFabric(
                m,
                pipeline=_faulty_pipeline(m, coordinate, value),
                schedule=schedule,
            )
            result = fabric.submit(
                random_permutation(n, rng=12345).to_list(), tag="live"
            )
            if not fabric.registry.is_quarantined:
                fabric.check(tag="scheduled")
            second = fabric.submit(
                random_permutation(n, rng=12346).to_list(), tag="after"
            )
            unique += len(fabric.registry.confirmed_faults) == 1
            exact += fabric.registry.confirmed_faults == [(coordinate, value)]
            delivered += result.delivered + second.delivered
            retries.append(result.retries)
            batches += 2
            failover_batches += (result.mode == "failover") + (
                second.mode == "failover"
            )
        return {
            "n": n,
            "faults_swept": len(faults),
            "bist_probes": schedule.probe_count,
            "localization_unique_rate": unique / len(faults),
            "localization_exact_rate": exact / len(faults),
            "words_delivered": delivered,
            "words_expected": 2 * n * len(faults),
            "max_retries_to_full_delivery": max(retries),
            "mean_retries_to_full_delivery": sum(retries) / len(retries),
            "failover_batch_rate": failover_batches / batches,
        }

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert stats["localization_exact_rate"] == 1.0
    assert stats["words_delivered"] == stats["words_expected"]
    write_artifact(
        "fault_recovery_service_m3.json",
        json.dumps(stats, indent=2, sort_keys=True),
    )


def test_vector_resilient_throughput(benchmark, write_artifact):
    """The compiled resilient service vs the object one, words/s.

    Sweeps the healthy serving path and the post-quarantine failover
    path with the same injected fault on both engines.  ``m = 6`` uses
    a relaxed-coverage BIST schedule (strict coverage is unattainable
    past ``m = 4`` — see :func:`repro.faults.build_bist_schedule`);
    detection of the injected, activatable fault is unaffected.  The
    artifact is CI-gated: recovered delivery must be total and the
    vector healthy path must clear 5x object at the largest size.
    """
    import time

    from repro.faults import fault_mask_for
    from repro.service import ResilientVectorFabric

    def timed_words_per_sec(fabric, perms, batches):
        start = time.perf_counter()
        delivered = 0
        for index in range(batches):
            result = fabric.submit(perms[index % len(perms)], tag=index)
            delivered += result.delivered
        elapsed = time.perf_counter() - start
        return delivered / elapsed, delivered

    def sweep():
        rows = []
        for m, batches in ((4, 300), (6, 200)):
            n = 1 << m
            schedule = (
                build_bist_schedule(m)
                if m <= 4
                else build_bist_schedule(
                    m,
                    ensure_detection=False,
                    require_full_coverage=False,
                    max_candidates=400,
                )
            )
            perms = [
                random_permutation(n, rng=seed).to_list()
                for seed in range(20)
            ]
            coordinate = SwitchCoordinate(m - 1, 0, 0, 0, 0)
            row = {"m": m, "n": n, "batches": batches}
            healthy = {
                "object": ResilientFabric(m, schedule=schedule),
                "vector": ResilientVectorFabric(m, schedule=schedule),
            }
            for engine, fabric in healthy.items():
                rate, delivered = timed_words_per_sec(fabric, perms, batches)
                row[f"healthy_{engine}_words_per_sec"] = rate
                assert delivered == batches * n
            faulted = {
                "object": ResilientFabric(
                    m,
                    pipeline=_faulty_pipeline(m, coordinate, 1),
                    schedule=schedule,
                ),
                "vector": ResilientVectorFabric(
                    m,
                    fault_mask=fault_mask_for(m, [(coordinate, 1)]),
                    schedule=schedule,
                    spare_verify_every=64,
                ),
            }
            recovered = 0
            for engine, fabric in faulted.items():
                first = fabric.submit(perms[0], tag="first")
                recovered += first.delivered
                if not fabric.registry.is_quarantined:
                    fabric.check(tag="scheduled")
                assert fabric.registry.is_quarantined
                rate, delivered = timed_words_per_sec(
                    fabric, perms, batches
                )
                row[f"failover_{engine}_words_per_sec"] = rate
                recovered += delivered
            row["recovered_delivery"] = recovered / (
                2 * (batches + 1) * n
            )
            row["healthy_speedup"] = (
                row["healthy_vector_words_per_sec"]
                / row["healthy_object_words_per_sec"]
            )
            row["failover_speedup"] = (
                row["failover_vector_words_per_sec"]
                / row["failover_object_words_per_sec"]
            )
            rows.append(row)
        return {
            "sweep": rows,
            "headline_speedup": rows[-1]["healthy_speedup"],
        }

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(row["recovered_delivery"] == 1.0 for row in stats["sweep"])
    assert stats["headline_speedup"] >= 5.0
    write_artifact(
        "fault_recovery_vector.json",
        json.dumps(stats, indent=2, sort_keys=True),
    )


def test_bist_probe_counts(benchmark, write_artifact):
    """Probe counts grow with the switch count's logarithm, not N."""

    def build():
        return {
            m: build_bist_schedule(m).probe_count for m in (2, 3, 4)
        }

    counts = benchmark.pedantic(build, rounds=1, iterations=1)
    for m, count in counts.items():
        faults = 2 * len(enumerate_switch_coordinates(m))
        assert count < faults // 2
    write_artifact(
        "bist_probe_counts.json",
        json.dumps(
            {
                f"m{m}": {
                    "n": 1 << m,
                    "probes": count,
                    "faults_covered": 2 * len(enumerate_switch_coordinates(m)),
                }
                for m, count in counts.items()
            },
            indent=2,
            sort_keys=True,
        ),
    )
