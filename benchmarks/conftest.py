"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts
(Table 1, Table 2, a figure's structure, or an equation's sweep),
asserts the reproduced *shape* (who wins, by what factor, where the
crossovers sit) and times the underlying computation with
pytest-benchmark.  Rendered artifacts are written to
``benchmarks/out/`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def write_artifact(artifact_dir):
    """Write (and echo) a named text artifact."""

    def _write(name: str, text: str) -> None:
        path = artifact_dir / name
        path.write_text(text + "\n")
        print(f"\n--- {name} ---\n{text}\n")

    return _write
