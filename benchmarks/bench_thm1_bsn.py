"""Theorem 1 — the bit-sorter network sorts every balanced input.

Exhaustive at N = 8 and 16, sampled at larger sizes; times the BSN
routing pass as a function of N.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core import BitSorterNetwork


@pytest.mark.parametrize("k", [2, 3])
def test_theorem1_exhaustive(benchmark, k):
    bsn = BitSorterNetwork(k)
    n = 1 << k
    vectors = []
    for positions in itertools.combinations(range(n), n // 2):
        bits = [0] * n
        for j in positions:
            bits[j] = 1
        vectors.append(bits)

    def sort_all():
        return sum(bsn.sort_check(bits) for bits in vectors)

    assert benchmark(sort_all) == len(vectors)


@pytest.mark.parametrize("k", [4, 6, 8])
def test_theorem1_sampled(benchmark, k):
    bsn = BitSorterNetwork(k)
    n = 1 << k
    rng = random.Random(k)
    vectors = []
    for _ in range(50):
        bits = [1] * (n // 2) + [0] * (n // 2)
        rng.shuffle(bits)
        vectors.append(bits)

    def sort_all():
        return sum(bsn.sort_check(bits) for bits in vectors)

    assert benchmark(sort_all) == len(vectors)


@pytest.mark.parametrize("k", [4, 7, 10])
def test_bsn_routing_pass(benchmark, k):
    """Time one routing pass (the per-main-stage cost inside the BNB)."""
    bsn = BitSorterNetwork(k)
    n = 1 << k
    bits = [1] * (n // 2) + [0] * (n // 2)
    random.Random(1).shuffle(bits)

    outputs = benchmark(lambda: bsn.route_bits(bits)[0])
    assert outputs == [j & 1 for j in range(n)]
