"""Dynamic activity and empirical scaling benches (library extensions).

Two analyses beyond the paper's static counts:

* switching activity — measured exchange/swap fractions of BNB vs
  Batcher on uniform traffic (BNB ~0.49, Batcher ~0.58);
* empirical scaling — polynomial fits over constructed networks must
  recover the paper's coefficients from raw data.
"""

from __future__ import annotations

import pytest

from repro.analysis.activity import average_activity
from repro.analysis.scaling import (
    batcher_delay_scaling,
    bnb_delay_scaling,
    bnb_switch_scaling,
)


@pytest.mark.parametrize("kind", ["bnb", "batcher"])
def test_activity_measurement(benchmark, kind, write_artifact):
    stats = benchmark.pedantic(
        lambda: average_activity(kind, 5, samples=12, seed=1),
        rounds=1,
        iterations=1,
    )
    assert 0.0 < stats["mean_exchange_fraction"] < 1.0
    write_artifact(
        f"activity_{kind}_n32.txt",
        f"{kind} mean exchange fraction (N=32, 12 workloads): "
        f"{stats['mean_exchange_fraction']:.4f}\n"
        f"per-stage means: {stats['per_stage_mean']}",
    )


def test_activity_ordering(benchmark):
    """Batcher's comparators swap more often than BNB's switches
    exchange — the dynamic counterpart of the hardware claim."""

    def measure():
        return (
            average_activity("bnb", 4, samples=10, seed=2)[
                "mean_exchange_fraction"
            ],
            average_activity("batcher", 4, samples=10, seed=2)[
                "mean_exchange_fraction"
            ],
        )

    bnb_fraction, batcher_fraction = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert batcher_fraction > bnb_fraction


def test_scaling_fit_recovers_coefficients(benchmark, write_artifact):
    def fit_all():
        return (
            bnb_switch_scaling(range(2, 11)),
            bnb_delay_scaling(range(2, 11)),
            batcher_delay_scaling(range(2, 11)),
        )

    switches, bnb_delay, batcher_delay = benchmark(fit_all)
    assert switches.coefficients[3] == pytest.approx(1 / 6, abs=1e-5)
    assert bnb_delay.coefficients[3] == pytest.approx(1 / 3, abs=1e-5)
    assert batcher_delay.coefficients[3] == pytest.approx(1 / 2, abs=1e-5)
    assert bnb_delay.leading / batcher_delay.leading == pytest.approx(
        2 / 3, abs=1e-5
    )
    write_artifact(
        "scaling_fits.txt",
        "\n".join(
            [
                "polynomial fits over constructed networks (coefficients of m^0..m^3):",
                f"BNB switches / N : {tuple(round(c, 6) for c in switches.coefficients)}",
                f"BNB delay        : {tuple(round(c, 6) for c in bnb_delay.coefficients)}",
                f"Batcher delay    : {tuple(round(c, 6) for c in batcher_delay.coefficients)}",
                "paper: 1/6 m^3 + 1/4 m^2 + 1/12 m;  1/3 m^3 + 3/2 m^2 - 5/6 m;",
                "       1/2 m^3 + m^2 + 1/2 m  -> delay ratio 2/3",
            ]
        ),
    )
