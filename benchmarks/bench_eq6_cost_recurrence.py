"""Eq. 6 — the BNB cost closed form vs its defining recurrence.

Sweeps the recurrence (Eqs. 1-5) against the printed closed form over
sizes and word widths, asserting exact integer equality, and times the
recurrence evaluation.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import (
    arbiter_nodes_in_bsn,
    bnb_function_nodes,
    bnb_switch_slices,
    nested_network_switch_slices,
)
from repro.analysis.recurrences import (
    arbiter_node_recurrence,
    bnb_function_node_recurrence,
    bnb_switch_recurrence,
)


@pytest.mark.parametrize("w", [0, 8, 32])
def test_eq6_switch_recurrence_sweep(benchmark, w):
    def sweep():
        results = []
        # Clear memoization so the benchmark measures real work.
        bnb_switch_recurrence.cache_clear()
        for m in range(1, 16):
            results.append(bnb_switch_recurrence(1 << m, w))
        return results

    values = benchmark(sweep)
    for m, value in enumerate(values, start=1):
        assert value == bnb_switch_slices(1 << m, w), (m, w)


def test_eq6_function_node_recurrence_sweep(benchmark):
    def sweep():
        bnb_function_node_recurrence.cache_clear()
        arbiter_node_recurrence.cache_clear()
        return [bnb_function_node_recurrence(1 << m) for m in range(1, 16)]

    values = benchmark(sweep)
    for m, value in enumerate(values, start=1):
        assert value == bnb_function_nodes(1 << m), m


def test_eq4_arbiter_closed_form(benchmark):
    """Eq. 4's closed form P log(P/2) - P/2 + 1 equals the recurrence."""

    def sweep():
        arbiter_node_recurrence.cache_clear()
        return [arbiter_node_recurrence(1 << k) for k in range(1, 16)]

    values = benchmark(sweep)
    for k, value in enumerate(values, start=1):
        assert value == arbiter_nodes_in_bsn(1 << k), k


def test_eq5_nested_network_cost(benchmark):
    """Eq. 5 assembled from Eq. 3 + Eq. 4 for the nested networks."""

    def compute():
        rows = []
        for p in range(1, 14):
            size = 1 << p
            for w in (0, 8):
                rows.append(
                    (
                        size,
                        w,
                        nested_network_switch_slices(size, w),
                        arbiter_nodes_in_bsn(size),
                    )
                )
        return rows

    rows = benchmark(compute)
    for size, w, switches, nodes in rows:
        p = size.bit_length() - 1
        assert switches == (size // 2) * p * (p + w)
        assert nodes == size * (p - 1) - size // 2 + 1
