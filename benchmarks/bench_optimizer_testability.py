"""Optimizer and testability benches (library extensions).

Two findings the gate-level substrate surfaces:

1. **The regularity tax.** The paper's design uses one identical
   function node everywhere, including the arbiter root, whose parent
   flag is wired to its own output (the echo rule).  The root node's
   flag logic then reduces to ``y1 = z`` and ``y2 = 1`` — pure
   redundancy.  Logic optimization removes it: ~25-30% of every
   bit-sorter slice's gates fold away.
2. **Testability.** That same redundancy is untestable by definition;
   after optimization the operational vector set detects a strictly
   larger fraction of single stuck-at faults.
"""

from __future__ import annotations

import itertools

import pytest

from repro.hardware import (
    build_bnb_netlist,
    build_bsn_netlist,
    build_splitter_netlist,
    optimize,
    single_stuck_at_coverage,
)


@pytest.mark.parametrize("k", [2, 3, 4])
def test_bsn_optimization_savings(benchmark, k, write_artifact):
    netlist = build_bsn_netlist(k)
    optimized, report = benchmark(lambda: optimize(netlist))
    assert report.gates_after < report.gates_before
    saving = report.gates_saved / report.gates_before
    assert saving > 0.2  # the regularity tax is real at every size
    if k == 3:
        write_artifact(
            "optimizer_regularity_tax.txt",
            f"BSN({1 << k}) gates: {report.gates_before} -> "
            f"{report.gates_after} ({saving:.0%} saved; the arbiter-root "
            f"echo redundancy)",
        )


def test_bnb_netlist_optimization(benchmark):
    netlist, ports = build_bnb_netlist(3)
    optimized, report = benchmark.pedantic(
        lambda: optimize(netlist), rounds=1, iterations=1
    )
    assert report.gates_after < report.gates_before
    # Behaviour preserved on a routing workload.
    from repro.permutations import random_permutation

    for seed in range(5):
        pi = random_permutation(8, rng=seed)
        assignment = ports.input_assignment(pi.to_list())
        assert optimized.evaluate(assignment) == netlist.evaluate(assignment)


def test_coverage_improves(benchmark, write_artifact):
    netlist = build_splitter_netlist(2)
    vectors = [
        dict(zip([f"s[{j}]" for j in range(4)], bits))
        for bits in itertools.product([0, 1], repeat=4)
        if sum(bits) % 2 == 0
    ]

    def measure():
        before = single_stuck_at_coverage(netlist, vectors)
        optimized, _report = optimize(netlist)
        after = single_stuck_at_coverage(optimized, vectors)
        return before, after

    before, after = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert after.coverage > before.coverage
    write_artifact(
        "testability_coverage.txt",
        f"sp(2) stuck-at coverage under operational vectors: "
        f"{before.coverage:.3f} before optimization, "
        f"{after.coverage:.3f} after (undetected faults were the "
        f"redundant root logic)",
    )
