"""Fault-injection benchmark: blast radius and detection coverage.

Extension beyond the paper: single stuck-at faults on switch controls,
replayed through the fabric.  The shape result — every activated fault
displaces exactly one pair of words and is caught by an output-side
address check — follows from the follower-slice architecture (one
control drives the whole word through a switch).
"""

from __future__ import annotations

import pytest

from repro.faults import fault_coverage_experiment


@pytest.mark.parametrize("m", [3, 4])
def test_coverage_experiment(benchmark, m, write_artifact):
    report = benchmark.pedantic(
        lambda: fault_coverage_experiment(m, trials=150, seed=m),
        rounds=1,
        iterations=1,
    )
    assert report.detection_rate_given_activation == 1.0
    histogram = report.blast_radius_histogram()
    assert set(histogram) <= {0, 2}
    # Roughly half of random stuck values coincide with the healthy
    # control; allow a generous band.
    assert 0.3 < report.activation_rate < 0.7
    write_artifact(
        f"fault_coverage_m{m}.txt",
        "\n".join(
            [
                f"N = {1 << m}, 150 single-stuck-at trials",
                f"activation rate          : {report.activation_rate:.3f}",
                f"detection | activated    : "
                f"{report.detection_rate_given_activation:.3f}",
                f"blast radius histogram   : {histogram}",
            ]
        ),
    )


def test_blast_radius_is_exactly_a_pair(benchmark):
    """Across every trial, misrouting is 0 (inert) or 2 (one swapped
    pair) — never more, because downstream controls are replayed."""
    report = benchmark.pedantic(
        lambda: fault_coverage_experiment(4, trials=100, seed=9),
        rounds=1,
        iterations=1,
    )
    for trial in report.trials:
        assert trial.misrouted in (0, 2)
        assert (trial.misrouted == 2) == trial.activated
