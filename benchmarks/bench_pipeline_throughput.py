"""Pipelined-fabric benchmark: fill latency and steady-state throughput.

Extension beyond the paper: its delay analysis (Eq. 9) is the
combinational latency of one permutation; pipelining the main stages
turns the fabric into a one-permutation-per-cycle device with an
``m + 1``-cycle fill, which this bench measures on the cycle-accurate
model.
"""

from __future__ import annotations

import pytest

from repro.core import PipelinedBNBFabric
from repro.permutations import random_permutation


@pytest.mark.parametrize("m", [3, 4, 5])
def test_fill_latency(benchmark, m):
    def run_one():
        fabric = PipelinedBNBFabric(m)
        fabric.offer(random_permutation(1 << m, rng=1).to_list(), tag=0)
        fabric.drain()
        return fabric.stats()

    stats = benchmark(run_one)
    assert stats.fill_latency == m + 1


@pytest.mark.parametrize("m", [3, 5])
def test_steady_state_throughput(benchmark, m):
    n = 1 << m
    workload = [random_permutation(n, rng=s).to_list() for s in range(24)]

    def run_stream():
        fabric = PipelinedBNBFabric(m)
        for i, addresses in enumerate(workload):
            fabric.offer(addresses, tag=i)
            fabric.step()
        fabric.drain()
        return fabric.stats()

    stats = benchmark(run_stream)
    assert stats.delivered == len(workload)
    # 24 batches in 24 + (m+1) cycles -> throughput approaches 1/cycle.
    assert stats.throughput >= len(workload) / (len(workload) + m + 2)


def test_pipeline_vs_combinational_utilization(benchmark, write_artifact):
    """The pipeline keeps every stage busy: m+k batches need m+k+m+1
    cycles instead of k*(m+1) back-to-back combinational passes."""

    def measure():
        rows = []
        for m in (3, 4, 5):
            k = 20
            fabric = PipelinedBNBFabric(m)
            for i in range(k):
                fabric.offer(
                    random_permutation(1 << m, rng=i).to_list(), tag=i
                )
                fabric.step()
            fabric.drain()
            pipelined_cycles = fabric.stats().cycles
            combinational_cycles = k * (m + 1)
            rows.append((m, k, pipelined_cycles, combinational_cycles))
        return rows

    rows = benchmark(measure)
    for m, k, pipelined, combinational in rows:
        assert pipelined < combinational
        assert pipelined <= k + 2 * (m + 1)
    lines = ["m | batches | pipelined cycles | unpipelined cycles"]
    lines += [f"{m} | {k} | {p} | {c}" for m, k, p, c in rows]
    write_artifact("pipeline_utilization.txt", "\n".join(lines))
