"""Gateway load sweep: sustained throughput, frame fill, backpressure.

The serving-layer counterpart of ``bench_pipeline_throughput``: instead
of feeding the fabric perfect permutations, we drive the **gateway**
with open-loop uniform-random traffic at a controlled offered load
(rho = arrival rate / fabric capacity of N words/cycle) and measure
what the VOQ + frame-coalescing + pipelined-plane stack actually
sustains.

Findings (see ``benchmarks/out/gateway_load.json``):

* **fill tracks load below saturation** — at rho=0.5 frames leave
  half-empty (fill ~ rho), the no-queueing regime;
* **saturation fills frames** — at rho >= 1.0 steady-state fill is
  >= 0.9 (ISSUE acceptance): backlogged VOQs give the scheduler a
  head-of-line word for nearly every destination, so the coalesced
  frame approaches a full permutation;
* **overload degrades by rejection, not memory** — at rho=1.5 the
  queues stay at their bound and a third of arrivals bounce with a
  retry-after hint, while delivered throughput holds at capacity;
* **plane kill degrades throughput, never delivery** — killing one of
  two planes mid-run requeues its in-flight words; everything admitted
  is still delivered (``gateway_plane_kill.json``).
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.exceptions import AdmissionRejectedError
from repro.server import AsyncGateway, GatewayConfig, QueueEntry

SWEEP_LOADS = (0.5, 1.0, 1.5)
SWEEP_MS = (3, 4, 5)
CYCLES = 300
WARMUP = 50


def drive_open_loop(
    gateway: AsyncGateway,
    load: float,
    cycles: int,
    warmup: int,
    seed: int = 1234,
    kill_plane_at: int = None,
):
    """Clock the gateway synchronously under open-loop random arrivals.

    Returns steady-state measurements taken after *warmup* cycles.
    The harness drives :meth:`AsyncGateway.tick` directly (no event
    loop): queue entries carry no future, so the accounting is exact
    and the measurement is pure dataplane cost.
    """
    n = gateway.n
    rng = random.Random(seed)
    credit = 0.0
    marks = {}
    start = time.perf_counter()
    for cycle in range(cycles):
        if kill_plane_at is not None and cycle == kill_plane_at:
            gateway.kill_plane(0, reason="benchmark kill")
        credit += load * n
        while credit >= 1.0:
            credit -= 1.0
            try:
                gateway.voqs.admit(
                    QueueEntry(
                        destination=rng.randrange(n),
                        payload=None,
                        enqueued_cycle=gateway.cycle,
                    )
                )
            except AdmissionRejectedError:
                pass
        gateway.tick()
        if cycle == warmup:
            marks = {
                "frames": gateway.scheduler.frames_scheduled,
                "words": gateway.scheduler.words_scheduled,
                "delivered": gateway.delivered_words,
            }
    # Steady-state window closes here — the drain below empties the
    # backlog with ever-smaller frames and must not dilute the fill.
    frames = gateway.scheduler.frames_scheduled - marks.get("frames", 0)
    words = gateway.scheduler.words_scheduled - marks.get("words", 0)
    # Serve out the backlog so delivery accounting closes.
    guard = 0
    while (gateway.voqs.total or gateway._frames_in_flight()) and guard < 10_000:
        gateway.tick()
        guard += 1
    elapsed = time.perf_counter() - start
    stats = gateway.stats()
    return {
        "cycles": cycles,
        "steady_fill": words / (frames * n) if frames else 0.0,
        "words_delivered": gateway.delivered_words,
        "words_accepted": gateway.voqs.accepted,
        "words_rejected": gateway.voqs.rejected,
        "sustained_words_per_sec": gateway.delivered_words / elapsed,
        "max_queue_depth": stats["queues"]["max_depth"],
        "p50_latency_cycles": stats["latency_cycles"]["p50"],
        "p99_latency_cycles": stats["latency_cycles"]["p99"],
    }


def test_load_sweep(benchmark, write_artifact):
    """Fill ratio and sustained rate vs offered load at m=3..5."""
    rows = []
    for m in SWEEP_MS:
        for load in SWEEP_LOADS:
            gateway = AsyncGateway(
                GatewayConfig(m=m, planes=1, queue_capacity=16)
            )
            row = drive_open_loop(gateway, load, CYCLES, WARMUP)
            row.update({"m": m, "n": 1 << m, "offered_load": load})
            rows.append(row)

    for row in rows:
        # Below saturation fill tracks load; at/above it fills frames.
        if row["offered_load"] < 1.0:
            assert row["steady_fill"] == pytest.approx(
                row["offered_load"], abs=0.1
            )
        else:
            assert row["steady_fill"] >= 0.9  # ISSUE acceptance bar
        # Backpressure bounded the queues at every load.
        assert row["max_queue_depth"] <= 16
        # Overload must visibly reject.
        if row["offered_load"] > 1.0:
            assert row["words_rejected"] > 0
        # Everything admitted was delivered.
        assert row["words_delivered"] == row["words_accepted"]

    artifact = {
        "benchmark": "gateway_load",
        "queue_capacity": 16,
        "cycles": CYCLES,
        "warmup": WARMUP,
        "sweep": rows,
    }
    write_artifact("gateway_load.json", json.dumps(artifact, indent=2))

    # Time the saturated steady state at the acceptance size m=4.
    def saturated_run():
        gateway = AsyncGateway(
            GatewayConfig(m=4, planes=1, queue_capacity=16)
        )
        return drive_open_loop(gateway, 1.0, 120, 20)

    timed = benchmark(saturated_run)
    assert timed["steady_fill"] >= 0.9


def test_plane_kill_keeps_delivery(write_artifact):
    """Killing one of two planes mid-run: throughput drops, delivery doesn't."""
    m = 4
    gateway = AsyncGateway(
        GatewayConfig(m=m, planes=2, queue_capacity=16)
    )
    row = drive_open_loop(
        gateway, 1.0, CYCLES, WARMUP, kill_plane_at=CYCLES // 2
    )
    stats = gateway.stats()
    # 100% of admitted words delivered despite the mid-run kill...
    assert row["words_delivered"] == row["words_accepted"]
    # ...on a pool that really lost a plane with words in flight.
    assert [plane["healthy"] for plane in stats["planes"]] == [False, True]
    assert stats["queues"]["requeued"] > 0
    assert stats["planes"][1]["words_delivered"] > 0

    artifact = {
        "benchmark": "gateway_plane_kill",
        "m": m,
        "planes": 2,
        "kill_at_cycle": CYCLES // 2,
        "admitted": row["words_accepted"],
        "delivered": row["words_delivered"],
        "delivery_ratio": (
            row["words_delivered"] / row["words_accepted"]
            if row["words_accepted"]
            else None
        ),
        "requeued_words": stats["queues"]["requeued"],
        "surviving_plane_words": stats["planes"][1]["words_delivered"],
    }
    write_artifact(
        "gateway_plane_kill.json", json.dumps(artifact, indent=2)
    )
    assert artifact["delivery_ratio"] == 1.0
