"""Eqs. 7-9 — BNB propagation delay, structural and gate-level.

Three measurement fidelities are compared against the closed forms:
the structural arrival-time model (exact match to Eq. 9), the
levelized netlist depth and the event-driven DES settle time (gate
granularity — finer than the paper's unit model, so asserted as
bounds and monotone growth rather than equality).
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import bnb_delay
from repro.analysis.delay import bnb_measured_delay, bsn_measured_delay
from repro.analysis.recurrences import bnb_fn_delay_sum, bnb_sw_delay_sum
from repro.core import BNBNetwork
from repro.hardware import build_bsn_netlist
from repro.sim import GateLevelSimulator


@pytest.mark.parametrize("m", [2, 4, 6, 8, 10])
def test_eq9_structural(benchmark, m):
    measured = benchmark(lambda: bnb_measured_delay(m))
    n = 1 << m
    assert measured == pytest.approx(bnb_delay(n))
    assert measured == pytest.approx(
        bnb_fn_delay_sum(n) + bnb_sw_delay_sum(n)
    )


@pytest.mark.parametrize("m", [2, 4, 6, 8])
def test_eq7_eq8_depth_properties(benchmark, m):
    net = benchmark(lambda: BNBNetwork(m))
    assert net.switch_stage_depth == m * (m + 1) // 2
    assert net.function_node_depth == bnb_fn_delay_sum(1 << m)


@pytest.mark.parametrize("k", [2, 3, 4])
def test_gate_level_settle_time(benchmark, k):
    """DES settle time of a BSN netlist: bounded by the gate-level
    critical path, and at least the structural switch-column count
    (every stage contributes at least one gate delay)."""
    netlist = build_bsn_netlist(k)
    simulator = GateLevelSimulator(netlist)
    n = 1 << k
    bits = {f"s[{j}]": (j % 2) for j in range(n)}

    result = benchmark(lambda: simulator.run(bits))
    assert result.settle_time <= netlist.critical_path_length()
    assert result.settle_time >= k  # at least one gate per stage
    # Outputs are the sorted vector.
    assert [result.outputs[f"o[{j}]"] for j in range(n)] == [
        j & 1 for j in range(n)
    ]


def test_gate_depth_grows_like_structural_delay(benchmark, write_artifact):
    """The netlist critical path and the paper-unit BSN delay grow
    together (same ordering, positive correlation across k)."""

    def series():
        rows = []
        for k in range(1, 6):
            netlist = build_bsn_netlist(k)
            rows.append(
                (1 << k, netlist.critical_path_length(), bsn_measured_delay(k))
            )
        return rows

    rows = benchmark(series)
    gate_depths = [g for _n, g, _s in rows]
    structural = [s for _n, _g, s in rows]
    assert gate_depths == sorted(gate_depths)
    assert structural == sorted(structural)

    lines = ["N | netlist critical path (gates) | structural delay (paper units)"]
    lines += [f"{n} | {g} | {s:.0f}" for n, g, s in rows]
    write_artifact("eq9_gate_vs_structural.txt", "\n".join(lines))
