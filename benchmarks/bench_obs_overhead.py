"""Observability overhead: the metrics-on dataplane vs. metrics-off.

The ISSUE acceptance bar: at m=8 on the vector engine under offered
load 1.0, the instrumented gateway must sustain steady-state frame
fill >= 0.9 and cost < 5% throughput vs. the same run without
instrumentation.  The design that makes this possible is asserted
here, not assumed: every push-side hook is O(1) per *frame* (a frame
at m=8 carries 256 words — a per-word histogram observe would cost
more than the whole vector routing step), everything else is pulled at
scrape time, and tracing samples one frame in ``trace_sample_every``.

Measuring a 5% budget is harder than meeting it: whole-run wall-clock
on a shared host jitters by 10-15% between runs, so comparing two run
totals (even best-of-N) manufactures both false failures and false
passes.  The bench therefore compares the **median per-cycle step
time** over several interleaved rounds per configuration — hundreds of
samples each, with the interleaving spreading slow host phases across
both sides and the median discarding the noise spikes outright.  Frame
fill is deterministic given the arrival seed, so it is asserted from
one ordinary ``drive_open_loop`` run per configuration.

The artifact (``benchmarks/out/obs_overhead.json``) is schema-checked
in CI by ``benchmarks/check_artifacts.py``.
"""

from __future__ import annotations

import json
import random
import statistics
import time

from repro.exceptions import AdmissionRejectedError
from repro.obs import GatewayInstrumentation, Registry
from repro.server import AsyncGateway, GatewayConfig, QueueEntry

from bench_gateway_load import drive_open_loop

M = 8
LOAD = 1.0
CYCLES = 240
WARMUP = 40
ROUNDS = 4
TRACE_SAMPLE = 16
MAX_OVERHEAD = 0.05  # ISSUE acceptance: < 5% throughput cost


def _new_gateway(instrumented: bool) -> AsyncGateway:
    gateway = AsyncGateway(
        GatewayConfig(m=M, planes=1, queue_capacity=16, engine="vector")
    )
    if instrumented:
        GatewayInstrumentation(
            gateway,
            registry=Registry(),
            trace_sample_every=TRACE_SAMPLE,
        ).attach()
    return gateway


def _cycle_times(gateway: AsyncGateway, seed: int = 1234) -> list:
    """Per-cycle wall-clock (admission + tick) after warmup.

    Same open-loop arrival process as ``drive_open_loop``, but timed
    per cycle so the comparison can use a median instead of a sum.
    """
    n = gateway.n
    rng = random.Random(seed)
    credit = 0.0
    samples = []
    for cycle in range(CYCLES):
        credit += LOAD * n
        start = time.perf_counter()
        while credit >= 1.0:
            credit -= 1.0
            try:
                gateway.voqs.admit(
                    QueueEntry(
                        destination=rng.randrange(n),
                        payload=None,
                        enqueued_cycle=gateway.cycle,
                    )
                )
            except AdmissionRejectedError:
                pass
        gateway.tick()
        elapsed = time.perf_counter() - start
        if cycle >= WARMUP:
            samples.append(elapsed)
    return samples


def test_metrics_overhead_under_budget(write_artifact):
    """Metrics on: fill >= 0.9 at load 1.0, <5% throughput overhead."""
    # Fill is deterministic given the seed — one run per configuration.
    baseline = drive_open_loop(_new_gateway(False), LOAD, CYCLES, WARMUP)
    instrumented = drive_open_loop(_new_gateway(True), LOAD, CYCLES, WARMUP)
    assert baseline["steady_fill"] >= 0.9
    assert instrumented["steady_fill"] >= 0.9

    # Throughput: median per-cycle step time, interleaved rounds.
    _cycle_times(_new_gateway(False))  # untimed warmup of both configs
    _cycle_times(_new_gateway(True))
    off_samples, on_samples = [], []
    for _ in range(ROUNDS):
        off_samples.extend(_cycle_times(_new_gateway(False)))
        on_samples.extend(_cycle_times(_new_gateway(True)))
    off_median = statistics.median(off_samples)
    on_median = statistics.median(on_samples)

    # Throughput is 1/cycle-time, so the ratio inverts the medians.
    ratio = off_median / on_median
    overhead = 1.0 - ratio
    assert overhead < MAX_OVERHEAD, (
        f"metrics overhead {overhead:.1%} >= {MAX_OVERHEAD:.0%} budget "
        f"(median cycle {on_median * 1e6:.0f}us instrumented vs "
        f"{off_median * 1e6:.0f}us baseline)"
    )

    artifact = {
        "benchmark": "obs_overhead",
        "m": M,
        "n": 1 << M,
        "engine": "vector",
        "offered_load": LOAD,
        "cycles": CYCLES,
        "warmup": WARMUP,
        "rounds": ROUNDS,
        "samples_per_side": len(off_samples),
        "trace_sample_every": TRACE_SAMPLE,
        "baseline_fill": baseline["steady_fill"],
        "instrumented_fill": instrumented["steady_fill"],
        "baseline_words_per_sec": baseline["sustained_words_per_sec"],
        "instrumented_words_per_sec": instrumented["sustained_words_per_sec"],
        "baseline_median_cycle_seconds": off_median,
        "instrumented_median_cycle_seconds": on_median,
        "throughput_ratio": ratio,
        "overhead": overhead,
        "overhead_budget": MAX_OVERHEAD,
    }
    write_artifact("obs_overhead.json", json.dumps(artifact, indent=2))
