"""Schema-check the JSON benchmark artifacts under ``benchmarks/out/``.

CI runs this after the benchmark smoke jobs: every ``.json`` artifact
must parse, and the known artifact families must carry their required
keys with sane values — so a benchmark refactor that silently changes
an artifact's shape (and breaks downstream trend tracking) fails the
build instead of landing.

Usage::

    python benchmarks/check_artifacts.py [out_dir]

Exit code 0 when every artifact validates, 1 otherwise (missing
directory, no artifacts, parse failure, or schema violation).
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Any, Callable, Dict, List


def _require(
    condition: bool, artifact: str, detail: str, errors: List[str]
) -> None:
    if not condition:
        errors.append(f"{artifact}: {detail}")


def check_gateway_load(data: Dict[str, Any], name: str, errors: List[str]) -> None:
    _require(isinstance(data.get("sweep"), list), name, "'sweep' must be a list", errors)
    for row in data.get("sweep", []):
        for key in (
            "m",
            "n",
            "offered_load",
            "steady_fill",
            "words_delivered",
            "words_accepted",
            "words_rejected",
            "sustained_words_per_sec",
            "max_queue_depth",
        ):
            _require(key in row, name, f"sweep row missing {key!r}", errors)
        if "steady_fill" in row:
            _require(
                0.0 <= row["steady_fill"] <= 1.0,
                name,
                f"fill {row['steady_fill']} outside [0, 1]",
                errors,
            )
        if {"words_delivered", "words_accepted"} <= row.keys():
            _require(
                row["words_delivered"] == row["words_accepted"],
                name,
                "delivered != accepted (words were lost)",
                errors,
            )


def check_gateway_plane_kill(
    data: Dict[str, Any], name: str, errors: List[str]
) -> None:
    for key in ("admitted", "delivered", "delivery_ratio", "requeued_words"):
        _require(key in data, name, f"missing {key!r}", errors)
    _require(
        data.get("delivery_ratio") == 1.0,
        name,
        f"delivery_ratio {data.get('delivery_ratio')!r} != 1.0",
        errors,
    )


def check_probe_counts(data: Any, name: str, errors: List[str]) -> None:
    _require(
        isinstance(data, (list, dict)) and bool(data),
        name,
        "expected a non-empty JSON container",
        errors,
    )


#: filename -> validator; anything else just has to parse.
def check_vector_pipeline(
    data: Dict[str, Any], name: str, errors: List[str]
) -> None:
    sweep = data.get("sweep")
    _require(
        isinstance(sweep, list) and bool(sweep),
        name,
        "'sweep' must be a non-empty list",
        errors,
    )
    for row in sweep or []:
        for key in (
            "m",
            "n",
            "cycles_timed",
            "object_cycles_per_sec",
            "vector_cycles_per_sec",
            "speedup",
        ):
            _require(key in row, name, f"sweep row missing {key!r}", errors)
        if "speedup" in row:
            _require(
                row["speedup"] > 1.0,
                name,
                f"m={row.get('m')} speedup {row['speedup']} is not a win",
                errors,
            )
    gateway = data.get("gateway", {})
    for key in ("engine", "steady_fill", "words_delivered", "words_accepted"):
        _require(key in gateway, name, f"gateway missing {key!r}", errors)
    if "steady_fill" in gateway:
        _require(
            0.0 <= gateway["steady_fill"] <= 1.0,
            name,
            f"gateway fill {gateway['steady_fill']} outside [0, 1]",
            errors,
        )
    if {"words_delivered", "words_accepted"} <= gateway.keys():
        _require(
            gateway["words_delivered"] == gateway["words_accepted"],
            name,
            "gateway delivered != accepted (words were lost)",
            errors,
        )


def check_obs_overhead(data: Dict[str, Any], name: str, errors: List[str]) -> None:
    for key in (
        "m",
        "n",
        "engine",
        "offered_load",
        "samples_per_side",
        "baseline_fill",
        "instrumented_fill",
        "baseline_median_cycle_seconds",
        "instrumented_median_cycle_seconds",
        "throughput_ratio",
        "overhead",
        "overhead_budget",
    ):
        _require(key in data, name, f"missing {key!r}", errors)
    for key in ("baseline_fill", "instrumented_fill"):
        if key in data:
            _require(
                data[key] >= 0.9,
                name,
                f"{key} {data[key]} below the 0.9 acceptance bar",
                errors,
            )
    if {"overhead", "overhead_budget"} <= data.keys():
        _require(
            data["overhead"] < data["overhead_budget"],
            name,
            f"overhead {data['overhead']} >= budget {data['overhead_budget']}",
            errors,
        )


def check_fault_recovery_vector(
    data: Dict[str, Any], name: str, errors: List[str]
) -> None:
    sweep = data.get("sweep")
    _require(
        isinstance(sweep, list) and bool(sweep),
        name,
        "'sweep' must be a non-empty list",
        errors,
    )
    for row in sweep or []:
        for key in (
            "m",
            "n",
            "batches",
            "healthy_object_words_per_sec",
            "healthy_vector_words_per_sec",
            "failover_object_words_per_sec",
            "failover_vector_words_per_sec",
            "healthy_speedup",
            "failover_speedup",
            "recovered_delivery",
        ):
            _require(key in row, name, f"sweep row missing {key!r}", errors)
        if "recovered_delivery" in row:
            _require(
                row["recovered_delivery"] == 1.0,
                name,
                f"m={row.get('m')} recovered_delivery "
                f"{row['recovered_delivery']} != 1.0 (words were lost)",
                errors,
            )
    _require(
        "headline_speedup" in data,
        name,
        "missing 'headline_speedup'",
        errors,
    )
    if "headline_speedup" in data:
        _require(
            data["headline_speedup"] >= 5.0,
            name,
            f"headline_speedup {data['headline_speedup']} below the "
            "5x acceptance bar",
            errors,
        )


def check_wire_protocol(
    data: Dict[str, Any], name: str, errors: List[str]
) -> None:
    for key in (
        "m",
        "n",
        "engine",
        "batch_window",
        "baseline_words_per_sec",
        "binary",
        "json",
        "sustained_words_per_sec",
        "speedup_vs_baseline",
        "object_pipeline_parity_words",
    ):
        _require(key in data, name, f"missing {key!r}", errors)
    _require(
        data.get("m", 0) >= 6,
        name,
        f"m {data.get('m')!r} below the m>=6 acceptance size",
        errors,
    )
    _require(
        data.get("engine") == "batch",
        name,
        f"engine {data.get('engine')!r} is not the batch dataplane",
        errors,
    )
    if "speedup_vs_baseline" in data:
        _require(
            data["speedup_vs_baseline"] >= 10.0,
            name,
            f"speedup {data['speedup_vs_baseline']} below the 10x "
            "acceptance bar",
            errors,
        )
    _require(
        data.get("object_pipeline_parity_words", 0) > 0,
        name,
        "batch kernel was not cross-checked against the object pipeline",
        errors,
    )
    for leg in ("binary", "json"):
        block = data.get(leg)
        if isinstance(block, dict):
            for key in ("words", "elapsed_seconds", "words_per_sec"):
                _require(
                    key in block, name, f"{leg} leg missing {key!r}", errors
                )


def check_cluster_soak(
    data: Dict[str, Any], name: str, errors: List[str]
) -> None:
    for key in (
        "nodes",
        "node_n",
        "n_global",
        "requested_words",
        "delivered_words",
        "delivery_rate",
        "misdeliveries",
        "killed_node",
        "map_version",
        "words_per_second",
        "client_counters",
        "node_states",
    ):
        _require(key in data, name, f"missing {key!r}", errors)
    _require(
        data.get("nodes", 0) >= 4,
        name,
        f"nodes {data.get('nodes')!r} below the >=4 acceptance size",
        errors,
    )
    _require(
        data.get("requested_words", 0) >= 1_000_000,
        name,
        f"requested_words {data.get('requested_words')!r} below the "
        ">=1M acceptance soak",
        errors,
    )
    if {"requested_words", "delivered_words"} <= data.keys():
        _require(
            data["delivered_words"] >= data["requested_words"],
            name,
            "delivered < requested (words were lost across failover)",
            errors,
        )
    _require(
        data.get("delivery_rate", 0) >= 1.0,
        name,
        f"delivery_rate {data.get('delivery_rate')!r} != 1.0",
        errors,
    )
    _require(
        data.get("misdeliveries", 1) == 0,
        name,
        f"misdeliveries {data.get('misdeliveries')!r} != 0",
        errors,
    )
    _require(
        bool(data.get("killed_node")),
        name,
        "no node was killed mid-run; the soak proved nothing about "
        "failover",
        errors,
    )
    _require(
        data.get("map_version", 0) >= 2,
        name,
        f"map_version {data.get('map_version')!r} never advanced — the "
        "death did not reshard",
        errors,
    )


def check_backend_arena(
    data: Dict[str, Any], name: str, errors: List[str]
) -> None:
    for key in ("backends", "cells", "verified_frames", "spread_bar"):
        _require(key in data, name, f"missing {key!r}", errors)
    cells = data.get("cells", [])
    _require(
        isinstance(cells, list) and bool(cells),
        name,
        "'cells' must be a non-empty list",
        errors,
    )
    spread_bar = data.get("spread_bar", 1.2)
    decisive = 0
    for cell in cells:
        for key in ("m", "workload", "winner", "spread", "seconds_per_frame"):
            _require(key in cell, name, f"cell missing {key!r}", errors)
        table = cell.get("seconds_per_frame", {})
        _require(
            isinstance(table, dict) and bool(table),
            name,
            "cell 'seconds_per_frame' must be a non-empty table",
            errors,
        )
        for backend, cost in table.items():
            _require(
                isinstance(cost, (int, float)) and cost > 0.0,
                name,
                f"cost for {backend!r} not a positive number",
                errors,
            )
        if table and "winner" in cell:
            _require(
                cell["winner"] == min(table, key=table.__getitem__),
                name,
                f"winner {cell['winner']!r} is not the cheapest cell entry",
                errors,
            )
        if cell.get("spread", 0.0) >= spread_bar:
            decisive += 1
    required = data.get("spread_cells_required", 2)
    _require(
        decisive >= required,
        name,
        f"only {decisive} cell(s) with spread >= {spread_bar} "
        f"(need {required}); the measured choice never mattered",
        errors,
    )
    verified = data.get("verified_frames", {})
    for backend in data.get("backends", []):
        checks = verified.get(backend, {})
        _require(
            bool(checks) and all(count > 0 for count in checks.values()),
            name,
            f"backend {backend!r} has no recorded oracle verification",
            errors,
        )


def check_traffic_scenarios(
    data: Dict[str, Any], name: str, errors: List[str]
) -> None:
    """The ``bench_traffic_scenarios.py`` SLO gates (docs/traffic.md)."""
    scenarios = data.get("scenarios")
    _require(
        isinstance(scenarios, dict) and bool(scenarios),
        name,
        "'scenarios' must be a non-empty object",
        errors,
    )
    if not isinstance(scenarios, dict):
        return
    for key in ("uniform", "multicast", "qos_hotspot"):
        _require(key in scenarios, name, f"missing scenario {key!r}", errors)

    multicast = scenarios.get("multicast", {}).get("multicast", {})
    copies = multicast.get("copies")
    _require(
        isinstance(copies, int) and copies > 0,
        name,
        "multicast scenario expanded no copies",
        errors,
    )
    _require(
        multicast.get("delivered") == copies,
        name,
        f"multicast delivered {multicast.get('delivered')!r} of "
        f"{copies!r} expanded copies",
        errors,
    )

    qos = scenarios.get("qos_hotspot", {})
    load = qos.get("offered_load")
    _require(
        isinstance(load, (int, float)) and load >= 1.0,
        name,
        f"qos_hotspot offered load {load!r} below saturation (1.0)",
        errors,
    )
    tenants = qos.get("tenants", {})
    _require(
        isinstance(tenants, dict) and len(tenants) >= 2,
        name,
        "qos_hotspot needs at least two tenant classes",
        errors,
    )
    if isinstance(tenants, dict) and len(tenants) >= 2:
        for tenant, row in tenants.items():
            _require(
                row.get("delivered") == row.get("offered"),
                name,
                f"tenant {tenant!r} starved: {row.get('delivered')!r} of "
                f"{row.get('offered')!r} words delivered",
                errors,
            )
        by_weight = sorted(tenants.items(), key=lambda kv: kv[1]["weight"])
        light, heavy = by_weight[0], by_weight[-1]
        _require(
            heavy[1]["weight"] > light[1]["weight"],
            name,
            "qos_hotspot tenant weights do not differ",
            errors,
        )
        heavy_p99 = heavy[1]["latency_cycles"]["p99"]
        light_p99 = light[1]["latency_cycles"]["p99"]
        _require(
            heavy_p99 is not None
            and light_p99 is not None
            and heavy_p99 <= light_p99,
            name,
            f"weighted tenant {heavy[0]!r} p99 {heavy_p99!r} exceeds "
            f"unweighted {light[0]!r} p99 {light_p99!r}",
            errors,
        )


SCHEMAS: Dict[str, Callable[[Any, str, List[str]], None]] = {
    "gateway_load.json": check_gateway_load,
    "gateway_plane_kill.json": check_gateway_plane_kill,
    "bist_probe_counts.json": check_probe_counts,
    "vector_pipeline.json": check_vector_pipeline,
    "obs_overhead.json": check_obs_overhead,
    "fault_recovery_vector.json": check_fault_recovery_vector,
    "wire_protocol.json": check_wire_protocol,
    "cluster_soak.json": check_cluster_soak,
    "backend_arena.json": check_backend_arena,
    "traffic_scenarios.json": check_traffic_scenarios,
}


def main(argv: List[str]) -> int:
    out_dir = pathlib.Path(
        argv[1] if len(argv) > 1 else pathlib.Path(__file__).parent / "out"
    )
    if not out_dir.is_dir():
        print(f"error: artifact directory {out_dir} does not exist")
        return 1
    artifacts = sorted(out_dir.glob("*.json"))
    if not artifacts:
        print(f"error: no JSON artifacts under {out_dir}")
        return 1
    errors: List[str] = []
    for path in artifacts:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            errors.append(f"{path.name}: unreadable ({error})")
            continue
        validator = SCHEMAS.get(path.name)
        if validator is not None:
            validator(data, path.name, errors)
    if errors:
        print(f"{len(errors)} artifact problem(s):")
        for problem in errors:
            print(f"  - {problem}")
        return 1
    print(f"{len(artifacts)} JSON artifact(s) validated under {out_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
