"""Wire-protocol throughput: binary ``send_batch`` vs the JSON baseline.

The acceptance benchmark for the length-prefixed binary framing and
the frame-axis batch dataplane behind it.  A real
:class:`~repro.server.GatewayServer` listens on a loopback socket; a
real :class:`~repro.client.GatewayClient` speaks the binary framing
and pushes permutation bursts through ``send_batch`` — so the measured
rate pays for everything a deployment pays for: header packing, the
``_arrays`` manifest, socket writes, zero-copy decode, VOQ admission,
window coalescing, one :func:`route_frame_batch` gather per window,
and the array-shaped response on the way back.

The bar (see ``benchmarks/out/wire_protocol.json``): sustained
gateway words/s must be **>= 10x** the ``gateway_load.json`` m=3
rho=1.0 baseline (~35k words/s), with the batched kernel exercised at
m=6 and verified word-for-word against the reference object pipeline
(the same oracle as
``tests/test_pipeline_batch.py::test_word_for_word_parity_with_object_pipeline_m6``,
re-run here so the artifact carries its own proof).

``BENCH_WIRE_QUICK=1`` (the CI smoke) trims the burst count; the
speedup assertion stays on — the win is an order of magnitude, not a
margin call.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import time

import numpy as np

from repro.client import GatewayClient
from repro.core import Word, route_frame_sources
from repro.core.pipeline import PipelinedBNBFabric
from repro.core.pipeline_fast import route_frame_batch
from repro.server import AsyncGateway, GatewayConfig, GatewayServer

QUICK = bool(os.environ.get("BENCH_WIRE_QUICK"))

M = 6
N = 1 << M
FRAMES_PER_BATCH = 128          # 8192 words per send_batch request
BATCHES = 8 if QUICK else 32
JSON_BATCHES = 2 if QUICK else 4
IN_FLIGHT = 4                   # concurrent requests on one connection
BASELINE_WORDS_PER_SEC = 35_244.0  # pinned gateway_load m=3 rho=1.0


def _bursts(batches: int, seed: int = 7) -> list:
    rng = np.random.default_rng(seed)
    return [
        np.concatenate(
            [rng.permutation(N) for _ in range(FRAMES_PER_BATCH)]
        ).astype(np.int64)
        for _ in range(batches)
    ]


def _baseline_words_per_sec() -> float:
    """Prefer the measured gateway_load.json baseline when present."""
    path = pathlib.Path(__file__).parent / "out" / "gateway_load.json"
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return BASELINE_WORDS_PER_SEC
    for row in data.get("sweep", []):
        if row.get("m") == 3 and row.get("offered_load") == 1.0:
            return float(row["sustained_words_per_sec"])
    return BASELINE_WORDS_PER_SEC


async def _drive(port: int, binary: bool, bursts: list) -> dict:
    """Push every burst through one client, IN_FLIGHT requests deep."""
    async with GatewayClient("127.0.0.1", port, binary=binary) as client:
        queue = list(enumerate(bursts))
        delivered = 0
        start = time.perf_counter()

        async def worker():
            nonlocal delivered
            while queue:
                _, burst = queue.pop()
                result = await client.send_batch(burst, retry=256)
                assert result["delivered"] == len(burst), (
                    f"{result['rejected']} words rejected after retries"
                )
                delivered += result["delivered"]

        await asyncio.gather(*(worker() for _ in range(IN_FLIGHT)))
        elapsed = time.perf_counter() - start
    words = sum(len(burst) for burst in bursts)
    assert delivered == words
    return {
        "framing": "binary" if binary else "json",
        "batches": len(bursts),
        "words": words,
        "elapsed_seconds": elapsed,
        "words_per_sec": words / elapsed,
    }


def _object_pipeline_parity(frames: int = 8, seed: int = 42) -> int:
    """Re-run the acceptance oracle: batch kernel vs object fabric.

    ``route_frame_batch`` must agree with the single-frame kernel and
    the word-for-word object pipeline on every line of every frame;
    returns the number of words cross-checked.
    """
    rng = np.random.default_rng(seed)
    addresses = np.stack(
        [rng.permutation(N) for _ in range(frames)]
    ).astype(np.int64)
    batched = route_frame_batch(M, addresses)
    fabric = PipelinedBNBFabric(M)
    checked = 0
    for b, row in enumerate(addresses):
        assert np.array_equal(batched[b], route_frame_sources(M, row))
        words = [
            Word(address=int(a), payload=(b, j)) for j, a in enumerate(row)
        ]
        outputs = fabric.route_batch(words, tag=b)
        for line, word in enumerate(outputs):
            assert word.address == line
            assert word.payload == (b, int(batched[b, line]))
            checked += 1
    return checked


def test_wire_throughput(write_artifact):
    """Binary send_batch over TCP: >= 10x the JSON-era m=3 baseline."""

    async def scenario():
        config = GatewayConfig(
            m=M,
            planes=1,
            queue_capacity=256,
            engine="batch",
            batch_window=64,
        )
        gateway = await AsyncGateway(config).start()
        server = await GatewayServer(gateway).start()
        try:
            binary = await _drive(server.port, True, _bursts(BATCHES))
            via_json = await _drive(
                server.port, False, _bursts(JSON_BATCHES, seed=11)
            )
        finally:
            await server.stop()
            await gateway.stop()
        return binary, via_json

    binary, via_json = asyncio.run(scenario())
    parity_words = _object_pipeline_parity()
    baseline = _baseline_words_per_sec()
    speedup = binary["words_per_sec"] / baseline

    artifact = {
        "benchmark": "wire_protocol",
        "quick": QUICK,
        "m": M,
        "n": N,
        "engine": "batch",
        "batch_window": 64,
        "frames_per_batch": FRAMES_PER_BATCH,
        "in_flight_requests": IN_FLIGHT,
        "baseline_words_per_sec": baseline,
        "baseline_source": "gateway_load.json m=3 offered_load=1.0",
        "binary": binary,
        "json": via_json,
        "sustained_words_per_sec": binary["words_per_sec"],
        "speedup_vs_baseline": speedup,
        "binary_vs_json": binary["words_per_sec"] / via_json["words_per_sec"],
        "object_pipeline_parity_words": parity_words,
        "parity_oracle": (
            "route_frame_batch at m=6 checked word-for-word against "
            "PipelinedBNBFabric (also pinned by tests/test_pipeline_batch.py)"
        ),
    }
    write_artifact("wire_protocol.json", json.dumps(artifact, indent=2))

    assert parity_words == 8 * N
    assert speedup >= 10.0, (
        f"binary wire path sustained {binary['words_per_sec']:.0f} words/s "
        f"= {speedup:.1f}x baseline {baseline:.0f}; the bar is 10x"
    )
