"""Fig. 4 — the 8-input splitter sp(3) (arbiter A(3) + sw(3)).

Regenerates the splitter's behaviour exhaustively (Theorem 3's
M_e = M_o invariant over every even-weight input), cross-checks the
gate netlist against the functional model, and times both.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import Splitter, splitter_balance
from repro.hardware import build_splitter_netlist
from repro.viz import render_splitter


def even_weight_vectors(p):
    n = 1 << p
    return [
        list(bits)
        for bits in itertools.product([0, 1], repeat=n)
        if sum(bits) % 2 == 0
    ]


@pytest.mark.parametrize("p", [2, 3])
def test_theorem3_exhaustive(benchmark, p):
    splitter = Splitter(p)
    vectors = even_weight_vectors(p)

    def run_all():
        balanced = 0
        for bits in vectors:
            out, _ = splitter.route_bits(bits)
            even, odd = splitter_balance(out)
            balanced += even == odd
        return balanced

    assert benchmark(run_all) == len(vectors)


def test_fig4_netlist_agreement(benchmark):
    netlist = build_splitter_netlist(3)
    splitter = Splitter(3)
    vectors = even_weight_vectors(3)

    def compare_all():
        agree = 0
        for bits in vectors:
            got = netlist.evaluate({f"s[{j}]": bits[j] for j in range(8)})
            expected, _ = splitter.route_bits(bits)
            agree += [got[f"o[{j}]"] for j in range(8)] == expected
        return agree

    assert benchmark(compare_all) == len(vectors)


@pytest.mark.parametrize("p", [4, 6, 8])
def test_splitter_scaling(benchmark, p):
    """Splitter decision cost scales with 2^p (the arbiter tree)."""
    splitter = Splitter(p)
    bits = [j % 2 for j in range(1 << p)]
    out = benchmark(lambda: splitter.route_bits(bits)[0])
    even, odd = splitter_balance(out)
    assert even == odd


def test_fig4_render(benchmark, write_artifact):
    text = benchmark(lambda: render_splitter(3, [1, 0, 0, 1, 1, 0, 1, 0]))
    assert "flags" in text
    write_artifact("fig4_splitter_8.txt", text)
