"""Section 5.3 — the headline comparison: 1/3 hardware, 2/3 delay.

Computes the BNB/Batcher ratios over a wide size sweep, locates the
threshold crossovers, and pins the asymptotic limits symbolically.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import (
    delay_leading_ratio,
    hardware_leading_ratio,
)
from repro.analysis.figures import (
    delay_growth_series,
    hardware_growth_series,
    ratio_crossovers,
)


def test_hardware_ratio_sweep(benchmark, write_artifact):
    series = benchmark(lambda: hardware_growth_series(range(3, 24)))
    ratios = [p.bnb_over_batcher for p in series]
    assert ratios == sorted(ratios, reverse=True)
    assert ratios[0] < 0.70  # already well below parity at N=8
    assert ratios[-1] > 1 / 3  # approaches but never reaches the limit

    lines = ["N | Batcher | Koppelman | BNB | BNB/Batcher"]
    lines += [
        f"{p.n} | {p.batcher:.3e} | {p.koppelman:.3e} | {p.bnb:.3e} | "
        f"{p.bnb_over_batcher:.4f}"
        for p in series
    ]
    write_artifact("comparison_hardware_growth.txt", "\n".join(lines))


def test_delay_ratio_sweep(benchmark, write_artifact):
    series = benchmark(lambda: delay_growth_series(range(3, 24)))
    ratios = [p.bnb / p.batcher for p in series]
    # Peak at N=16 (lower-order terms), strictly decreasing beyond.
    assert ratios[1:] == sorted(ratios[1:], reverse=True)
    assert all(r <= 0.84 for r in ratios)
    assert ratios[-1] > 2 / 3

    lines = ["N | Batcher | Koppelman | BNB | BNB/Batcher"]
    lines += [
        f"{p.n} | {p.batcher:.0f} | {p.koppelman:.0f} | {p.bnb:.0f} | "
        f"{p.bnb / p.batcher:.4f}"
        for p in series
    ]
    write_artifact("comparison_delay_growth.txt", "\n".join(lines))


def test_asymptotic_limits(benchmark):
    """The abstract's claims, pinned at a symbolic size (N = 2^300)."""

    def limits():
        n = 1 << 300
        return hardware_leading_ratio(n), delay_leading_ratio(n)

    hardware, delay = benchmark(limits)
    # Convergence is O(1 / log N): at N = 2^300 the hardware ratio sits
    # ~0.006 above 1/3 and the delay ratio ~0.006 above 2/3.
    assert hardware == pytest.approx(1 / 3, abs=1e-2)
    assert delay == pytest.approx(2 / 3, abs=1e-2)


def test_crossover_locations(benchmark, write_artifact):
    def crossings():
        return (
            ratio_crossovers((0.6, 0.5, 0.45, 0.40), quantity="hardware"),
            ratio_crossovers((0.83, 0.80, 0.75, 0.72), quantity="delay"),
        )

    hardware, delay = benchmark(crossings)
    # Hardware: 0.6 crossed at N=64, 0.5 at N=1024, 0.45 at N=32768.
    assert hardware[0.6] == 2**6
    assert hardware[0.5] == 2**10
    assert hardware[0.45] == 2**15
    # Delay: 0.83 crossed at N=64, 0.80 at N=512, 0.75 at N=2^17.
    assert delay[0.83] == 2**6
    assert delay[0.80] == 2**9
    assert delay[0.75] == 2**17
    lines = ["hardware crossovers: " + repr(hardware)]
    lines += ["delay crossovers: " + repr(delay)]
    write_artifact("comparison_crossovers.txt", "\n".join(lines))
