"""Fig. 1 — the generalized baseline network's recursive structure.

Regenerates the stage/box inventory of B(m, SB) (stage i holds 2^i
boxes SB(m-i), joined by 2^(m-i)-unshuffles), verifies the recursive
construction against the plain baseline network of Wu & Feng, and
renders the ASCII figure.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import gbn_structure_summary
from repro.core import GeneralizedBaselineNetwork
from repro.topology import baseline_network, topologically_equivalent
from repro.viz import render_gbn


@pytest.mark.parametrize("m", [3, 5, 8, 12])
def test_definition2_inventory(benchmark, m):
    summary = benchmark(lambda: gbn_structure_summary(m))
    assert len(summary) == m
    for stage in summary:
        assert stage["boxes"] == 1 << stage["stage"]
        assert stage["box_exponent"] == m - stage["stage"]
    assert sum(s["boxes"] for s in summary) == (1 << m) - 1


def test_fig1_render(benchmark, write_artifact):
    text = benchmark(lambda: render_gbn(3))
    assert "1 x SB(3)" in text and "2 x SB(2)" in text and "4 x SB(1)" in text
    write_artifact("fig1_gbn_8.txt", text)


def test_gbn_with_simple_switches_is_baseline(benchmark):
    """Instantiating the GBN with sw boxes reproduces the baseline
    network of reference [12], switch for switch."""

    def check():
        results = []
        for m in (2, 3, 4):
            gbn = GeneralizedBaselineNetwork(m)
            base = baseline_network(1 << m)
            results.append(gbn.switch_count_if_simple() == base.switch_count)
        return results

    assert all(benchmark(check))


def test_gbn_equivalence_class(benchmark):
    """The baseline skeleton is topologically equivalent to omega —
    the Wu-Feng class the GBN generalizes."""
    from repro.topology import omega_network

    result = benchmark(
        lambda: topologically_equivalent(baseline_network(8), omega_network(8))
    )
    assert result
