"""Cluster soak: a million words across four nodes, one killed mid-run.

The acceptance benchmark for the cluster tier
(:mod:`repro.cluster`): four in-process gateway nodes behind a
:class:`~repro.cluster.ClusterRouter`, a
:class:`~repro.cluster.ClusterClient` pushing concurrent
``send_batch`` bursts through the real loopback wire, and a deliberate
node kill at ~40% progress.  The bar is absolute, not statistical:

* **100% delivery** — every requested word acknowledged by a node;
  the run raises (and the artifact is never written) if even one is
  lost across the failover.
* **zero misdeliveries** — interleaved single-``send`` echo probes
  must land on the node and local line the shard map predicted, on
  top of the fabric's own sampled boundary verification.

The harness is :func:`repro.cluster.run_soak` — the same code path as
``repro cluster --smoke`` — so the CI smoke and this soak differ only
in scale.  The artifact (``benchmarks/out/cluster_soak.json``) is
schema-gated by ``benchmarks/check_artifacts.py``; at the measured
~300k words/s the full million-word soak fits CI without a quick mode.
"""

from __future__ import annotations

import asyncio
import json

from repro.cluster import run_soak

NODES = 4
M = 6                       # N=64 per node -> global N=256
WORDS = 1_000_000
BURST = 16_384
IN_FLIGHT = 4


def test_cluster_soak(write_artifact):
    """>=1M words, >=4 nodes, one killed mid-run, nothing lost."""
    report = asyncio.run(
        run_soak(
            nodes=NODES,
            m=M,
            words=WORDS,
            burst=BURST,
            in_flight=IN_FLIGHT,
            kill=True,
            kill_at=0.4,
            seed=7,
        )
    )
    artifact = {"benchmark": "cluster_soak", **report}
    write_artifact("cluster_soak.json", json.dumps(artifact, indent=2))

    assert report["nodes"] >= 4
    assert report["requested_words"] >= 1_000_000
    assert report["delivered_words"] >= report["requested_words"]
    assert report["delivery_rate"] >= 1.0
    assert report["misdeliveries"] == 0
    assert report["killed_node"] is not None, "the kill never fired"
    assert report["map_version"] >= 2, "the death never resharded the map"
    assert report["node_states"][report["killed_node"]] == "down"
    assert report["client_counters"]["failovers"] >= 1
