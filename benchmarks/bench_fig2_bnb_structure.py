"""Fig. 2 — the 8-input, q=3-slice BNB network.

Rebuilds the figure's exact configuration (N=8, three 1-bit slices,
MSB to slice 0) at three fidelities — the object model, the hardware
netlist and the ASCII rendering — and checks the defining property:
slice i of each stage-i nested network is the bit-sorter slice.
"""

from __future__ import annotations

import pytest

from repro.core import BNBNetwork
from repro.hardware import build_bnb_netlist
from repro.permutations import all_permutations
from repro.viz import render_bnb_profile


def test_fig2_object_model(benchmark):
    net = benchmark(lambda: BNBNetwork(3, w=0))
    profile = net.profile()
    assert [len(stage) for stage in profile] == [1, 2, 4]
    for i, stage in enumerate(profile):
        for spec in stage:
            assert spec.bsn_slice == i


def test_fig2_netlist_construction(benchmark):
    netlist, ports = benchmark(lambda: build_bnb_netlist(3))
    assert len(netlist.inputs) == 8 * 3
    assert len(netlist.outputs) == 8 * 3
    # Spot-check the figure's semantics on a permutation.
    out = netlist.evaluate(ports.input_assignment([3, 1, 0, 2, 7, 5, 4, 6]))
    assert ports.decode_outputs(out) == list(range(8))


def test_fig2_exhaustive_routing(benchmark):
    """The figure's network routes all 8! = 40320 permutations — the
    full Theorem 2 statement at the figure's size (object model)."""
    net = BNBNetwork(3)

    def route_all():
        count = 0
        for pi in all_permutations(8):
            outputs, _ = net.route(pi.to_list())
            count += all(w.address == a for a, w in enumerate(outputs))
        return count

    delivered = benchmark.pedantic(route_all, rounds=1, iterations=1)
    assert delivered == 40320


def test_fig2_render(benchmark, write_artifact):
    text = benchmark(lambda: render_bnb_profile(3, w=0))
    assert "BSN(0,0)=slice-0" in text
    write_artifact("fig2_bnb_8.txt", text)
