"""Eqs. 10-12 — Batcher comparator counts, hardware and delay.

Builds the odd-even merge network across sizes, asserting Eq. 10's
count, the m(m+1)/2 stage depth, and Eq. 11/12's cost and delay models;
times construction and routing.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import (
    batcher_comparators,
    batcher_delay,
    batcher_function_slices,
    batcher_switch_slices,
)
from repro.baselines import BatcherNetwork
from repro.permutations import random_permutation


@pytest.mark.parametrize("m", [4, 6, 8, 10])
def test_eq10_construction(benchmark, m):
    net = benchmark(lambda: BatcherNetwork(m))
    n = 1 << m
    assert net.comparator_count == batcher_comparators(n)
    assert net.stage_count == m * (m + 1) // 2


@pytest.mark.parametrize("m,w", [(6, 0), (6, 16), (10, 16)])
def test_eq11_cost_model(benchmark, m, w):
    net = benchmark(lambda: BatcherNetwork(m, w=w))
    n = 1 << m
    assert net.switch_slice_count == batcher_switch_slices(n, w)
    assert net.function_slice_count == batcher_function_slices(n)


@pytest.mark.parametrize("m", [4, 6, 8])
def test_eq12_delay_model(benchmark, m):
    net = BatcherNetwork(m)
    delay = benchmark(lambda: net.propagation_delay())
    assert delay == pytest.approx(batcher_delay(1 << m))


@pytest.mark.parametrize("m", [6, 8, 10])
def test_routing_pass(benchmark, m):
    """Time one full software routing pass (sort by address)."""
    net = BatcherNetwork(m)
    n = 1 << m
    workload = [random_permutation(n, rng=s).to_list() for s in range(8)]
    state = {"i": 0}

    def route_once():
        addresses = workload[state["i"] % len(workload)]
        state["i"] += 1
        outputs, _ = net.route(addresses)
        return outputs

    outputs = benchmark(route_once)
    assert [w.address for w in outputs] == list(range(n))
