"""A generic multistage interconnection network of 2 x 2 switches.

:class:`MultistageNetwork` models any network of the Wu-Feng class: an
alternating sequence of switch columns and fixed interstage wirings.
It supports three modes of use:

* **explicit switching** — apply caller-supplied control vectors
  (:meth:`MultistageNetwork.route_with_controls`), the primitive every
  higher-level router reduces to;
* **destination-tag self-routing**
  (:meth:`MultistageNetwork.self_route`) with per-stage routing-bit
  schedules and conflict reporting — this is the *restricted* routing
  whose failures motivate the BNB design;
* **structural queries** — switch counts, depth, per-stage widths — used
  by the hardware-accounting layer.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

from ..bits import require_power_of_two
from ..exceptions import PathConflictError
from ..permutations.permutation import Permutation
from .connections import identity_connection, is_valid_connection
from .stage import SwitchColumn

__all__ = ["MultistageNetwork", "RoutedPacketTrace", "SelfRoutingReport"]


@dataclasses.dataclass(frozen=True)
class RoutedPacketTrace:
    """The sequence of line indices one packet visited, stage by stage.

    ``positions[0]`` is the input line, ``positions[-1]`` the output
    line; there is one entry after every switch column and every
    wiring.
    """

    packet: object
    positions: Tuple[int, ...]

    @property
    def input_line(self) -> int:
        return self.positions[0]

    @property
    def output_line(self) -> int:
        return self.positions[-1]


@dataclasses.dataclass
class SelfRoutingReport:
    """Outcome of a destination-tag self-routing attempt."""

    delivered: bool
    outputs: List[Optional[int]]
    conflicts: List[Tuple[int, int]]  # (stage index, switch index)
    controls: List[List[int]]

    @property
    def conflict_count(self) -> int:
        return len(self.conflicts)


class MultistageNetwork:
    """An ``N``-line network: columns of 2 x 2 switches joined by wirings.

    Parameters
    ----------
    n:
        Number of lines (a power of two).
    wirings:
        ``wirings[i]`` is the connection applied *after* switch column
        ``i``; a network of ``s`` columns takes ``s - 1`` wirings (no
        wiring after the last column).  Each wiring is a permutation
        list as produced by :mod:`repro.topology.connections`.
    input_wiring / output_wiring:
        Optional fixed wirings before the first and after the last
        column (the butterfly and Benes constructions use these).
    name:
        Human-readable topology name for diagnostics.
    """

    def __init__(
        self,
        n: int,
        stage_count: int,
        wirings: Sequence[Sequence[int]],
        input_wiring: Optional[Sequence[int]] = None,
        output_wiring: Optional[Sequence[int]] = None,
        name: str = "multistage",
    ) -> None:
        require_power_of_two(n, "network width")
        if stage_count < 1:
            raise ValueError(f"need at least one stage, got {stage_count}")
        if len(wirings) != stage_count - 1:
            raise ValueError(
                f"{stage_count} stages need {stage_count - 1} interstage "
                f"wirings, got {len(wirings)}"
            )
        self.n = n
        self.name = name
        self.columns = [
            SwitchColumn(n, label=f"{name}:stage{i}") for i in range(stage_count)
        ]
        self.wirings: List[List[int]] = []
        for i, wiring in enumerate(wirings):
            wiring = list(wiring)
            if len(wiring) != n or not is_valid_connection(wiring):
                raise ValueError(f"interstage wiring {i} is not a permutation of 0..{n-1}")
            self.wirings.append(wiring)
        self.input_wiring = (
            list(input_wiring) if input_wiring is not None else None
        )
        self.output_wiring = (
            list(output_wiring) if output_wiring is not None else None
        )
        for extra, label in (
            (self.input_wiring, "input"),
            (self.output_wiring, "output"),
        ):
            if extra is not None and (
                len(extra) != n or not is_valid_connection(extra)
            ):
                raise ValueError(f"{label} wiring is not a permutation of 0..{n-1}")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def stage_count(self) -> int:
        return len(self.columns)

    @property
    def switch_count(self) -> int:
        """Total number of 2 x 2 switches."""
        return sum(column.switch_count for column in self.columns)

    @property
    def depth(self) -> int:
        """Number of switch columns a packet traverses."""
        return self.stage_count

    def controls_shape(self) -> List[int]:
        """Per-stage control-vector lengths (for allocating settings)."""
        return [column.switch_count for column in self.columns]

    def empty_controls(self) -> List[List[int]]:
        """An all-straight control setting."""
        return [[0] * column.switch_count for column in self.columns]

    # ------------------------------------------------------------------
    # Routing primitives
    # ------------------------------------------------------------------
    @staticmethod
    def _apply_wiring(lines: Sequence, wiring: Sequence[int]) -> List:
        out: List = [None] * len(lines)
        for j, value in enumerate(lines):
            out[wiring[j]] = value
        return out

    def route_with_controls(
        self,
        items: Sequence,
        controls: Sequence[Sequence[int]],
        trace: bool = False,
    ) -> Tuple[List, Optional[List[RoutedPacketTrace]]]:
        """Push *items* through the network under explicit *controls*.

        Returns ``(outputs, traces)``; *traces* is ``None`` unless
        *trace* is requested (tracing costs an index bookkeeping pass).
        """
        if len(items) != self.n:
            raise ValueError(f"expected {self.n} items, got {len(items)}")
        if len(controls) != self.stage_count:
            raise ValueError(
                f"expected {self.stage_count} control vectors, got {len(controls)}"
            )
        lines = list(items)
        positions: Optional[List[List[int]]] = None
        index_lines: List[int] = []
        if trace:
            index_lines = list(range(self.n))
            positions = [[j] for j in range(self.n)]

        def advance(new_lines: List, new_indices: Optional[List[int]]) -> None:
            nonlocal lines, index_lines
            lines = new_lines
            if trace and new_indices is not None:
                index_lines = new_indices
                for line, packet in enumerate(index_lines):
                    positions[packet].append(line)  # type: ignore[index]

        if self.input_wiring is not None:
            advance(
                self._apply_wiring(lines, self.input_wiring),
                self._apply_wiring(index_lines, self.input_wiring) if trace else None,
            )
        for i, column in enumerate(self.columns):
            advance(
                column.apply(lines, controls[i]),
                column.apply(index_lines, controls[i]) if trace else None,
            )
            if i < len(self.wirings):
                advance(
                    self._apply_wiring(lines, self.wirings[i]),
                    self._apply_wiring(index_lines, self.wirings[i])
                    if trace
                    else None,
                )
        if self.output_wiring is not None:
            advance(
                self._apply_wiring(lines, self.output_wiring),
                self._apply_wiring(index_lines, self.output_wiring)
                if trace
                else None,
            )
        traces = None
        if trace:
            traces = [
                RoutedPacketTrace(packet=items[j], positions=tuple(positions[j]))  # type: ignore[index]
                for j in range(self.n)
            ]
        return lines, traces

    def realized_permutation(
        self, controls: Sequence[Sequence[int]]
    ) -> Permutation:
        """The input-line -> output-line permutation under *controls*."""
        outputs, _ = self.route_with_controls(list(range(self.n)), controls)
        inverse = [0] * self.n
        for line, packet in enumerate(outputs):
            inverse[packet] = line
        return Permutation(inverse)

    def self_route(
        self,
        destinations: Sequence[Optional[int]],
        bit_schedule: Sequence[int],
        strict: bool = False,
    ) -> SelfRoutingReport:
        """Destination-tag routing: stage ``i`` steers by bit ``bit_schedule[i]``.

        ``destinations[j]`` is the output address requested by the
        packet on input line ``j`` (``None`` = idle line).  When two
        packets in one switch request the same port, the pair is
        recorded as a conflict; with ``strict=True`` a
        :class:`~repro.exceptions.PathConflictError` is raised instead.
        """
        if len(destinations) != self.n:
            raise ValueError(
                f"expected {self.n} destinations, got {len(destinations)}"
            )
        if len(bit_schedule) != self.stage_count:
            raise ValueError(
                f"expected {self.stage_count} routing bits, got {len(bit_schedule)}"
            )
        lines: List[Optional[int]] = list(destinations)
        conflicts: List[Tuple[int, int]] = []
        all_controls: List[List[int]] = []
        if self.input_wiring is not None:
            lines = self._apply_wiring(lines, self.input_wiring)
        for i, column in enumerate(self.columns):
            bit_index = bit_schedule[i]
            wanted = [
                None if dest is None else (dest >> bit_index) & 1 for dest in lines
            ]
            controls, stage_conflicts = column.controls_for_destinations(wanted)
            for t in stage_conflicts:
                if strict:
                    raise PathConflictError(i, t, (lines[2 * t], lines[2 * t + 1]))
                conflicts.append((i, t))
            all_controls.append(controls)
            lines = column.apply(lines, controls)
            if i < len(self.wirings):
                lines = self._apply_wiring(lines, self.wirings[i])
        if self.output_wiring is not None:
            lines = self._apply_wiring(lines, self.output_wiring)
        delivered = not conflicts and all(
            dest is None or dest == j for j, dest in enumerate(lines)
        )
        return SelfRoutingReport(
            delivered=delivered,
            outputs=lines,
            conflicts=conflicts,
            controls=all_controls,
        )

    def __repr__(self) -> str:
        return (
            f"MultistageNetwork(name={self.name!r}, n={self.n}, "
            f"stages={self.stage_count}, switches={self.switch_count})"
        )
