"""The baseline network of Wu and Feng (reference [12] of the paper).

An ``N = 2**m``-input baseline network has ``m`` switch columns; the
wiring after column ``i`` is the ``2**(m-i)``-unshuffle ``U_{m-i}^m``.
Equivalently (and this is how the paper introduces it) it is the
generalized baseline network built from plain ``2 x 2`` switches.

Destination-tag self-routing uses the address bits MSB-first: at stage
``i`` a packet exits on the even port of its switch when bit
``m - 1 - i`` of its destination is 0.  Only a thin slice of all
permutations passes without conflict — the limitation the BNB network
removes.
"""

from __future__ import annotations

from typing import List

from ..bits import require_power_of_two
from .connections import unshuffle_connection
from .multistage import MultistageNetwork

__all__ = ["baseline_network", "baseline_routing_bit_schedule"]


def baseline_network(n: int) -> MultistageNetwork:
    """Build the ``n``-input baseline network."""
    m = require_power_of_two(n, "baseline network size")
    wirings = [unshuffle_connection(n, m - i) for i in range(m - 1)]
    return MultistageNetwork(
        n=n,
        stage_count=m,
        wirings=wirings,
        name="baseline",
    )


def baseline_routing_bit_schedule(n: int) -> List[int]:
    """Destination bits consumed per stage: MSB first."""
    m = require_power_of_two(n, "baseline network size")
    return [m - 1 - i for i in range(m)]
