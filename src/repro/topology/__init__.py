"""Multistage interconnection network (MIN) substrate.

The BNB network is defined on top of the *baseline* network of Wu and
Feng, one member of the class of ``log N``-stage networks built from
``2 x 2`` switches and fixed interstage wirings.  This package provides:

* a library of interstage connection patterns
  (:mod:`~repro.topology.connections`),
* a generic :class:`~repro.topology.multistage.MultistageNetwork` that
  models any such network, applies switch settings, self-routes by
  destination tags and detects conflicts,
* constructors for the baseline, omega and butterfly topologies, and
* graph-based topological-equivalence checking
  (:mod:`~repro.topology.equivalence`), reproducing the sense in which
  Wu and Feng's class is "one network in different clothes".
"""

from .connections import (
    identity_connection,
    unshuffle_connection,
    shuffle_connection,
    butterfly_connection,
    perfect_shuffle_connection,
    inverse_shuffle_connection,
    compose_connections,
    invert_connection,
    is_valid_connection,
)
from .stage import SwitchColumn, SwitchState
from .multistage import MultistageNetwork, RoutedPacketTrace, SelfRoutingReport
from .baseline import baseline_network, baseline_routing_bit_schedule
from .omega import omega_network, omega_routing_bit_schedule
from .butterfly import butterfly_network, butterfly_routing_bit_schedule
from .flip import flip_network, flip_routing_bit_schedule
from .equivalence import network_graph, topologically_equivalent
from .capacity import (
    realizable_permutations,
    permutation_capacity,
    has_unique_settings,
)
from .paths import path_count_matrix, path_multiplicity, is_banyan

__all__ = [
    "identity_connection",
    "unshuffle_connection",
    "shuffle_connection",
    "butterfly_connection",
    "perfect_shuffle_connection",
    "inverse_shuffle_connection",
    "compose_connections",
    "invert_connection",
    "is_valid_connection",
    "SwitchColumn",
    "SwitchState",
    "MultistageNetwork",
    "RoutedPacketTrace",
    "SelfRoutingReport",
    "baseline_network",
    "baseline_routing_bit_schedule",
    "omega_network",
    "omega_routing_bit_schedule",
    "butterfly_network",
    "butterfly_routing_bit_schedule",
    "flip_network",
    "flip_routing_bit_schedule",
    "network_graph",
    "topologically_equivalent",
    "realizable_permutations",
    "permutation_capacity",
    "has_unique_settings",
    "path_count_matrix",
    "path_multiplicity",
    "is_banyan",
]
