"""The flip network (Batcher's STARAN network).

``log N`` stages of switch columns each *followed* by an inverse
shuffle — the mirror arrangement of the omega network, and another
member of Wu & Feng's topological-equivalence class.  Destination-tag
routing consumes the address bits LSB-first: the last column's inverse
shuffle has already gathered lines that agree on the high bits, so the
early columns fix the low ones.
"""

from __future__ import annotations

from typing import List

from ..bits import require_power_of_two
from .connections import inverse_shuffle_connection
from .multistage import MultistageNetwork

__all__ = ["flip_network", "flip_routing_bit_schedule"]


def flip_network(n: int) -> MultistageNetwork:
    """Build the ``n``-input flip network."""
    m = require_power_of_two(n, "flip network size")
    unshuffle = inverse_shuffle_connection(n)
    return MultistageNetwork(
        n=n,
        stage_count=m,
        wirings=[list(unshuffle) for _ in range(m - 1)],
        output_wiring=unshuffle,
        name="flip",
    )


def flip_routing_bit_schedule(n: int) -> List[int]:
    """Destination bits consumed per stage: LSB first."""
    m = require_power_of_two(n, "flip network size")
    return list(range(m))
