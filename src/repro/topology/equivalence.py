"""Topological equivalence of multistage networks.

Wu and Feng showed that the baseline, omega, flip and indirect-binary-
cube networks are *topologically equivalent*: one can be redrawn into
another by relabeling lines, without changing which switch connects to
which.  We formalize a network as a directed graph — terminals and
switches as nodes, wires as edges — and test equivalence by graph
isomorphism (networkx VF2), constrained so terminals map to terminals
and switches to switches.

This is quadratic-ish and meant for the small sizes the test suite
uses; it documents and verifies the claim that the GBN underlying the
BNB network is "the" log-stage network in the same sense.
"""

from __future__ import annotations

from typing import Dict, Tuple

import networkx as nx

from .multistage import MultistageNetwork

__all__ = ["network_graph", "topologically_equivalent"]


def network_graph(network: MultistageNetwork) -> "nx.DiGraph":
    """Build the wiring graph of *network*.

    Nodes: ``("in", j)`` and ``("out", j)`` terminals and
    ``("sw", stage, t)`` switches, each tagged with a ``kind``
    attribute.  Edges follow the physical wires; switch internals are
    collapsed to a single node because a 2 x 2 switch is symmetric in
    its ports, which is exactly the freedom topological equivalence
    allows.
    """
    graph = nx.DiGraph()
    n = network.n
    for j in range(n):
        graph.add_node(("in", j), kind="input")
        graph.add_node(("out", j), kind="output")
    for stage in range(network.stage_count):
        for t in range(n // 2):
            graph.add_node(("sw", stage, t), kind="switch")

    def switch_of(stage: int, line: int) -> Tuple[str, int, int]:
        return ("sw", stage, line // 2)

    # Input terminals to first column (through the optional input wiring).
    for j in range(n):
        line = network.input_wiring[j] if network.input_wiring else j
        graph.add_edge(("in", j), switch_of(0, line))
    # Interstage wires.
    for stage in range(network.stage_count - 1):
        wiring = network.wirings[stage]
        for j in range(n):
            graph.add_edge(
                switch_of(stage, j), switch_of(stage + 1, wiring[j])
            )
    # Last column to output terminals (through the optional output wiring).
    last = network.stage_count - 1
    for j in range(n):
        line = network.output_wiring[j] if network.output_wiring else j
        graph.add_edge(switch_of(last, j), ("out", line))
    return graph


def topologically_equivalent(
    first: MultistageNetwork, second: MultistageNetwork
) -> bool:
    """``True`` when the two networks' wiring graphs are isomorphic.

    Terminal nodes may only map to terminal nodes of the same side and
    switches to switches; this matches Wu & Feng's notion of redrawing
    a network by renaming lines.
    """
    if first.n != second.n or first.stage_count != second.stage_count:
        return False
    graph_a = network_graph(first)
    graph_b = network_graph(second)

    def node_match(attrs_a: Dict, attrs_b: Dict) -> bool:
        return attrs_a["kind"] == attrs_b["kind"]

    matcher = nx.algorithms.isomorphism.DiGraphMatcher(
        graph_a, graph_b, node_match=node_match
    )
    return matcher.is_isomorphic()
