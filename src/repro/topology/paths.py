"""Path multiplicity analysis for multistage networks.

The banyan property — exactly one path between every input/output
pair — is what makes destination-tag self-routing well-defined and
what limits a single log-stage network to ``2^S`` permutations.  The
Benes network restores rearrangeability by providing ``2^(log N - 1)``
alternative paths per pair.  This module counts paths exactly by
dynamic programming over the stage DAG, so both facts are verified
structurally rather than assumed.
"""

from __future__ import annotations

from typing import List

from .multistage import MultistageNetwork

__all__ = ["path_count_matrix", "is_banyan", "path_multiplicity"]


def path_count_matrix(network: MultistageNetwork) -> List[List[int]]:
    """``matrix[i][o]`` = number of distinct paths from input i to output o.

    A path chooses one of the two outputs at every switch it crosses;
    wirings are fixed.  Complexity O(N^2 * stages).
    """
    n = network.n
    matrix: List[List[int]] = []
    for source in range(n):
        counts = [0] * n
        start = (
            network.input_wiring[source]
            if network.input_wiring is not None
            else source
        )
        counts[start] = 1
        for stage_index in range(network.stage_count):
            after_switch = [0] * n
            for t in range(n // 2):
                pair_total = counts[2 * t] + counts[2 * t + 1]
                # Each packet at either input can exit on either port.
                after_switch[2 * t] = pair_total
                after_switch[2 * t + 1] = pair_total
            if stage_index < len(network.wirings):
                wired = [0] * n
                wiring = network.wirings[stage_index]
                for line, value in enumerate(after_switch):
                    wired[wiring[line]] = value
                counts = wired
            else:
                counts = after_switch
        if network.output_wiring is not None:
            wired = [0] * n
            for line, value in enumerate(counts):
                wired[network.output_wiring[line]] = value
            counts = wired
        matrix.append(counts)
    return matrix


def path_multiplicity(network: MultistageNetwork) -> int:
    """The common path count if uniform; raises if pairs differ.

    Banyan-class networks have multiplicity 1; the Benes fabric has
    ``2^(stage_count - log N)`` (its extra columns double the choices).
    """
    matrix = path_count_matrix(network)
    values = {count for row in matrix for count in row}
    if len(values) != 1:
        raise ValueError(
            f"path counts are not uniform across pairs: {sorted(values)[:5]}..."
        )
    return values.pop()


def is_banyan(network: MultistageNetwork) -> bool:
    """``True`` when every input/output pair has exactly one path."""
    return all(
        count == 1 for row in path_count_matrix(network) for count in row
    )
