"""Lawrie's omega network.

``log N`` identical stages, each a perfect shuffle followed by a column
of ``2 x 2`` switches.  Destination-tag routing consumes the address
bits MSB-first.  Topologically equivalent to the baseline network (see
:mod:`repro.topology.equivalence`) but with a different line numbering,
so the two accept different sets of self-routable permutations.
"""

from __future__ import annotations

from typing import List

from ..bits import require_power_of_two
from .connections import perfect_shuffle_connection
from .multistage import MultistageNetwork

__all__ = ["omega_network", "omega_routing_bit_schedule"]


def omega_network(n: int) -> MultistageNetwork:
    """Build the ``n``-input omega network."""
    m = require_power_of_two(n, "omega network size")
    shuffle = perfect_shuffle_connection(n)
    return MultistageNetwork(
        n=n,
        stage_count=m,
        wirings=[list(shuffle) for _ in range(m - 1)],
        input_wiring=shuffle,
        name="omega",
    )


def omega_routing_bit_schedule(n: int) -> List[int]:
    """Destination bits consumed per stage: MSB first."""
    m = require_power_of_two(n, "omega network size")
    return [m - 1 - i for i in range(m)]
