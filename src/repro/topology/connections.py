"""Interstage connection patterns for multistage networks.

A *connection* between two columns of ``N`` lines is a fixed wiring,
represented as a list ``wiring`` of length ``N`` where output ``j`` of
the earlier column drives input ``wiring[j]`` of the later column.
Connections are therefore permutations of ``0 .. N-1``; helpers here
build the patterns used by the classic topologies and by the paper's
generalized baseline network.
"""

from __future__ import annotations

from typing import List, Sequence

from ..bits import (
    butterfly_index,
    cached_shuffle_permutation,
    cached_unshuffle_permutation,
    require_power_of_two,
    rotate_left,
    rotate_right,
)

__all__ = [
    "identity_connection",
    "unshuffle_connection",
    "shuffle_connection",
    "butterfly_connection",
    "perfect_shuffle_connection",
    "inverse_shuffle_connection",
    "compose_connections",
    "invert_connection",
    "is_valid_connection",
]


def identity_connection(n: int) -> List[int]:
    """Straight-through wiring."""
    require_power_of_two(n)
    return list(range(n))


def unshuffle_connection(n: int, k: int) -> List[int]:
    """The paper's ``U_k^m`` wiring on ``n = 2**m`` lines (Definition 1).

    The low ``k`` index bits rotate right by one; within every block of
    ``2**k`` lines the even offsets land in the block's upper half and
    the odd offsets in its lower half, preserving order.
    """
    m = require_power_of_two(n)
    return list(cached_unshuffle_permutation(k, m))


def shuffle_connection(n: int, k: int) -> List[int]:
    """Inverse of :func:`unshuffle_connection` (low *k* bits rotate left)."""
    m = require_power_of_two(n)
    return list(cached_shuffle_permutation(k, m))


def butterfly_connection(n: int, k: int) -> List[int]:
    """Swap index bit *k* with bit 0 (the ``k``-th butterfly)."""
    m = require_power_of_two(n)
    return [butterfly_index(j, k, m) for j in range(n)]


def perfect_shuffle_connection(n: int) -> List[int]:
    """Full-width left rotation: the omega network's interstage wiring."""
    m = require_power_of_two(n)
    return [rotate_left(j, m) for j in range(n)]


def inverse_shuffle_connection(n: int) -> List[int]:
    """Full-width right rotation (the flip network's wiring)."""
    m = require_power_of_two(n)
    return [rotate_right(j, m) for j in range(n)]


def compose_connections(first: Sequence[int], second: Sequence[int]) -> List[int]:
    """Wiring equivalent to *first* followed by *second*."""
    if len(first) != len(second):
        raise ValueError(
            f"cannot compose connections of sizes {len(first)} and {len(second)}"
        )
    return [second[first[j]] for j in range(len(first))]


def invert_connection(wiring: Sequence[int]) -> List[int]:
    """The reverse wiring: if ``wiring[a] == b`` then ``result[b] == a``."""
    result = [0] * len(wiring)
    for a, b in enumerate(wiring):
        result[b] = a
    return result


def is_valid_connection(wiring: Sequence[int]) -> bool:
    """``True`` when *wiring* is a permutation of ``0 .. len-1``."""
    n = len(wiring)
    seen = [False] * n
    for v in wiring:
        if not isinstance(v, int) or not 0 <= v < n or seen[v]:
            return False
        seen[v] = True
    return True
