"""The butterfly (indirect binary cube) network.

Stage ``i`` pairs lines that differ in index bit ``i`` and corrects
that bit of the packet's position toward its destination, so
destination-tag routing consumes the address bits LSB-first.  Because
:class:`~repro.topology.multistage.MultistageNetwork` columns pair
*adjacent* lines, each stage is realized as a butterfly wiring that
brings bit-``i`` partners adjacent, the switch column, and the inverse
wiring — composed with the next stage's wiring into a single interstage
permutation.
"""

from __future__ import annotations

from typing import List

from ..bits import require_power_of_two
from .connections import butterfly_connection, compose_connections
from .multistage import MultistageNetwork

__all__ = ["butterfly_network", "butterfly_routing_bit_schedule"]


def butterfly_network(n: int) -> MultistageNetwork:
    """Build the ``n``-input butterfly (indirect binary cube) network."""
    m = require_power_of_two(n, "butterfly network size")
    # While column i operates, the lines sit in butterfly_i-transformed
    # order (bit i moved to position 0).  butterfly_0 is the identity, so
    # no input wiring is needed; after the last column the butterfly_{m-1}
    # involution restores true line order.
    wirings: List[List[int]] = []
    for i in range(m - 1):
        undo_current = butterfly_connection(n, i)
        apply_next = butterfly_connection(n, i + 1)
        wirings.append(compose_connections(undo_current, apply_next))
    output_wiring = butterfly_connection(n, m - 1) if m > 1 else None
    return MultistageNetwork(
        n=n,
        stage_count=m,
        wirings=wirings,
        output_wiring=output_wiring,
        name="butterfly",
    )


def butterfly_routing_bit_schedule(n: int) -> List[int]:
    """Destination bits consumed per stage: LSB first."""
    m = require_power_of_two(n, "butterfly network size")
    return list(range(m))
