"""Exact permutation capacity of small multistage networks.

A network with ``S`` two-by-two switches realizes at most ``2**S``
permutations; how many are *distinct* is the network's exact capacity.
For the log-stage banyan-class networks the answer is exactly ``2**S``
(every setting realizes a different permutation, a consequence of the
unique-path property), which this module verifies by brute force and
which quantifies the paper's motivation precisely:

    baseline network at N=8: 4 096 of 40 320 permutations (~10%);
    the BNB network: all 40 320.

Enumeration is exponential in switch count and guarded accordingly —
it exists for exact small-N ground truth, not for scale.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Set, Tuple

from ..exceptions import ConfigurationError
from ..permutations.permutation import Permutation
from .multistage import MultistageNetwork

__all__ = ["realizable_permutations", "permutation_capacity", "has_unique_settings"]

_MAX_SWITCHES = 16


def realizable_permutations(
    network: MultistageNetwork,
) -> Set[Tuple[int, ...]]:
    """All distinct input->output permutations over every switch setting.

    Returns mappings as tuples (``mapping[input] = output``).  Guarded
    to at most ``2**16`` settings.
    """
    switch_count = network.switch_count
    if switch_count > _MAX_SWITCHES:
        raise ConfigurationError(
            f"enumeration over 2**{switch_count} settings refused; "
            f"the guard is 2**{_MAX_SWITCHES}"
        )
    shape = network.controls_shape()
    realized: Set[Tuple[int, ...]] = set()
    for bits in itertools.product((0, 1), repeat=switch_count):
        controls = []
        index = 0
        for stage_size in shape:
            controls.append(list(bits[index : index + stage_size]))
            index += stage_size
        realized.add(network.realized_permutation(controls).mapping)
    return realized


def permutation_capacity(network: MultistageNetwork) -> int:
    """The number of distinct permutations the network can realize."""
    return len(realizable_permutations(network))


def has_unique_settings(network: MultistageNetwork) -> bool:
    """``True`` when every switch setting realizes a distinct permutation.

    Equivalent to ``capacity == 2**switches`` — the unique-path
    signature of the banyan class.
    """
    return permutation_capacity(network) == 1 << network.switch_count
