"""Switch columns: one stage of 2 x 2 switches.

Every classic ``log N``-stage network is a sequence of *switch columns*
separated by fixed wirings.  A column over ``N`` lines contains
``N / 2`` two-by-two switches; switch ``t`` connects lines ``2t`` and
``2t + 1``.  A switch is either *straight* (``through``) or *exchange*
(``cross``); the column's state is the vector of those control bits.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from ..bits import require_power_of_two

__all__ = ["SwitchState", "SwitchColumn"]


class SwitchState(enum.IntEnum):
    """Setting of one 2 x 2 switch.

    The integer values match the control-bit convention used across the
    library: 0 routes input ``2t`` to output ``2t`` (straight), 1 routes
    input ``2t`` to output ``2t + 1`` (exchange).
    """

    STRAIGHT = 0
    EXCHANGE = 1


class SwitchColumn:
    """One column of ``n/2`` two-by-two switches over *n* lines.

    The column is stateless by itself; callers pass explicit control
    vectors so that the same structural object can be reused across
    routing passes (and so the fault injector can perturb controls
    without mutating shared state).
    """

    def __init__(self, n: int, label: str = "") -> None:
        require_power_of_two(n, "column width")
        self.n = n
        self.label = label

    @property
    def switch_count(self) -> int:
        """Number of 2 x 2 switches in the column."""
        return self.n // 2

    def validate_controls(self, controls: Sequence[int]) -> None:
        """Raise ``ValueError`` unless *controls* is a valid control vector."""
        if len(controls) != self.switch_count:
            raise ValueError(
                f"column of {self.switch_count} switches got "
                f"{len(controls)} controls"
            )
        for c in controls:
            if c not in (0, 1):
                raise ValueError(f"switch control must be 0 or 1, got {c!r}")

    def apply(self, lines: Sequence, controls: Sequence[int]) -> List:
        """Route *lines* through the column under *controls*.

        ``controls[t] == SwitchState.EXCHANGE`` swaps the pair
        ``(lines[2t], lines[2t+1])``.
        """
        if len(lines) != self.n:
            raise ValueError(f"expected {self.n} lines, got {len(lines)}")
        self.validate_controls(controls)
        out: List = [None] * self.n
        for t in range(self.switch_count):
            a, b = lines[2 * t], lines[2 * t + 1]
            if controls[t]:
                a, b = b, a
            out[2 * t] = a
            out[2 * t + 1] = b
        return out

    def output_port(self, input_port: int, control: int) -> int:
        """Return the output line an input leaves on under *control*."""
        if not 0 <= input_port < self.n:
            raise ValueError(f"input port {input_port} out of range")
        if control not in (0, 1):
            raise ValueError(f"switch control must be 0 or 1, got {control!r}")
        return input_port ^ control

    def controls_for_destinations(
        self, bits: Sequence[Optional[int]]
    ) -> Tuple[List[int], List[int]]:
        """Derive controls from per-line desired output parities.

        ``bits[j]`` is the parity (0 = even/upper port, 1 = odd/lower
        port) the packet on line ``j`` wants to exit with, or ``None``
        for an idle line.  Returns ``(controls, conflicts)`` where
        *conflicts* lists the switch indices at which both packets asked
        for the same port; the first packet wins there and the second is
        misrouted — callers decide whether that is an error.
        """
        if len(bits) != self.n:
            raise ValueError(f"expected {self.n} routing bits, got {len(bits)}")
        controls: List[int] = [0] * self.switch_count
        conflicts: List[int] = []
        for t in range(self.switch_count):
            want_upper = bits[2 * t]
            want_lower = bits[2 * t + 1]
            if want_upper is None and want_lower is None:
                controls[t] = SwitchState.STRAIGHT
            elif want_lower is None:
                controls[t] = SwitchState.EXCHANGE if want_upper == 1 else 0
            elif want_upper is None:
                controls[t] = SwitchState.EXCHANGE if want_lower == 0 else 0
            elif want_upper == want_lower:
                conflicts.append(t)
                controls[t] = SwitchState.EXCHANGE if want_upper == 1 else 0
            else:
                # want_upper != want_lower: exchange exactly when the
                # upper input wants the lower (odd) port.
                controls[t] = SwitchState.EXCHANGE if want_upper == 1 else 0
        return controls, conflicts

    def __repr__(self) -> str:
        label = f" {self.label!r}" if self.label else ""
        return f"SwitchColumn(n={self.n}{label})"
