"""Fault registry: health states, structured events and counters.

The registry is the service's book-keeping half.  It owns the fabric's
health state machine

    ``healthy -> suspect -> confirmed -> quarantined``

(suspect can also fall back to healthy when a BIST pass finds nothing),
an append-only log of structured :class:`FaultEvent` records, and the
running :class:`ServiceCounters`.  Listeners subscribe callable hooks
in the style of :mod:`repro.sim.monitors` — each emitted event is
pushed to every listener, and :class:`HealthMonitor` is the bundled
probe-like consumer that keeps a per-kind history.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..exceptions import FaultServiceError

__all__ = [
    "HealthState",
    "FaultEvent",
    "ServiceCounters",
    "FaultRegistry",
    "HealthMonitor",
]


class HealthState(enum.Enum):
    """Lifecycle of the primary plane's health assessment."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    CONFIRMED = "confirmed"
    QUARANTINED = "quarantined"


#: Legal state transitions; anything else is a service bug.
_TRANSITIONS = {
    (HealthState.HEALTHY, HealthState.SUSPECT),
    (HealthState.SUSPECT, HealthState.HEALTHY),
    (HealthState.SUSPECT, HealthState.CONFIRMED),
    (HealthState.CONFIRMED, HealthState.QUARANTINED),
}


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One structured entry in the service's fault log.

    ``kind`` is one of: ``detection``, ``retry``, ``bist``,
    ``localization``, ``cleared``, ``confirmation``, ``quarantine``,
    ``failover``, ``failover-plan`` (a vector fabric compiled its spare
    routing plan), ``injection`` (an operator injected a fault into the
    live primary), ``delivery``.  ``data`` carries kind-specific fields
    (syndrome sizes, candidate counts, backoff cycles, ...).
    """

    sequence: int
    kind: str
    batch: Any
    detail: str
    data: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.sequence:03d}] {self.kind:<12} {self.detail}"


@dataclasses.dataclass
class ServiceCounters:
    """Running totals across the service's lifetime."""

    batches: int = 0
    batches_clean: int = 0
    batches_degraded: int = 0
    batches_failover: int = 0
    detections: int = 0
    retries: int = 0
    backoff_cycles: int = 0
    bist_runs: int = 0
    localizations: int = 0
    failovers: int = 0
    words_clean: int = 0
    words_degraded: int = 0
    words_failover: int = 0

    @property
    def words_delivered(self) -> int:
        return self.words_clean + self.words_degraded + self.words_failover

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class FaultRegistry:
    """Health state machine + event log + listener fan-out."""

    def __init__(self) -> None:
        self.state = HealthState.HEALTHY
        self.events: List[FaultEvent] = []
        self.counters = ServiceCounters()
        #: The confirmed fault's observationally-equivalent hypothesis
        #: class — ``(coordinate, stuck value)`` pairs — once confirmed.
        self.confirmed_faults: List[Tuple[Any, int]] = []
        self._listeners: List[Callable[[FaultEvent], None]] = []

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def add_listener(self, listener: Callable[[FaultEvent], None]) -> None:
        """Register a hook called once per emitted event."""
        self._listeners.append(listener)

    def emit(
        self,
        kind: str,
        batch: Any,
        detail: str,
        **data: Any,
    ) -> FaultEvent:
        event = FaultEvent(
            sequence=len(self.events),
            kind=kind,
            batch=batch,
            detail=detail,
            data=data,
        )
        self.events.append(event)
        for listener in self._listeners:
            listener(event)
        return event

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def transition(self, target: HealthState) -> None:
        if target is self.state:
            return
        if (self.state, target) not in _TRANSITIONS:
            raise FaultServiceError(
                f"illegal health transition {self.state.value} -> "
                f"{target.value}"
            )
        self.state = target

    @property
    def is_quarantined(self) -> bool:
        return self.state is HealthState.QUARANTINED

    def confirm(self, candidates: List[Tuple[Any, int]]) -> None:
        """Record the confirmed hypothesis class and advance the state."""
        self.transition(HealthState.CONFIRMED)
        self.confirmed_faults = list(candidates)

    def event_kinds(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for event in self.events:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram


class HealthMonitor:
    """A :class:`~repro.sim.monitors.Probe`-style event consumer.

    Attach to a registry (or a :class:`~repro.service.ResilientFabric`)
    and it accumulates the event history plus a per-kind count,
    exposing the same "how many transitions / what happened last"
    queries the simulator probes do for signals.
    """

    def __init__(self, registry: Optional[FaultRegistry] = None) -> None:
        self.history: List[FaultEvent] = []
        if registry is not None:
            registry.add_listener(self.on_event)

    def on_event(self, event: FaultEvent) -> None:
        self.history.append(event)

    @property
    def event_count(self) -> int:
        return len(self.history)

    def last(self) -> Optional[FaultEvent]:
        return self.history[-1] if self.history else None

    def count_of(self, kind: str) -> int:
        return sum(event.kind == kind for event in self.history)

    def render(self) -> str:
        """The event log as one line per event (empty-safe)."""
        if not self.history:
            return "(no fault events)"
        return "\n".join(str(event) for event in self.history)
