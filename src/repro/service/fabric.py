"""The resilient fabric: verified delivery over a possibly-faulty BNB.

:class:`ResilientFabric` turns the repo's offline fault *experiments*
into an online fault *service*.  It wraps a
:class:`~repro.core.pipeline.PipelinedBNBFabric` (the primary,
self-routing plane) and drives the full lifecycle:

* **verify** — every batch's outputs are address-checked on exit;
* **retry** — misdelivered words are withdrawn and re-injected as a
  completed partial permutation (the
  :func:`~repro.faults.adaptive.detect_and_reroute` machinery), with
  exponential backoff in fabric cycles between attempts;
* **diagnose** — a misbehaving plane is probed with the deterministic
  :class:`~repro.faults.bist.BISTSchedule` and the syndromes decoded by
  :func:`~repro.faults.localization.localize`;
* **quarantine & fail over** — a confirmed fault sidelines the primary
  and subsequent traffic rides a rearrangeable Benes spare plane
  (:class:`~repro.baselines.benes.BenesNetwork`) — trading the
  self-routing property for guaranteed delivery, in the spirit of the
  KR-Benes construction.

Every step appends a structured
:class:`~repro.service.registry.FaultEvent` and bumps
:class:`~repro.service.registry.ServiceCounters`; hooks subscribe via
:meth:`add_listener` (see
:class:`~repro.service.registry.HealthMonitor`).

The delivery contract: ``submit`` either returns a batch with **every
word on its addressed line** (mode ``clean``, ``degraded`` or
``failover``) or raises a
:class:`~repro.exceptions.FaultServiceError` subclass naming the
exhausted resource.

:class:`ResilientVectorFabric` runs the same control loop on the
compiled vector engine: the primary is a
:class:`~repro.core.pipeline_fast.VectorPipelinedFabric` whose faults
are a :class:`~repro.core.plan.FaultMask`, BIST probes enter the
pipeline back to back
(:meth:`~repro.faults.bist.BISTSchedule.run_pipelined`), and the spare
is a :class:`CompiledBenesFailover` — one gather plan compiled per
localized fault set instead of an object-graph walk per batch, with a
sampled cross-check against the real
:class:`~repro.baselines.benes.BenesNetwork` looping algorithm.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.benes import BenesNetwork
from ..core.pipeline import PipelinedBNBFabric, stuck_control_override
from ..core.pipeline_fast import VectorPipelinedFabric
from ..core.plan import FaultMask, build_fault_mask
from ..core.traffic import complete_partial_permutation
from ..core.words import Word
from ..exceptions import (
    FaultServiceError,
    LocalizationAmbiguousError,
    QuarantineExhaustedError,
    RetryBudgetExceededError,
)
from ..faults.bist import BISTSchedule, shared_bist_schedule
from ..faults.injector import SwitchCoordinate
from ..faults.localization import LocalizationResult, localize
from .registry import FaultEvent, FaultRegistry, HealthState, ServiceCounters

__all__ = [
    "ResilientFabric",
    "ResilientVectorFabric",
    "CompiledBenesFailover",
    "BatchResult",
]


@dataclasses.dataclass
class BatchResult:
    """One batch's delivery report.

    ``outputs[line]`` is the word delivered to output *line* (its
    address always equals the line), or ``None`` when the batch was a
    partial frame that addressed no word to that line; ``mode`` is
    ``"clean"`` (first pass, no misroutes), ``"degraded"`` (delivered
    by primary-plane retries) or ``"failover"`` (some or all words rode
    the spare).
    """

    tag: Any
    outputs: List[Optional[Word]]
    mode: str
    retries: int

    @property
    def delivered(self) -> int:
        return sum(word is not None for word in self.outputs)


class ResilientFabric:
    """Self-diagnosing, self-quarantining permutation service.

    Parameters
    ----------
    m:
        Address width; the fabric serves ``N = 2**m`` lines.
    pipeline:
        The primary plane.  Defaults to a healthy
        :class:`~repro.core.pipeline.PipelinedBNBFabric`; tests pass
        one built with
        :func:`~repro.core.pipeline.stuck_control_override` to model a
        physical fault.
    spare:
        The failover plane — any object with a Benes-style
        ``route(words) -> (outputs, trace)`` method, or ``None`` for a
        spare-less deployment (then a confirmed fault can only degrade,
        and exhausted retries raise
        :class:`~repro.exceptions.RetryBudgetExceededError`).
    schedule:
        A pre-built :class:`~repro.faults.bist.BISTSchedule` (shareable
        across fabrics of the same ``m``); built on demand otherwise.
    retry_budget:
        Maximum repair passes per batch.
    backoff_base:
        Idle fabric cycles before retry ``k`` are
        ``backoff_base << k`` — exponential backoff on repeated
        failures.
    strict_localization:
        When set, a non-unique localization raises
        :class:`~repro.exceptions.LocalizationAmbiguousError` instead
        of quarantining the whole ambiguity class.
    """

    def __init__(
        self,
        m: int,
        pipeline: Optional[PipelinedBNBFabric] = None,
        spare: Optional[Any] = "benes",
        schedule: Optional[BISTSchedule] = None,
        retry_budget: int = 4,
        backoff_base: int = 1,
        strict_localization: bool = False,
    ) -> None:
        if m < 1:
            raise ValueError(f"the resilient fabric needs m >= 1, got {m}")
        if retry_budget < 0:
            raise ValueError(f"retry budget must be >= 0, got {retry_budget}")
        self.m = m
        self.n = 1 << m
        self.pipeline = pipeline if pipeline is not None else PipelinedBNBFabric(m)
        if self.pipeline.m != m:
            raise ValueError(
                f"pipeline is m={self.pipeline.m}, service is m={m}"
            )
        self.spare = BenesNetwork(m) if spare == "benes" else spare
        self.schedule = (
            schedule if schedule is not None else shared_bist_schedule(m)
        )
        if self.schedule.m != m:
            raise ValueError(
                f"BIST schedule is m={self.schedule.m}, service is m={m}"
            )
        self.retry_budget = retry_budget
        self.backoff_base = backoff_base
        self.strict_localization = strict_localization
        self.registry = FaultRegistry()
        #: Optional ``hook(probe, observation)`` forwarded to every BIST
        #: run; the telemetry layer counts per-probe outcomes through it.
        self.probe_hook: Optional[Any] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def counters(self) -> ServiceCounters:
        return self.registry.counters

    @property
    def state(self) -> HealthState:
        return self.registry.state

    @property
    def events(self) -> List[FaultEvent]:
        return self.registry.events

    def add_listener(self, listener) -> None:
        self.registry.add_listener(listener)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(self, addresses: Sequence[int], tag: Any = None) -> BatchResult:
        """Deliver one permutation batch, whatever it takes."""
        words = [
            Word(address=address, payload=(tag, j))
            for j, address in enumerate(addresses)
        ]
        return self.submit_words(words, tag=tag)

    def submit_words(
        self, words: Sequence[Word], tag: Any = None
    ) -> BatchResult:
        """Deliver a pre-built word batch, payloads preserved.

        The serving layer's entry point: *words* must carry a full
        permutation of addresses, but words with ``payload is None`` are
        treated as idle filler (a coalesced partial frame) — they are
        routed for the balanced-bit precondition yet owed no delivery,
        and their lines come back ``None`` in the result.

        The call is **async-safe** in the event-loop sense: it is pure
        CPU work with no blocking I/O and touches only this fabric's
        state, so an asyncio gateway may call it directly between
        awaits.  It is not thread-safe — concurrent calls on one fabric
        must be serialized (a single event loop does this naturally).
        """
        counters = self.counters
        counters.batches += 1
        words = list(words)
        expected = {
            word.address for word in words if word.payload is not None
        }
        active = len(expected)
        if self.registry.is_quarantined:
            outputs = self._route_spare(words, tag)
            counters.batches_failover += 1
            counters.words_failover += active
            self.registry.emit(
                "delivery", tag, f"{active} words via spare plane",
                mode="failover", words=active,
            )
            return BatchResult(
                tag=tag,
                outputs=self._collect(self._split(outputs)[0], expected),
                mode="failover",
                retries=0,
            )

        outputs = self.pipeline.route_batch(words, tag=tag)
        delivered, pending = self._split(outputs)
        if not pending:
            counters.batches_clean += 1
            counters.words_clean += active
            self.registry.emit(
                "delivery", tag, f"{active} words clean",
                mode="clean", words=active,
            )
            return BatchResult(
                tag=tag,
                outputs=self._collect(delivered, expected),
                mode="clean",
                retries=0,
            )

        # Fault path: detect, retry with backoff, then diagnose.
        counters.detections += 1
        if self.registry.state is HealthState.HEALTHY:
            self.registry.transition(HealthState.SUSPECT)
        self.registry.emit(
            "detection", tag,
            f"{len(pending)} of {active} words misrouted",
            misrouted=len(pending), state=self.registry.state.value,
        )
        retries = 0
        while pending and retries < self.retry_budget:
            backoff = self.backoff_base << retries
            self.pipeline.idle(backoff)
            counters.backoff_cycles += backoff
            retries += 1
            counters.retries += 1
            before = len(pending)
            outputs = self.pipeline.route_batch(
                self._repair_pass(pending), tag=(tag, "retry", retries)
            )
            newly, pending = self._split(outputs)
            delivered.update(newly)
            self.registry.emit(
                "retry", tag,
                f"pass {retries}: {before} -> {len(pending)} pending "
                f"after {backoff} backoff cycle(s)",
                attempt=retries, backoff_cycles=backoff,
                pending_before=before, pending_after=len(pending),
            )

        if self.registry.state is HealthState.SUSPECT:
            self._diagnose(tag)

        primary_words = len(delivered)
        if pending:
            if not self.registry.is_quarantined:
                raise RetryBudgetExceededError(len(pending), retries)
            spare_outputs = self._route_spare(
                self._repair_pass(pending), tag
            )
            for line, word in enumerate(spare_outputs):
                if word.payload is not None:
                    delivered[line] = word
            pending = []

        spare_words = active - primary_words
        mode = "failover" if spare_words else "degraded"
        if mode == "failover":
            counters.batches_failover += 1
            counters.words_degraded += primary_words
            counters.words_failover += spare_words
        else:
            counters.batches_degraded += 1
            counters.words_degraded += active
        self.registry.emit(
            "delivery", tag,
            f"{active} words after {retries} retr{'y' if retries == 1 else 'ies'} "
            f"({mode})",
            mode=mode, words=active, retries=retries,
        )
        return BatchResult(
            tag=tag,
            outputs=self._collect(delivered, expected),
            mode=mode,
            retries=retries,
        )

    def check(self, tag: Any = "bist") -> LocalizationResult:
        """Proactive health check: run the BIST schedule and act on it.

        Use between batches (or on a timer) to catch faults before live
        traffic does.  Returns the localization result; the registry is
        updated exactly as for a traffic-triggered diagnosis.
        """
        if self.registry.is_quarantined:
            raise QuarantineExhaustedError(
                "primary already quarantined; nothing left to check"
            )
        return self._diagnose(tag)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _split(
        self, outputs: Sequence[Word]
    ) -> Tuple[Dict[int, Word], List[Word]]:
        """Partition routed outputs into delivered-by-line and misrouted."""
        delivered: Dict[int, Word] = {}
        pending: List[Word] = []
        for line, word in enumerate(outputs):
            if word.payload is None:
                continue  # filler from a repair pass
            if word.address == line:
                delivered[line] = word
            else:
                pending.append(word)
        return delivered, pending

    def _collect(
        self, delivered: Dict[int, Word], expected: Optional[set] = None
    ) -> List[Optional[Word]]:
        if expected is None:
            expected = set(range(self.n))
        assert set(delivered) == expected, "batch left the service incomplete"
        return [delivered.get(line) for line in range(self.n)]

    def _repair_pass(self, pending: Sequence[Word]) -> List[Word]:
        """Pack pending words onto the first lines; fill the rest."""
        request: List[Optional[int]] = [None] * self.n
        for line, word in enumerate(pending):
            request[line] = word.address
        full, real = complete_partial_permutation(request)
        return [
            pending[line] if real[line] else Word(address=full[line])
            for line in range(self.n)
        ]

    def _route_spare(self, words: Sequence[Word], tag: Any) -> List[Word]:
        if self.spare is None:
            raise QuarantineExhaustedError("no spare plane configured")
        outputs, _trace = self.spare.route(list(words))
        for line, word in enumerate(outputs):
            if word.payload is not None and word.address != line:
                raise QuarantineExhaustedError(
                    f"spare plane misrouted a word addressed to "
                    f"{word.address} onto line {line}"
                )
        return list(outputs)

    def _prepare_failover(self, result: LocalizationResult, tag: Any) -> None:
        """Hook between quarantine and failover; engine-specific.

        The object fabric's Benes spare recomputes Waksman's looping
        algorithm per batch, so there is nothing to set up; the vector
        fabric compiles its failover plan here.
        """

    def inject_stuck_control(
        self, coordinate: SwitchCoordinate, value: int
    ) -> None:
        """Model a physical stuck-at fault appearing on the live primary.

        The operator-facing injection path (the ``inject`` protocol op
        and the faults CLI's ``--connect`` mode land here): the fault
        accumulates on top of anything already wrong with the plane,
        and batches in flight feel it from their next stage onward.
        Detection, diagnosis and quarantine then proceed through the
        normal traffic-triggered lifecycle.
        """
        self.pipeline.install_control_override(
            stuck_control_override(
                coordinate.main_stage,
                coordinate.nested,
                coordinate.nested_stage,
                coordinate.box,
                coordinate.switch,
                value,
            ),
            compose=True,
        )
        self.registry.emit(
            "injection", None,
            f"stuck-{value} control injected at "
            f"({coordinate.main_stage},{coordinate.nested},"
            f"{coordinate.nested_stage},{coordinate.box},{coordinate.switch})",
            value=value,
        )

    def _probe_pass(self, tag: Any):
        """Route the BIST schedule through the primary; engine-specific."""
        return self.schedule.run(
            lambda words: self.pipeline.route_batch(words, tag=(tag, "bist")),
            on_probe=self.probe_hook,
        )

    def _run_bist(self, tag: Any):
        self.counters.bist_runs += 1
        observations = self._probe_pass(tag)
        dirty = sum(not observation.clean for observation in observations)
        self.registry.emit(
            "bist", tag,
            f"{self.schedule.probe_count} probes, {dirty} dirty",
            probes=self.schedule.probe_count, dirty=dirty,
        )
        return observations

    def _diagnose(self, tag: Any) -> LocalizationResult:
        observations = self._run_bist(tag)
        result = localize(
            self.m,
            observations,
            model="adaptive",
            tables=[probe.controls for probe in self.schedule.probes],
        )
        self.counters.localizations += 1
        self.registry.emit(
            "localization", tag, result.describe(),
            candidates=len(result.candidates),
            narrowed_from=result.narrowed_from,
        )
        dirty = any(not observation.clean for observation in observations)
        if not dirty:
            # Probes all clean: live misroutes (if any) did not
            # reproduce — downgrade the suspicion.
            if self.registry.state is HealthState.SUSPECT:
                self.registry.transition(HealthState.HEALTHY)
                self.registry.emit(
                    "cleared", tag, "BIST clean; suspicion withdrawn"
                )
            return result
        if self.strict_localization:
            result.require_unique()
        if self.registry.state is HealthState.HEALTHY:
            self.registry.transition(HealthState.SUSPECT)
        self.registry.confirm(result.candidates)
        self.registry.emit(
            "confirmation", tag,
            f"fault confirmed: {result.describe()}",
            candidates=len(result.candidates),
        )
        if self.spare is not None:
            self.registry.transition(HealthState.QUARANTINED)
            self.registry.emit(
                "quarantine", tag,
                f"primary plane quarantined "
                f"({len(result.coordinates)} switch(es) implicated)",
                coordinates=len(result.coordinates),
            )
            self._prepare_failover(result, tag)
            self.counters.failovers += 1
            self.registry.emit(
                "failover", tag, "traffic fails over to the Benes spare plane"
            )
        else:
            self.registry.emit(
                "quarantine", tag,
                "no spare plane: primary stays in service (degraded)",
                coordinates=len(result.coordinates),
            )
        return result

    def summary(self) -> str:
        """One-paragraph plain-text status (CLI-friendly)."""
        counters = self.counters
        lines = [
            f"state     : {self.state.value}",
            f"bist      : {self.schedule.probe_count} probes "
            f"(N={self.n}, both control values of every switch)",
            f"batches   : {counters.batches} "
            f"(clean {counters.batches_clean}, degraded "
            f"{counters.batches_degraded}, failover {counters.batches_failover})",
            f"words     : {counters.words_delivered} delivered "
            f"(clean {counters.words_clean}, degraded "
            f"{counters.words_degraded}, failover {counters.words_failover})",
            f"faults    : {counters.detections} detections, "
            f"{counters.localizations} localizations, "
            f"{counters.failovers} failovers, {counters.retries} retries "
            f"({counters.backoff_cycles} backoff cycles)",
        ]
        if self.registry.confirmed_faults:
            body = ", ".join(
                f"({c.main_stage},{c.nested},{c.nested_stage},{c.box},"
                f"{c.switch})/stuck-{v}"
                for c, v in self.registry.confirmed_faults
            )
            lines.append(f"confirmed : {body}")
        return "\n".join(lines)


class CompiledBenesFailover:
    """The spare plane as a compiled routing plan, not a graph walk.

    A fault-free rearrangeable spare delivers every admissible frame to
    its destination permutation — which for the service's full-frame
    batches means the output arrangement is exactly the stable sort of
    the words by address.  So once a fault set is localized and the
    primary quarantined, the failover "plan" compiles to a single
    argsort gather (:meth:`compile_for`, once per localized fault set),
    and serving a batch is one vectorized reorder instead of running
    Waksman's looping algorithm through the object
    :class:`~repro.baselines.benes.BenesNetwork` per batch.

    The object network stays on board as the verification oracle: the
    plan is validated at compile time on canonical probes, and every
    ``verify_every``-th served batch is cross-checked against a real
    Benes route end to end — the same sampled-verification discipline
    the vector planes apply to the primary path.
    """

    def __init__(self, m: int, verify_every: int = 16) -> None:
        if m < 1:
            raise ValueError(f"the failover plan needs m >= 1, got {m}")
        self.m = m
        self.n = 1 << m
        self.verify_every = max(1, verify_every)
        self.network = BenesNetwork(m)
        self.fault_set: Optional[Tuple[Any, ...]] = None
        self.plans_compiled = 0
        self.batches = 0
        self.cross_checks = 0

    @property
    def compiled(self) -> bool:
        return self.fault_set is not None

    def compile_for(self, fault_set: Sequence[Any]) -> None:
        """Build (and validate) the failover plan for one fault set.

        *fault_set* is the localized hypothesis class — it parameterizes
        the plan identity (a new quarantine compiles a new plan), not
        the gather itself: the spare is fault-free, so the same sorted
        arrangement serves any primary fault.  Recompiling for the
        fault set already in force is a no-op.
        """
        if self.compiled and self.fault_set == tuple(fault_set):
            return
        self.fault_set = tuple(fault_set)
        self.plans_compiled += 1
        for addresses in (range(self.n), reversed(range(self.n))):
            words = [
                Word(address=address, payload=("failover-compile", j))
                for j, address in enumerate(addresses)
            ]
            self._cross_check(words, self._gather(words))

    def _gather(self, words: Sequence[Word]) -> List[Word]:
        addresses = np.fromiter(
            (word.address for word in words), dtype=np.int64, count=len(words)
        )
        order = np.argsort(addresses)
        return [words[source] for source in order.tolist()]

    def _cross_check(
        self, words: Sequence[Word], outputs: Sequence[Word]
    ) -> None:
        reference, _trace = self.network.route(list(words))
        if [(w.address, w.payload) for w in reference] != [
            (w.address, w.payload) for w in outputs
        ]:
            raise FaultServiceError(
                "compiled failover plan disagrees with the Benes looping "
                "algorithm; failover plane compromised"
            )

    def route(self, words: Sequence[Word]) -> Tuple[List[Word], None]:
        """Serve one batch; same ``(outputs, trace)`` surface as the
        object :class:`~repro.baselines.benes.BenesNetwork`."""
        if not self.compiled:
            raise FaultServiceError(
                "failover plan not compiled; quarantine must localize a "
                "fault set first"
            )
        self.batches += 1
        outputs = self._gather(words)
        if (self.batches - 1) % self.verify_every == 0:
            self.cross_checks += 1
            self._cross_check(words, outputs)
        return outputs, None


class ResilientVectorFabric(ResilientFabric):
    """The resilient control loop on the compiled vector engine.

    Same ``submit`` / ``submit_words`` / ``check`` surface and the same
    :class:`~repro.service.registry.FaultEvent` /
    :class:`~repro.service.registry.HealthMonitor` registry wiring as
    :class:`ResilientFabric`, with the three hot paths swapped for
    their vector forms:

    * the primary plane is a
      :class:`~repro.core.pipeline_fast.VectorPipelinedFabric`, whose
      physical faults are a :class:`~repro.core.plan.FaultMask` applied
      inside the gather kernels;
    * BIST probes enter the pipeline back to back
      (``P + m`` cycles instead of ``P * (m + 1)``) and their syndromes
      decode from batched arrays;
    * the Benes spare is a :class:`CompiledBenesFailover` plan,
      compiled once per localized fault set at quarantine time (the
      ``failover-plan`` event) and cross-checked on a sample of served
      batches.
    """

    def __init__(
        self,
        m: int,
        pipeline: Optional[VectorPipelinedFabric] = None,
        fault_mask: Optional[FaultMask] = None,
        spare: Optional[Any] = "benes",
        schedule: Optional[BISTSchedule] = None,
        retry_budget: int = 4,
        backoff_base: int = 1,
        strict_localization: bool = False,
        spare_verify_every: int = 16,
    ) -> None:
        if pipeline is None:
            pipeline = VectorPipelinedFabric(
                m, retain_delivered=False, fault_mask=fault_mask
            )
        elif fault_mask is not None:
            pipeline.set_fault_mask(fault_mask)
        if spare == "benes":
            spare = CompiledBenesFailover(m, verify_every=spare_verify_every)
        super().__init__(
            m,
            pipeline=pipeline,
            spare=spare,
            schedule=schedule,
            retry_budget=retry_budget,
            backoff_base=backoff_base,
            strict_localization=strict_localization,
        )
        # The declarative stuck-fault list behind the pipeline's mask;
        # live injection rebuilds the mask from the accumulated union.
        mask = self.pipeline.fault_mask
        self._injected_stuck = list(mask.stuck) if mask is not None else []
        self._dead_links = list(mask.dead) if mask is not None else []

    # ------------------------------------------------------------------
    # Engine-specific hooks
    # ------------------------------------------------------------------
    def inject_stuck_control(
        self, coordinate: SwitchCoordinate, value: int
    ) -> None:
        """Add one stuck fault to the live primary's mask (accumulative)."""
        self._injected_stuck.append(
            (
                (
                    coordinate.main_stage,
                    coordinate.nested,
                    coordinate.nested_stage,
                    coordinate.box,
                    coordinate.switch,
                ),
                int(value),
            )
        )
        self.pipeline.set_fault_mask(
            build_fault_mask(
                self.m, stuck=self._injected_stuck, dead_links=self._dead_links
            )
        )
        self.registry.emit(
            "injection", None,
            f"stuck-{value} control injected at "
            f"({coordinate.main_stage},{coordinate.nested},"
            f"{coordinate.nested_stage},{coordinate.box},{coordinate.switch})",
            value=int(value),
        )

    def _probe_pass(self, tag: Any):
        return self.schedule.run_pipelined(
            self.pipeline, on_probe=self.probe_hook
        )

    def _prepare_failover(self, result: LocalizationResult, tag: Any) -> None:
        if not isinstance(self.spare, CompiledBenesFailover):
            return
        self.spare.compile_for(result.candidates)
        self.registry.emit(
            "failover-plan", tag,
            f"compiled Benes failover plan #{self.spare.plans_compiled} "
            f"for {len(result.candidates)} hypothesis(es)",
            plan=self.spare.plans_compiled,
            hypotheses=len(result.candidates),
        )

    def _route_spare(self, words: Sequence[Word], tag: Any) -> List[Word]:
        if not isinstance(self.spare, CompiledBenesFailover):
            return super()._route_spare(words, tag)
        if not self.spare.compiled:
            # Quarantine always passes through _prepare_failover; this
            # covers a registry restored to quarantined out of band.
            self.spare.compile_for(self.registry.confirmed_faults)
        outputs, _trace = self.spare.route(list(words))
        arrived = np.fromiter(
            (word.address for word in outputs), dtype=np.int64, count=self.n
        )
        if not np.array_equal(arrived, np.arange(self.n, dtype=np.int64)):
            line = int(np.nonzero(arrived != np.arange(self.n))[0][0])
            raise QuarantineExhaustedError(
                f"spare plane misrouted a word addressed to "
                f"{int(arrived[line])} onto line {line}"
            )
        return list(outputs)
