"""The resilient fabric: verified delivery over a possibly-faulty BNB.

:class:`ResilientFabric` turns the repo's offline fault *experiments*
into an online fault *service*.  It wraps a
:class:`~repro.core.pipeline.PipelinedBNBFabric` (the primary,
self-routing plane) and drives the full lifecycle:

* **verify** — every batch's outputs are address-checked on exit;
* **retry** — misdelivered words are withdrawn and re-injected as a
  completed partial permutation (the
  :func:`~repro.faults.adaptive.detect_and_reroute` machinery), with
  exponential backoff in fabric cycles between attempts;
* **diagnose** — a misbehaving plane is probed with the deterministic
  :class:`~repro.faults.bist.BISTSchedule` and the syndromes decoded by
  :func:`~repro.faults.localization.localize`;
* **quarantine & fail over** — a confirmed fault sidelines the primary
  and subsequent traffic rides a rearrangeable Benes spare plane
  (:class:`~repro.baselines.benes.BenesNetwork`) — trading the
  self-routing property for guaranteed delivery, in the spirit of the
  KR-Benes construction.

Every step appends a structured
:class:`~repro.service.registry.FaultEvent` and bumps
:class:`~repro.service.registry.ServiceCounters`; hooks subscribe via
:meth:`add_listener` (see
:class:`~repro.service.registry.HealthMonitor`).

The delivery contract: ``submit`` either returns a batch with **every
word on its addressed line** (mode ``clean``, ``degraded`` or
``failover``) or raises a
:class:`~repro.exceptions.FaultServiceError` subclass naming the
exhausted resource.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..baselines.benes import BenesNetwork
from ..core.pipeline import PipelinedBNBFabric
from ..core.traffic import complete_partial_permutation
from ..core.words import Word
from ..exceptions import (
    LocalizationAmbiguousError,
    QuarantineExhaustedError,
    RetryBudgetExceededError,
)
from ..faults.bist import BISTSchedule, build_bist_schedule
from ..faults.localization import LocalizationResult, localize
from .registry import FaultEvent, FaultRegistry, HealthState, ServiceCounters

__all__ = ["ResilientFabric", "BatchResult"]


@dataclasses.dataclass
class BatchResult:
    """One batch's delivery report.

    ``outputs[line]`` is the word delivered to output *line* (its
    address always equals the line), or ``None`` when the batch was a
    partial frame that addressed no word to that line; ``mode`` is
    ``"clean"`` (first pass, no misroutes), ``"degraded"`` (delivered
    by primary-plane retries) or ``"failover"`` (some or all words rode
    the spare).
    """

    tag: Any
    outputs: List[Optional[Word]]
    mode: str
    retries: int

    @property
    def delivered(self) -> int:
        return sum(word is not None for word in self.outputs)


class ResilientFabric:
    """Self-diagnosing, self-quarantining permutation service.

    Parameters
    ----------
    m:
        Address width; the fabric serves ``N = 2**m`` lines.
    pipeline:
        The primary plane.  Defaults to a healthy
        :class:`~repro.core.pipeline.PipelinedBNBFabric`; tests pass
        one built with
        :func:`~repro.core.pipeline.stuck_control_override` to model a
        physical fault.
    spare:
        The failover plane — any object with a Benes-style
        ``route(words) -> (outputs, trace)`` method, or ``None`` for a
        spare-less deployment (then a confirmed fault can only degrade,
        and exhausted retries raise
        :class:`~repro.exceptions.RetryBudgetExceededError`).
    schedule:
        A pre-built :class:`~repro.faults.bist.BISTSchedule` (shareable
        across fabrics of the same ``m``); built on demand otherwise.
    retry_budget:
        Maximum repair passes per batch.
    backoff_base:
        Idle fabric cycles before retry ``k`` are
        ``backoff_base << k`` — exponential backoff on repeated
        failures.
    strict_localization:
        When set, a non-unique localization raises
        :class:`~repro.exceptions.LocalizationAmbiguousError` instead
        of quarantining the whole ambiguity class.
    """

    def __init__(
        self,
        m: int,
        pipeline: Optional[PipelinedBNBFabric] = None,
        spare: Optional[Any] = "benes",
        schedule: Optional[BISTSchedule] = None,
        retry_budget: int = 4,
        backoff_base: int = 1,
        strict_localization: bool = False,
    ) -> None:
        if m < 1:
            raise ValueError(f"the resilient fabric needs m >= 1, got {m}")
        if retry_budget < 0:
            raise ValueError(f"retry budget must be >= 0, got {retry_budget}")
        self.m = m
        self.n = 1 << m
        self.pipeline = pipeline if pipeline is not None else PipelinedBNBFabric(m)
        if self.pipeline.m != m:
            raise ValueError(
                f"pipeline is m={self.pipeline.m}, service is m={m}"
            )
        self.spare = BenesNetwork(m) if spare == "benes" else spare
        self.schedule = (
            schedule if schedule is not None else build_bist_schedule(m)
        )
        if self.schedule.m != m:
            raise ValueError(
                f"BIST schedule is m={self.schedule.m}, service is m={m}"
            )
        self.retry_budget = retry_budget
        self.backoff_base = backoff_base
        self.strict_localization = strict_localization
        self.registry = FaultRegistry()
        #: Optional ``hook(probe, observation)`` forwarded to every BIST
        #: run; the telemetry layer counts per-probe outcomes through it.
        self.probe_hook: Optional[Any] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def counters(self) -> ServiceCounters:
        return self.registry.counters

    @property
    def state(self) -> HealthState:
        return self.registry.state

    @property
    def events(self) -> List[FaultEvent]:
        return self.registry.events

    def add_listener(self, listener) -> None:
        self.registry.add_listener(listener)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(self, addresses: Sequence[int], tag: Any = None) -> BatchResult:
        """Deliver one permutation batch, whatever it takes."""
        words = [
            Word(address=address, payload=(tag, j))
            for j, address in enumerate(addresses)
        ]
        return self.submit_words(words, tag=tag)

    def submit_words(
        self, words: Sequence[Word], tag: Any = None
    ) -> BatchResult:
        """Deliver a pre-built word batch, payloads preserved.

        The serving layer's entry point: *words* must carry a full
        permutation of addresses, but words with ``payload is None`` are
        treated as idle filler (a coalesced partial frame) — they are
        routed for the balanced-bit precondition yet owed no delivery,
        and their lines come back ``None`` in the result.

        The call is **async-safe** in the event-loop sense: it is pure
        CPU work with no blocking I/O and touches only this fabric's
        state, so an asyncio gateway may call it directly between
        awaits.  It is not thread-safe — concurrent calls on one fabric
        must be serialized (a single event loop does this naturally).
        """
        counters = self.counters
        counters.batches += 1
        words = list(words)
        expected = {
            word.address for word in words if word.payload is not None
        }
        active = len(expected)
        if self.registry.is_quarantined:
            outputs = self._route_spare(words, tag)
            counters.batches_failover += 1
            counters.words_failover += active
            self.registry.emit(
                "delivery", tag, f"{active} words via spare plane",
                mode="failover", words=active,
            )
            return BatchResult(
                tag=tag,
                outputs=self._collect(self._split(outputs)[0], expected),
                mode="failover",
                retries=0,
            )

        outputs = self.pipeline.route_batch(words, tag=tag)
        delivered, pending = self._split(outputs)
        if not pending:
            counters.batches_clean += 1
            counters.words_clean += active
            self.registry.emit(
                "delivery", tag, f"{active} words clean",
                mode="clean", words=active,
            )
            return BatchResult(
                tag=tag,
                outputs=self._collect(delivered, expected),
                mode="clean",
                retries=0,
            )

        # Fault path: detect, retry with backoff, then diagnose.
        counters.detections += 1
        if self.registry.state is HealthState.HEALTHY:
            self.registry.transition(HealthState.SUSPECT)
        self.registry.emit(
            "detection", tag,
            f"{len(pending)} of {active} words misrouted",
            misrouted=len(pending), state=self.registry.state.value,
        )
        retries = 0
        while pending and retries < self.retry_budget:
            backoff = self.backoff_base << retries
            self.pipeline.idle(backoff)
            counters.backoff_cycles += backoff
            retries += 1
            counters.retries += 1
            before = len(pending)
            outputs = self.pipeline.route_batch(
                self._repair_pass(pending), tag=(tag, "retry", retries)
            )
            newly, pending = self._split(outputs)
            delivered.update(newly)
            self.registry.emit(
                "retry", tag,
                f"pass {retries}: {before} -> {len(pending)} pending "
                f"after {backoff} backoff cycle(s)",
                attempt=retries, backoff_cycles=backoff,
                pending_before=before, pending_after=len(pending),
            )

        if self.registry.state is HealthState.SUSPECT:
            self._diagnose(tag)

        primary_words = len(delivered)
        if pending:
            if not self.registry.is_quarantined:
                raise RetryBudgetExceededError(len(pending), retries)
            spare_outputs = self._route_spare(
                self._repair_pass(pending), tag
            )
            for line, word in enumerate(spare_outputs):
                if word.payload is not None:
                    delivered[line] = word
            pending = []

        spare_words = active - primary_words
        mode = "failover" if spare_words else "degraded"
        if mode == "failover":
            counters.batches_failover += 1
            counters.words_degraded += primary_words
            counters.words_failover += spare_words
        else:
            counters.batches_degraded += 1
            counters.words_degraded += active
        self.registry.emit(
            "delivery", tag,
            f"{active} words after {retries} retr{'y' if retries == 1 else 'ies'} "
            f"({mode})",
            mode=mode, words=active, retries=retries,
        )
        return BatchResult(
            tag=tag,
            outputs=self._collect(delivered, expected),
            mode=mode,
            retries=retries,
        )

    def check(self, tag: Any = "bist") -> LocalizationResult:
        """Proactive health check: run the BIST schedule and act on it.

        Use between batches (or on a timer) to catch faults before live
        traffic does.  Returns the localization result; the registry is
        updated exactly as for a traffic-triggered diagnosis.
        """
        if self.registry.is_quarantined:
            raise QuarantineExhaustedError(
                "primary already quarantined; nothing left to check"
            )
        return self._diagnose(tag)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _split(
        self, outputs: Sequence[Word]
    ) -> Tuple[Dict[int, Word], List[Word]]:
        """Partition routed outputs into delivered-by-line and misrouted."""
        delivered: Dict[int, Word] = {}
        pending: List[Word] = []
        for line, word in enumerate(outputs):
            if word.payload is None:
                continue  # filler from a repair pass
            if word.address == line:
                delivered[line] = word
            else:
                pending.append(word)
        return delivered, pending

    def _collect(
        self, delivered: Dict[int, Word], expected: Optional[set] = None
    ) -> List[Optional[Word]]:
        if expected is None:
            expected = set(range(self.n))
        assert set(delivered) == expected, "batch left the service incomplete"
        return [delivered.get(line) for line in range(self.n)]

    def _repair_pass(self, pending: Sequence[Word]) -> List[Word]:
        """Pack pending words onto the first lines; fill the rest."""
        request: List[Optional[int]] = [None] * self.n
        for line, word in enumerate(pending):
            request[line] = word.address
        full, real = complete_partial_permutation(request)
        return [
            pending[line] if real[line] else Word(address=full[line])
            for line in range(self.n)
        ]

    def _route_spare(self, words: Sequence[Word], tag: Any) -> List[Word]:
        if self.spare is None:
            raise QuarantineExhaustedError("no spare plane configured")
        outputs, _trace = self.spare.route(list(words))
        for line, word in enumerate(outputs):
            if word.payload is not None and word.address != line:
                raise QuarantineExhaustedError(
                    f"spare plane misrouted a word addressed to "
                    f"{word.address} onto line {line}"
                )
        return list(outputs)

    def _run_bist(self, tag: Any):
        self.counters.bist_runs += 1
        observations = self.schedule.run(
            lambda words: self.pipeline.route_batch(words, tag=(tag, "bist")),
            on_probe=self.probe_hook,
        )
        dirty = sum(not observation.clean for observation in observations)
        self.registry.emit(
            "bist", tag,
            f"{self.schedule.probe_count} probes, {dirty} dirty",
            probes=self.schedule.probe_count, dirty=dirty,
        )
        return observations

    def _diagnose(self, tag: Any) -> LocalizationResult:
        observations = self._run_bist(tag)
        result = localize(
            self.m,
            observations,
            model="adaptive",
            tables=[probe.controls for probe in self.schedule.probes],
        )
        self.counters.localizations += 1
        self.registry.emit(
            "localization", tag, result.describe(),
            candidates=len(result.candidates),
            narrowed_from=result.narrowed_from,
        )
        dirty = any(not observation.clean for observation in observations)
        if not dirty:
            # Probes all clean: live misroutes (if any) did not
            # reproduce — downgrade the suspicion.
            if self.registry.state is HealthState.SUSPECT:
                self.registry.transition(HealthState.HEALTHY)
                self.registry.emit(
                    "cleared", tag, "BIST clean; suspicion withdrawn"
                )
            return result
        if self.strict_localization:
            result.require_unique()
        if self.registry.state is HealthState.HEALTHY:
            self.registry.transition(HealthState.SUSPECT)
        self.registry.confirm(result.candidates)
        self.registry.emit(
            "confirmation", tag,
            f"fault confirmed: {result.describe()}",
            candidates=len(result.candidates),
        )
        if self.spare is not None:
            self.registry.transition(HealthState.QUARANTINED)
            self.registry.emit(
                "quarantine", tag,
                f"primary plane quarantined "
                f"({len(result.coordinates)} switch(es) implicated)",
                coordinates=len(result.coordinates),
            )
            self.counters.failovers += 1
            self.registry.emit(
                "failover", tag, "traffic fails over to the Benes spare plane"
            )
        else:
            self.registry.emit(
                "quarantine", tag,
                "no spare plane: primary stays in service (degraded)",
                coordinates=len(result.coordinates),
            )
        return result

    def summary(self) -> str:
        """One-paragraph plain-text status (CLI-friendly)."""
        counters = self.counters
        lines = [
            f"state     : {self.state.value}",
            f"bist      : {self.schedule.probe_count} probes "
            f"(N={self.n}, both control values of every switch)",
            f"batches   : {counters.batches} "
            f"(clean {counters.batches_clean}, degraded "
            f"{counters.batches_degraded}, failover {counters.batches_failover})",
            f"words     : {counters.words_delivered} delivered "
            f"(clean {counters.words_clean}, degraded "
            f"{counters.words_degraded}, failover {counters.words_failover})",
            f"faults    : {counters.detections} detections, "
            f"{counters.localizations} localizations, "
            f"{counters.failovers} failovers, {counters.retries} retries "
            f"({counters.backoff_cycles} backoff cycles)",
        ]
        if self.registry.confirmed_faults:
            body = ", ".join(
                f"({c.main_stage},{c.nested},{c.nested_stage},{c.box},"
                f"{c.switch})/stuck-{v}"
                for c, v in self.registry.confirmed_faults
            )
            lines.append(f"confirmed : {body}")
        return "\n".join(lines)
