"""Online fault-tolerance service for the BNB fabric.

Where :mod:`repro.faults` runs offline *experiments* (inject a known
fault, measure the damage), this package runs the online *service*
loop: verify every batch, retry misdelivered words with backoff,
diagnose via BIST probes and syndrome decoding, quarantine the
confirmed fault and fail over to a rearrangeable Benes spare plane.

Entry point: :class:`ResilientFabric`.  Book-keeping types
(:class:`HealthState`, :class:`FaultEvent`, :class:`ServiceCounters`,
:class:`HealthMonitor`) live in :mod:`repro.service.registry`.
"""

from .fabric import (
    BatchResult,
    CompiledBenesFailover,
    ResilientFabric,
    ResilientVectorFabric,
)
from .registry import (
    FaultEvent,
    FaultRegistry,
    HealthMonitor,
    HealthState,
    ServiceCounters,
)

__all__ = [
    "ResilientFabric",
    "ResilientVectorFabric",
    "CompiledBenesFailover",
    "BatchResult",
    "FaultEvent",
    "FaultRegistry",
    "HealthMonitor",
    "HealthState",
    "ServiceCounters",
]
