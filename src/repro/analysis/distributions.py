"""Statistical tests on routing behaviour (scipy-based).

The activity analysis reports *means*; this module checks
*distributions*:

* :func:`first_stage_control_bias` — over uniform random permutations,
  each first-stage switch control should be a fair coin (the control is
  an address bit XOR an arbiter flag, both near-uniform).  A chi-square
  goodness-of-fit test quantifies "fair".
* :func:`output_position_uniformity` — feeding uniform permutations,
  the word leaving any fixed *input* must be equally likely to carry
  every address; since delivery is exact, this reduces to testing the
  workload generator, closing the loop on seed hygiene.
* :func:`exchange_count_dispersion` — the per-pass exchange count's
  mean and variance over traffic, for comparing fabrics.

These give the library a defensible statistical answer to "is the
fabric biased?" rather than a shrug.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from scipy import stats

from ..core.bnb import BNBNetwork
from ..core.words import Word
from ..permutations.generators import random_permutation

__all__ = [
    "first_stage_control_bias",
    "output_position_uniformity",
    "exchange_count_dispersion",
    "BiasReport",
]


@dataclasses.dataclass(frozen=True)
class BiasReport:
    """Chi-square goodness-of-fit outcome."""

    statistic: float
    p_value: float
    observations: int

    def unbiased_at(self, alpha: float = 0.01) -> bool:
        """``True`` when the null (fair/uniform) is *not* rejected."""
        return self.p_value > alpha


def first_stage_control_bias(
    m: int, samples: int = 200, seed: int = 0
) -> BiasReport:
    """Test that first-stage switch controls are fair coins.

    Pools the controls of the first main stage's first splitter over
    *samples* uniform random permutations and chi-square-tests the
    0/1 counts against 50/50.
    """
    network = BNBNetwork(m)
    ones = 0
    total = 0
    for index in range(samples):
        pi = random_permutation(network.n, rng=seed + index)
        _outputs, record = network.route(pi.to_list(), record=True)
        assert record is not None
        controls = record.nested_records[(0, 0)].splitters[(0, 0)].controls
        ones += sum(controls)
        total += len(controls)
    statistic, p_value = stats.chisquare([total - ones, ones])
    return BiasReport(
        statistic=float(statistic), p_value=float(p_value), observations=total
    )


def output_position_uniformity(
    m: int, input_line: int = 0, samples: int = 400, seed: int = 0
) -> BiasReport:
    """Test that a fixed input's delivered address is uniform.

    Under uniform random permutations, the output line reached by the
    word entering *input_line* must be uniform over ``0..N-1``.
    """
    network = BNBNetwork(m)
    n = network.n
    counts = [0] * n
    for index in range(samples):
        pi = random_permutation(n, rng=seed + index)
        words = [Word(address=pi(j), payload=j) for j in range(n)]
        outputs, _record = network.route(words)
        for line, word in enumerate(outputs):
            if word.payload == input_line:
                counts[line] += 1
                break
    statistic, p_value = stats.chisquare(counts)
    return BiasReport(
        statistic=float(statistic), p_value=float(p_value), observations=samples
    )


def exchange_count_dispersion(
    m: int, samples: int = 100, seed: int = 0
) -> Dict[str, float]:
    """Mean/variance of the per-pass exchange count on uniform traffic."""
    network = BNBNetwork(m)
    counts: List[int] = []
    for index in range(samples):
        pi = random_permutation(network.n, rng=seed + index)
        _outputs, record = network.route(pi.to_list(), record=True)
        assert record is not None
        counts.append(record.total_exchanges())
    description = stats.describe(counts)
    return {
        "mean": float(description.mean),
        "variance": float(description.variance),
        "min": float(description.minmax[0]),
        "max": float(description.minmax[1]),
    }
