"""Renderers for the paper's two evaluation tables.

:func:`render_table1` and :func:`render_table2` print the same rows the
paper reports — leading-term expressions plus concrete values at chosen
sizes — with an extra column relating each network to Batcher, which is
how the paper summarizes the comparison ("one third of the hardware...
two thirds of the delay").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..bits import require_power_of_two
from . import complexity as cx

__all__ = [
    "TABLE1_LEADING_TERMS",
    "TABLE2_POLYNOMIALS",
    "table1_values",
    "table2_values",
    "render_table1",
    "render_table2",
    "format_table",
]

#: The leading-term strings exactly as printed in Table 1.
TABLE1_LEADING_TERMS: Dict[str, Dict[str, str]] = {
    "Batcher": {
        "2x2 switches": "N/4 log^3 N",
        "function slices": "N/4 log^3 N",
        "adder slices": "-",
    },
    "Koppelman[11]": {
        "2x2 switches": "N/4 log^3 N",
        "function slices": "N/2 log^2 N",
        "adder slices": "N log^2 N",
    },
    "This paper": {
        "2x2 switches": "N/6 log^3 N",
        "function slices": "N/2 log^2 N",
        "adder slices": "-",
    },
}

#: The delay polynomials exactly as printed in Table 2.
TABLE2_POLYNOMIALS: Dict[str, str] = {
    "Batcher": "1/2 log^3 N + 1/2 log^2 N",
    "Koppelman[11]": "2/3 log^3 N - log^2 N + 1/3 log N + 1",
    "This paper": "1/3 log^3 N + 3/2 log^2 N - 5/6 log N",
}


def table1_values(n: int, w: int = 0) -> List[Dict[str, object]]:
    """Table 1 rows evaluated at one size (full closed forms, not just
    leading terms), plus the hardware ratio to Batcher."""
    require_power_of_two(n, "network size")
    batcher_total = cx.batcher_switch_slices(n, w) + cx.batcher_function_slices(n)
    rows: List[Dict[str, object]] = []
    entries: List[Tuple[str, int, int, int]] = [
        (
            "Batcher",
            cx.batcher_switch_slices(n, w),
            cx.batcher_function_slices(n),
            0,
        ),
        (
            "Koppelman[11]",
            cx.koppelman_switch_slices(n),
            cx.koppelman_function_slices(n),
            cx.koppelman_adder_slices(n),
        ),
        (
            "This paper",
            cx.bnb_switch_slices(n, w),
            cx.bnb_function_nodes(n),
            0,
        ),
    ]
    for name, switches, functions, adders in entries:
        total = switches + functions + adders
        rows.append(
            {
                "network": name,
                "2x2 switches": switches,
                "function slices": functions,
                "adder slices": adders,
                "total": total,
                "vs Batcher": round(total / batcher_total, 4),
            }
        )
    return rows


def table2_values(n: int) -> List[Dict[str, object]]:
    """Table 2 rows evaluated at one size (printed polynomials), plus
    the full Eq. 9/12 values and the delay ratio to Batcher."""
    require_power_of_two(n, "network size")
    batcher_full = cx.batcher_delay(n)
    rows = [
        {
            "network": "Batcher",
            "printed polynomial": cx.batcher_delay_table2(n),
            "full equation": batcher_full,
        },
        {
            "network": "Koppelman[11]",
            "printed polynomial": cx.koppelman_delay_table2(n),
            "full equation": cx.koppelman_delay_table2(n),
        },
        {
            "network": "This paper",
            "printed polynomial": cx.bnb_delay_table2(n),
            "full equation": cx.bnb_delay(n),
        },
    ]
    for row in rows:
        row["vs Batcher"] = round(row["full equation"] / batcher_full, 4)  # type: ignore[operator]
    return rows


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(empty table)"
    headers = list(rows[0].keys())
    cells = [[str(row[h]) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(line[i]) for line in cells))
        for i, h in enumerate(headers)
    ]
    def fmt(values: Sequence[str]) -> str:
        return " | ".join(v.rjust(w) for v, w in zip(values, widths))

    separator = "-+-".join("-" * w for w in widths)
    lines = [fmt(headers), separator]
    lines.extend(fmt(line) for line in cells)
    return "\n".join(lines)


def render_table1(n: int, w: int = 0) -> str:
    """Table 1 ("Hardware Complexities") at one size, as text."""
    header = (
        f"Table 1: Hardware complexities at N={n}, w={w} "
        f"(units: C_SW / C_FN / adder slices)\n"
    )
    leading = "\n".join(
        f"  {name:<14} switches: {terms['2x2 switches']:<14} "
        f"function: {terms['function slices']:<14} adders: {terms['adder slices']}"
        for name, terms in TABLE1_LEADING_TERMS.items()
    )
    return header + leading + "\n\n" + format_table(table1_values(n, w))


def render_table2(n: int) -> str:
    """Table 2 ("Propagation Delay") at one size, as text."""
    header = f"Table 2: Propagation delay at N={n} (unit delays)\n"
    leading = "\n".join(
        f"  {name:<14} {poly}" for name, poly in TABLE2_POLYNOMIALS.items()
    )
    return header + leading + "\n\n" + format_table(table2_values(n))
