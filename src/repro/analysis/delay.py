"""Measured propagation delay from structural timing.

Instead of trusting Eqs. 7-9 and 12, these functions *time* the
constructed networks: every line carries an arrival time, every
component advances it by its delay, and the network's propagation
delay is the latest output arrival.  The timing rules are exactly the
paper's model:

* a splitter ``sp(p)``'s switch can fire once its arbiter has run the
  input bits up and the flags down the ``p``-level tree:
  ``2 p * D_FN`` (zero for ``sp(1)``, whose arbiter is wiring),
  then ``D_SW`` through the switch;
* a Batcher comparator compares ``log N`` bits serially
  (``log N * D_FN``) and then switches (``D_SW``);
* wires (unshuffle connections) are free.

Tests assert these measurements equal the closed forms *exactly* for
every size, which is the strongest possible check that the paper's
delay algebra describes its own construction.  Gate-level measured
delays (netlist critical paths, event-driven settle times) refine the
picture in the benchmarks.
"""

from __future__ import annotations

from typing import List

from ..bits import require_power_of_two

__all__ = ["bsn_measured_delay", "bnb_measured_delay", "batcher_measured_delay"]


def bsn_measured_delay(k: int, d_sw: float = 1.0, d_fn: float = 1.0) -> float:
    """Arrival-time propagation through one ``2**k``-input BSN."""
    if k < 1:
        raise ValueError(f"a BSN needs k >= 1, got {k}")
    n = 1 << k
    times: List[float] = [0.0] * n
    for stage in range(k):
        p = k - stage
        width = 1 << p
        arbiter_delay = 2 * p * d_fn if p >= 2 else 0.0
        for box in range(1 << stage):
            lo = box * width
            ready = max(times[lo : lo + width])
            settled = ready + arbiter_delay + d_sw
            for j in range(lo, lo + width):
                times[j] = settled
        # The unshuffle connection is wiring: no time advance, and the
        # per-line times are uniform within a block anyway.
    return max(times)


def bnb_measured_delay(m: int, d_sw: float = 1.0, d_fn: float = 1.0) -> float:
    """Arrival-time propagation through the whole BNB network.

    Main stage ``i`` contains ``2**(m-i)``-input nested networks whose
    routing path is their BSN slice; follower slices switch in
    parallel with the BSN slice's own switches, so the nested network's
    delay is the BSN's.
    """
    if m < 1:
        raise ValueError(f"the BNB network needs m >= 1, got {m}")
    total = 0.0
    for i in range(m):
        total += bsn_measured_delay(m - i, d_sw=d_sw, d_fn=d_fn)
    return total


def batcher_measured_delay(
    m: int, d_sw: float = 1.0, d_fn: float = 1.0
) -> float:
    """Arrival-time propagation through the odd-even merge network.

    Every comparator fires ``m * D_FN + D_SW`` after its latest input;
    the measurement runs over the actual comparator schedule, so it
    also validates that the ASAP levelization achieves the textbook
    ``m (m + 1) / 2`` critical path.
    """
    if m < 0:
        raise ValueError(f"need m >= 0, got {m}")
    from ..baselines.batcher import BatcherNetwork

    network = BatcherNetwork(m)
    times: List[float] = [0.0] * network.n
    step = m * d_fn + d_sw
    for stage in network.stages():
        for i, j in stage:
            settled = max(times[i], times[j]) + step
            times[i] = settled
            times[j] = settled
    return max(times) if times else 0.0
