"""The paper's recurrences, evaluated numerically.

Section 5 derives every closed form from a recurrence; re-evaluating
the recurrences independently and comparing against
:mod:`~repro.analysis.complexity` verifies the paper's algebra (and our
transcription of it).  Tests assert equality across wide parameter
sweeps.
"""

from __future__ import annotations

from functools import lru_cache

from ..bits import require_power_of_two

__all__ = [
    "arbiter_node_recurrence",
    "bnb_switch_recurrence",
    "bnb_function_node_recurrence",
    "bnb_fn_delay_sum",
    "bnb_sw_delay_sum",
    "batcher_comparator_recurrence",
]


@lru_cache(maxsize=None)
def arbiter_node_recurrence(p_size: int) -> int:
    """Eq. 4: ``C_A(P) = (P - 1) + 2 C_A(P/2)``, with ``C_A(2) = 0``.

    ``C_A(P)`` here is the paper's ``C_{NB,A}(P)``: all arbiter nodes
    of a ``P``-input bit-sorter network, where a single ``A(P)`` tree
    contributes ``P - 1`` nodes and ``A(1)`` contributes none.
    """
    require_power_of_two(p_size, "bit-sorter network size")
    if p_size <= 2:
        return 0
    return (p_size - 1) + 2 * arbiter_node_recurrence(p_size // 2)


@lru_cache(maxsize=None)
def bnb_switch_recurrence(n: int, w: int = 0) -> int:
    """Eq. 1 with Eq. 2-3: ``C(N) = 2 C(N/2) + (N/2) log N (log N + w)``."""
    m = require_power_of_two(n, "network size")
    if m == 0:
        return 0
    own = (n // 2) * m * (m + w)
    return own + 2 * bnb_switch_recurrence(n // 2, w)


@lru_cache(maxsize=None)
def bnb_function_node_recurrence(n: int) -> int:
    """Eq. 1 restricted to arbiter nodes: ``F(N) = 2 F(N/2) + C_A(N)``."""
    m = require_power_of_two(n, "network size")
    if m == 0:
        return 0
    return arbiter_node_recurrence(n) + 2 * bnb_function_node_recurrence(n // 2)


def bnb_fn_delay_sum(n: int) -> int:
    """Eq. 8's double sum: ``2 * sum_{k=2}^{m} sum_{l=2}^{k} l``.

    The critical path crosses, at main stage ``i``, one arbiter per
    nested stage, each costing an up-and-down tree traversal of
    ``2 * p`` node delays (``A(1)`` is wiring).
    """
    m = require_power_of_two(n, "network size")
    total = 0
    for k in range(2, m + 1):
        for l in range(2, k + 1):
            total += l
    return 2 * total


def bnb_sw_delay_sum(n: int) -> int:
    """Eq. 7's sum: ``sum_{k=1}^{m} k`` switch columns on the path."""
    m = require_power_of_two(n, "network size")
    return sum(range(1, m + 1))


@lru_cache(maxsize=None)
def batcher_comparator_recurrence(n: int) -> int:
    """Odd-even merge sort recurrence: ``p(N) = 2 p(N/2) + M(N)``.

    ``M(N)`` comparators merge two sorted ``N/2``-sequences:
    ``M(2) = 1``, ``M(N) = 2 M(N/2) + N/2 - 1``.
    """
    require_power_of_two(n, "network size")
    if n <= 1:
        return 0

    @lru_cache(maxsize=None)
    def merge_count(size: int) -> int:
        if size == 2:
            return 1
        return 2 * merge_count(size // 2) + size // 2 - 1

    return 2 * batcher_comparator_recurrence(n // 2) + merge_count(n)
