"""Technology sensitivity: does the delay advantage depend on D_SW/D_FN?

The paper normalizes ``D_SW = D_FN = 1`` for Table 2; a fair question
is whether the BNB advantage survives other technology ratios.  The
answer is structural: Eq. 9's and Eq. 12's **switch terms are
identical** (``(m^2 + m)/2 . D_SW`` — both fabrics are a sequence of
``m (m + 1) / 2`` switch columns), so the comparison reduces entirely
to the function-logic terms, where BNB's ``m^3/3 + m^2 - 4m/3`` is
below Batcher's ``m^3/2 + m^2/2`` for every ``m >= 1``.  Hence the BNB
network is faster for *every* positive technology ratio — verified
numerically here rather than argued once in a docstring.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..bits import require_power_of_two
from .complexity import batcher_delay, bnb_delay

__all__ = [
    "switch_terms_identical",
    "fn_term_gap",
    "delay_advantage_holds",
    "advantage_ratio_sweep",
]


def switch_terms_identical(n: int) -> bool:
    """Eq. 9 and Eq. 12 charge identical switch delay."""
    return bnb_delay(n, d_sw=1.0, d_fn=0.0) == batcher_delay(
        n, d_sw=1.0, d_fn=0.0
    )


def fn_term_gap(n: int) -> float:
    """Batcher's function-delay polynomial minus BNB's (positive = BNB wins)."""
    return batcher_delay(n, d_sw=0.0, d_fn=1.0) - bnb_delay(
        n, d_sw=0.0, d_fn=1.0
    )


def delay_advantage_holds(n: int, d_sw: float, d_fn: float) -> bool:
    """Is BNB at least as fast under the given technology constants?"""
    if d_sw < 0 or d_fn < 0:
        raise ValueError("technology constants must be non-negative")
    return bnb_delay(n, d_sw, d_fn) <= batcher_delay(n, d_sw, d_fn)


def advantage_ratio_sweep(
    n: int, ratios: Sequence[float] = (0.0, 0.1, 0.5, 1.0, 2.0, 10.0, 100.0)
) -> List[Tuple[float, float]]:
    """BNB/Batcher delay ratio as a function of ``D_SW / D_FN``.

    Returns ``(ratio, delay_ratio)`` pairs with ``D_FN = 1`` fixed.
    As the switch cost dominates (ratio -> infinity) the delay ratio
    tends to 1 (the fabrics' switch paths are identical); as function
    logic dominates (ratio -> 0) it tends to the pure-FN ratio, which
    approaches 2/3.
    """
    require_power_of_two(n, "network size")
    sweep: List[Tuple[float, float]] = []
    for ratio in ratios:
        bnb = bnb_delay(n, d_sw=ratio, d_fn=1.0)
        batcher = batcher_delay(n, d_sw=ratio, d_fn=1.0)
        sweep.append((ratio, bnb / batcher))
    return sweep
