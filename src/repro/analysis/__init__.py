"""Analytical models and experiment drivers (Section 5 of the paper).

* :mod:`~repro.analysis.complexity` — every closed form the paper
  states (Eqs. 6-12 and the Table 1/2 leading terms);
* :mod:`~repro.analysis.recurrences` — the same quantities evaluated
  from the paper's recurrence definitions, so closed forms are checked
  against their derivations;
* :mod:`~repro.analysis.delay` — *measured* propagation delays from
  structural timing of constructed networks;
* :mod:`~repro.analysis.tables` — Table 1 and Table 2 renderers;
* :mod:`~repro.analysis.figures` — data series for growth/crossover
  plots and the structural figures;
* :mod:`~repro.analysis.verification` — exhaustive/sampled permutation
  delivery verification for any router.
"""

from .complexity import (
    bnb_switch_slices,
    bnb_function_nodes,
    bnb_delay,
    bnb_delay_table2,
    batcher_comparators,
    batcher_switch_slices,
    batcher_function_slices,
    batcher_delay,
    batcher_delay_table2,
    koppelman_switch_slices,
    koppelman_function_slices,
    koppelman_adder_slices,
    koppelman_delay_table2,
    nested_network_switch_slices,
    arbiter_nodes_in_bsn,
    hardware_leading_ratio,
    delay_leading_ratio,
)
from .recurrences import (
    bnb_switch_recurrence,
    bnb_function_node_recurrence,
    arbiter_node_recurrence,
    bnb_fn_delay_sum,
    bnb_sw_delay_sum,
)
from .delay import (
    bnb_measured_delay,
    batcher_measured_delay,
    bsn_measured_delay,
)
from .tables import render_table1, render_table2, table2_values
from .figures import (
    hardware_growth_series,
    delay_growth_series,
    ratio_crossovers,
    gbn_structure_summary,
)
from .verification import VerificationReport, verify_router, ROUTERS
from .distributions import (
    BiasReport,
    first_stage_control_bias,
    output_position_uniformity,
    exchange_count_dispersion,
)
from .sensitivity import (
    switch_terms_identical,
    fn_term_gap,
    delay_advantage_holds,
    advantage_ratio_sweep,
)
from .scaling import (
    PolynomialFit,
    fit_log_polynomial,
    fit_per_input_series,
    bnb_switch_scaling,
    batcher_switch_scaling,
    bnb_delay_scaling,
    batcher_delay_scaling,
)
from .activity import (
    ActivityProfile,
    average_activity,
    batcher_activity,
    bnb_activity,
)
from .ablations import (
    route_with_bit_order,
    bit_order_delivery_fraction,
    splitter_controls_without_generate,
    unbalance_after_ablated_splitter,
    bare_baseline_delivery_fraction,
)

__all__ = [
    "bnb_switch_slices",
    "bnb_function_nodes",
    "bnb_delay",
    "bnb_delay_table2",
    "batcher_comparators",
    "batcher_switch_slices",
    "batcher_function_slices",
    "batcher_delay",
    "batcher_delay_table2",
    "koppelman_switch_slices",
    "koppelman_function_slices",
    "koppelman_adder_slices",
    "koppelman_delay_table2",
    "nested_network_switch_slices",
    "arbiter_nodes_in_bsn",
    "hardware_leading_ratio",
    "delay_leading_ratio",
    "bnb_switch_recurrence",
    "bnb_function_node_recurrence",
    "arbiter_node_recurrence",
    "bnb_fn_delay_sum",
    "bnb_sw_delay_sum",
    "bnb_measured_delay",
    "batcher_measured_delay",
    "bsn_measured_delay",
    "render_table1",
    "render_table2",
    "table2_values",
    "hardware_growth_series",
    "delay_growth_series",
    "ratio_crossovers",
    "gbn_structure_summary",
    "VerificationReport",
    "verify_router",
    "ROUTERS",
    "BiasReport",
    "first_stage_control_bias",
    "output_position_uniformity",
    "exchange_count_dispersion",
    "switch_terms_identical",
    "fn_term_gap",
    "delay_advantage_holds",
    "advantage_ratio_sweep",
    "PolynomialFit",
    "fit_log_polynomial",
    "fit_per_input_series",
    "bnb_switch_scaling",
    "batcher_switch_scaling",
    "bnb_delay_scaling",
    "batcher_delay_scaling",
    "ActivityProfile",
    "bnb_activity",
    "batcher_activity",
    "average_activity",
    "route_with_bit_order",
    "bit_order_delivery_fraction",
    "splitter_controls_without_generate",
    "unbalance_after_ablated_splitter",
    "bare_baseline_delivery_fraction",
]
