"""Data series for growth curves, crossovers and structural figures.

The paper's figures are structural diagrams (Figs. 1-5); its
quantitative story lives in the complexity polynomials.  This module
produces the numeric series a plotting tool (or the text benchmarks)
needs: hardware/delay growth over ``N``, the ratio-to-Batcher curves,
the crossover sizes where the asymptotic advantage materializes, and
structural summaries that regenerate the content of Figs. 1 and 3.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..bits import require_power_of_two
from ..core.gbn import GeneralizedBaselineNetwork
from . import complexity as cx

__all__ = [
    "GrowthPoint",
    "hardware_growth_series",
    "delay_growth_series",
    "ratio_crossovers",
    "gbn_structure_summary",
]


@dataclasses.dataclass(frozen=True)
class GrowthPoint:
    """One sample of a growth curve."""

    n: int
    batcher: float
    koppelman: float
    bnb: float

    @property
    def bnb_over_batcher(self) -> float:
        return self.bnb / self.batcher if self.batcher else float("nan")


def hardware_growth_series(
    exponents: Sequence[int], w: int = 0
) -> List[GrowthPoint]:
    """Total hardware (switch + function + adder units) over sizes."""
    series: List[GrowthPoint] = []
    for m in exponents:
        n = 1 << m
        series.append(
            GrowthPoint(
                n=n,
                batcher=cx.batcher_switch_slices(n, w)
                + cx.batcher_function_slices(n),
                koppelman=cx.koppelman_switch_slices(n)
                + cx.koppelman_function_slices(n)
                + cx.koppelman_adder_slices(n),
                bnb=cx.bnb_switch_slices(n, w) + cx.bnb_function_nodes(n),
            )
        )
    return series


def delay_growth_series(exponents: Sequence[int]) -> List[GrowthPoint]:
    """Propagation delay (full equations, unit delays) over sizes."""
    series: List[GrowthPoint] = []
    for m in exponents:
        n = 1 << m
        series.append(
            GrowthPoint(
                n=n,
                batcher=cx.batcher_delay(n),
                koppelman=cx.koppelman_delay_table2(n),
                bnb=cx.bnb_delay(n),
            )
        )
    return series


def ratio_crossovers(
    thresholds: Sequence[float] = (1.0, 0.8, 0.75, 0.7),
    max_exponent: int = 30,
    quantity: str = "hardware",
    w: int = 0,
    min_exponent: int = 3,
) -> Dict[float, Optional[int]]:
    """Smallest ``N >= 2**min_exponent`` where BNB/Batcher drops below
    each threshold.

    ``quantity`` is ``"hardware"`` or ``"delay"``.  Returns ``None``
    for thresholds not reached by ``2**max_exponent`` (e.g. asking for
    a ratio below the asymptotic limit).  The default ``min_exponent``
    of 3 skips the degenerate tiny networks (at ``N = 2`` both fabrics
    collapse to a single switch and the ratios are meaningless).
    """
    if quantity not in ("hardware", "delay"):
        raise ValueError(f"quantity must be 'hardware' or 'delay', got {quantity!r}")
    result: Dict[float, Optional[int]] = {}
    for threshold in thresholds:
        found: Optional[int] = None
        for m in range(min_exponent, max_exponent + 1):
            n = 1 << m
            if quantity == "hardware":
                ratio = cx.hardware_leading_ratio(n, w)
            else:
                ratio = cx.delay_leading_ratio(n)
            if ratio < threshold:
                found = n
                break
        result[threshold] = found
    return result


def gbn_structure_summary(m: int) -> List[Dict[str, int]]:
    """The Fig. 1 inventory: per stage, how many boxes of which size."""
    network = GeneralizedBaselineNetwork(m)
    return [
        {
            "stage": spec.stage,
            "boxes": spec.box_count,
            "box_size": spec.box_size,
            "box_exponent": spec.box_exponent,
        }
        for spec in network.stages()
    ]
