"""Empirical scaling fits: recover the paper's coefficients from data.

Instead of trusting the printed polynomials, these helpers fit measured
series (element counts, delays) against polynomial models in
``m = log2 N`` and recover the coefficients.  Fitting the *normalized*
quantity (count / N) reduces every ``N * poly(log N)`` law to a plain
polynomial regression, which :func:`fit_log_polynomial` solves exactly
via least squares.

The tests demand that fitting the constructed networks' counts recovers
the paper's leading coefficients — ``1/6`` for BNB switches, ``1/4``
for Batcher, ``1/3`` and ``1/2`` for the delay cubics — to high
precision, which is the strongest possible statement that the
implementation *scales like the paper says*, independent of the closed
forms module.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "PolynomialFit",
    "fit_log_polynomial",
    "fit_per_input_series",
    "bnb_switch_scaling",
    "batcher_switch_scaling",
    "bnb_delay_scaling",
    "batcher_delay_scaling",
]


@dataclasses.dataclass(frozen=True)
class PolynomialFit:
    """Result of fitting ``value = sum_k coefficients[k] * m**k``.

    ``coefficients[k]`` multiplies ``m**k`` (ascending order);
    ``residual`` is the max absolute fit error over the inputs.
    """

    coefficients: Tuple[float, ...]
    residual: float

    @property
    def leading(self) -> float:
        return self.coefficients[-1]

    def evaluate(self, m: float) -> float:
        return sum(c * m**k for k, c in enumerate(self.coefficients))


def fit_log_polynomial(
    ms: Sequence[int], values: Sequence[float], degree: int
) -> PolynomialFit:
    """Least-squares fit of *values* as a degree-*degree* polynomial in m."""
    if len(ms) != len(values):
        raise ValueError("ms and values must have equal lengths")
    if len(ms) <= degree:
        raise ValueError(
            f"need more than {degree} points to fit degree {degree}, got {len(ms)}"
        )
    x = np.asarray(ms, dtype=float)
    y = np.asarray(values, dtype=float)
    # numpy.polyfit returns highest degree first; store ascending.
    descending = np.polyfit(x, y, degree)
    ascending = tuple(float(c) for c in descending[::-1])
    predictions = np.polyval(descending, x)
    residual = float(np.max(np.abs(predictions - y)))
    return PolynomialFit(coefficients=ascending, residual=residual)


def fit_per_input_series(
    measure: Callable[[int], float],
    exponents: Sequence[int],
    degree: int,
) -> PolynomialFit:
    """Fit ``measure(m) / 2**m`` as a polynomial in m.

    For any cost law ``N * poly(log N)`` this recovers ``poly``.
    """
    values = [measure(m) / float(1 << m) for m in exponents]
    return fit_log_polynomial(list(exponents), values, degree)


# ----------------------------------------------------------------------
# Ready-made measurements over *constructed* networks
# ----------------------------------------------------------------------
def bnb_switch_scaling(exponents: Sequence[int] = range(2, 12)) -> PolynomialFit:
    """Fit the BNB's constructed switch count; expect [0, 1/12, 1/4, 1/6]."""
    from ..core.bnb import BNBNetwork

    return fit_per_input_series(
        lambda m: BNBNetwork(m).switch_count, list(exponents), degree=3
    )


def batcher_switch_scaling(
    exponents: Sequence[int] = range(2, 12),
) -> PolynomialFit:
    """Fit Batcher's constructed switch slices (w=0); leading 1/4.

    The exact law has a ``(N - 1) * 0`` flavour constant, so the cubic
    fit is near-exact but not perfect; tests bound the residual.
    """
    from ..baselines.batcher import BatcherNetwork

    return fit_per_input_series(
        lambda m: BatcherNetwork(m).switch_slice_count, list(exponents), degree=3
    )


def bnb_delay_scaling(exponents: Sequence[int] = range(2, 12)) -> PolynomialFit:
    """Fit the measured BNB delay; expect leading coefficient 1/3."""
    from .delay import bnb_measured_delay

    values = [bnb_measured_delay(m) for m in exponents]
    return fit_log_polynomial(list(exponents), values, degree=3)


def batcher_delay_scaling(
    exponents: Sequence[int] = range(2, 12),
) -> PolynomialFit:
    """Fit the measured Batcher delay; expect leading coefficient 1/2."""
    from .delay import batcher_measured_delay

    values = [batcher_measured_delay(m) for m in exponents]
    return fit_log_polynomial(list(exponents), values, degree=3)
