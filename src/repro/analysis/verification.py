"""Permutation-delivery verification for any router.

One harness verifies every network in the repository: give it a router
factory and a size and it checks, exhaustively for small ``N`` or by
seeded sampling, that a permutation of addresses fed in arrives sorted.
This is the executable form of Theorem 2 (and of the corresponding
claims for the baselines), used by tests and by the
``bench_thm2_permutations`` benchmark.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from ..bits import require_power_of_two
from ..core.bnb import BNBNetwork
from ..core.words import Word
from ..permutations.generators import all_permutations, random_permutation
from ..permutations.permutation import Permutation

__all__ = ["VerificationReport", "verify_router", "ROUTERS"]

Router = Callable[[List[int]], List[Word]]
RouterFactory = Callable[[int], Router]


@dataclasses.dataclass
class VerificationReport:
    """Outcome of a verification run."""

    router: str
    n: int
    mode: str
    attempted: int
    delivered: int
    failures: List[Permutation] = dataclasses.field(default_factory=list)

    @property
    def all_delivered(self) -> bool:
        return self.delivered == self.attempted and self.attempted > 0

    def summary(self) -> str:
        return (
            f"{self.router}: N={self.n} {self.mode} — "
            f"{self.delivered}/{self.attempted} permutations delivered"
        )


def _bnb_factory(m: int) -> Router:
    network = BNBNetwork(m)

    def route(addresses: List[int]) -> List[Word]:
        outputs, _record = network.route(addresses)
        return outputs

    return route


def _batcher_factory(m: int) -> Router:
    from ..baselines.batcher import BatcherNetwork

    network = BatcherNetwork(m)

    def route(addresses: List[int]) -> List[Word]:
        outputs, _records = network.route(addresses)
        return outputs

    return route


def _benes_factory(m: int) -> Router:
    from ..baselines.benes import BenesNetwork

    network = BenesNetwork(m)

    def route(addresses: List[int]) -> List[Word]:
        outputs, _traces = network.route(addresses)
        return outputs

    return route


def _koppelman_factory(m: int) -> Router:
    from ..baselines.koppelman import KoppelmanSRPN

    network = KoppelmanSRPN(m)
    return network.route


def _crossbar_factory(m: int) -> Router:
    from ..baselines.crossbar import Crossbar

    network = Crossbar(1 << m)
    return network.route


def _bitonic_factory(m: int) -> Router:
    from ..baselines.bitonic import BitonicNetwork

    network = BitonicNetwork(m)

    def route(addresses: List[int]) -> List[Word]:
        outputs, _records = network.route(addresses)
        return outputs

    return route


def _clos_factory(m: int) -> Router:
    from ..baselines.clos import ClosNetwork

    # C(2, 2, N/2): the n=m=2 Clos whose recursion yields the Benes.
    network = ClosNetwork(2, 2, max(1 << (m - 1), 1))
    return network.route


#: Router factories by name; every entry obeys the same route contract.
ROUTERS: Dict[str, RouterFactory] = {
    "bnb": _bnb_factory,
    "batcher": _batcher_factory,
    "benes": _benes_factory,
    "koppelman": _koppelman_factory,
    "bitonic": _bitonic_factory,
    "crossbar": _crossbar_factory,
    "clos": _clos_factory,
}


def verify_router(
    router: str,
    n: int,
    mode: str = "auto",
    samples: int = 200,
    seed: int = 0,
    keep_failures: int = 8,
) -> VerificationReport:
    """Verify delivery of permutations through the named router.

    ``mode``: ``"exhaustive"`` iterates all ``N!`` permutations,
    ``"sampled"`` draws *samples* uniform ones, ``"auto"`` picks
    exhaustive for ``N <= 6`` and sampled beyond.
    """
    m = require_power_of_two(n, "network size")
    try:
        factory = ROUTERS[router]
    except KeyError:
        raise ValueError(
            f"unknown router {router!r}; choose one of {sorted(ROUTERS)}"
        ) from None
    if mode == "auto":
        mode = "exhaustive" if n <= 6 else "sampled"
    if mode == "exhaustive":
        workload = all_permutations(n)
    elif mode == "sampled":
        workload = (random_permutation(n, rng=seed + i) for i in range(samples))
    else:
        raise ValueError(f"unknown mode {mode!r}")

    route = factory(m)
    attempted = 0
    delivered = 0
    failures: List[Permutation] = []
    for pi in workload:
        attempted += 1
        outputs = route(pi.to_list())
        if all(outputs[a].address == a for a in range(n)):
            delivered += 1
        elif len(failures) < keep_failures:
            failures.append(pi)
    return VerificationReport(
        router=router,
        n=n,
        mode=mode,
        attempted=attempted,
        delivered=delivered,
        failures=failures,
    )
