"""Switching-activity analysis (a dynamic-cost proxy).

The paper's cost model is static (element counts).  A natural dynamic
counterpart: how many switches actually *toggle to exchange* per
routing pass — a first-order proxy for dynamic energy — and how that
compares between the BNB's one-bit splitters and Batcher's word
comparators.

Results the tests pin down (measured, and initially surprising): a
uniform random permutation exchanges about half of the BNB's decision
switches (~0.49 — each control is an input bit XOR a near-uniform
flag), while Batcher's odd-even network swaps a *larger* fraction of
its comparators (~0.58): merging keeps moving words that radix
partitioning settles early.  Combined with the 3x hardware gap, the
dynamic-activity proxy favours the BNB design even more than the
static counts do.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from ..baselines.batcher import BatcherNetwork
from ..core.bnb import BNBNetwork
from ..core.words import Word
from ..permutations.generators import random_permutation
from ..permutations.permutation import Permutation

__all__ = [
    "ActivityProfile",
    "bnb_activity",
    "batcher_activity",
    "average_activity",
]


@dataclasses.dataclass
class ActivityProfile:
    """Exchange/swap counts of one routing pass."""

    network: str
    n: int
    decisions: int            # switches (BNB) or comparators (Batcher)
    exchanges: int            # of which set to exchange / swapped
    per_main_stage: List[int]  # exchanges grouped by (main) stage

    @property
    def exchange_fraction(self) -> float:
        return self.exchanges / self.decisions if self.decisions else 0.0


def bnb_activity(network: BNBNetwork, pi: Permutation) -> ActivityProfile:
    """Exchange counts of one BNB pass, grouped by main stage."""
    words = [Word(address=pi(j)) for j in range(network.n)]
    _outputs, record = network.route(words, record=True)
    assert record is not None
    per_stage = [0] * network.m
    total = 0
    decisions = 0
    for (main_stage, _nested), bsn_record in record.nested_records.items():
        for splitter_record in bsn_record.splitters.values():
            per_stage[main_stage] += sum(splitter_record.controls)
            total += sum(splitter_record.controls)
            decisions += len(splitter_record.controls)
    return ActivityProfile(
        network="bnb",
        n=network.n,
        decisions=decisions,
        exchanges=total,
        per_main_stage=per_stage,
    )


def batcher_activity(network: BatcherNetwork, pi: Permutation) -> ActivityProfile:
    """Swap counts of one Batcher pass, grouped by comparator stage."""
    _outputs, records = network.route(pi.to_list(), record=True)
    assert records is not None
    per_stage = [0] * network.stage_count
    swapped = 0
    for record in records:
        if record.swapped:
            per_stage[record.stage] += 1
            swapped += 1
    return ActivityProfile(
        network="batcher",
        n=network.n,
        decisions=len(records),
        exchanges=swapped,
        per_main_stage=per_stage,
    )


def average_activity(
    network_kind: str, m: int, samples: int = 20, seed: int = 0
) -> Dict[str, float]:
    """Mean exchange fraction and per-stage profile over random traffic."""
    if network_kind == "bnb":
        network = BNBNetwork(m)
        run = lambda pi: bnb_activity(network, pi)  # noqa: E731
    elif network_kind == "batcher":
        network = BatcherNetwork(m)
        run = lambda pi: batcher_activity(network, pi)  # noqa: E731
    else:
        raise ValueError(f"unknown network kind {network_kind!r}")
    n = 1 << m
    fractions: List[float] = []
    stage_sums: List[float] = []
    for index in range(samples):
        profile = run(random_permutation(n, rng=seed + index))
        fractions.append(profile.exchange_fraction)
        if not stage_sums:
            stage_sums = [0.0] * len(profile.per_main_stage)
        for i, count in enumerate(profile.per_main_stage):
            stage_sums[i] += count
    return {
        "mean_exchange_fraction": sum(fractions) / len(fractions),
        "per_stage_mean": [s / samples for s in stage_sums],  # type: ignore[dict-item]
    }
