"""Closed-form complexity expressions from Section 5 of the paper.

All functions take the network size ``n = 2**m`` (validated to be a
power of two) and return exact values — integer-valued expressions use
``Fraction``-free integer arithmetic where the closed form is integral,
floats elsewhere.  ``m`` below always denotes ``log2 N``.

The paper's equations implemented here:

* Eq. 6  — ``C_BNB(N)``: BNB switch-slice and function-node costs;
* Eqs. 7-9 — BNB propagation delay;
* Eq. 10 — Batcher comparator count;
* Eq. 11 — Batcher hardware cost;
* Eq. 12 — Batcher propagation delay;
* Table 1 — leading terms, including the Koppelman SRPN row;
* Table 2 — printed delay polynomials, including the known quirk that
  the paper's Batcher row lists only the function-logic term of Eq. 12.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Tuple

from ..bits import require_power_of_two

__all__ = [
    "bnb_switch_slices",
    "bnb_function_nodes",
    "bnb_delay",
    "bnb_delay_table2",
    "batcher_comparators",
    "batcher_switch_slices",
    "batcher_function_slices",
    "batcher_delay",
    "batcher_delay_table2",
    "koppelman_switch_slices",
    "koppelman_function_slices",
    "koppelman_adder_slices",
    "koppelman_delay_table2",
    "nested_network_switch_slices",
    "arbiter_nodes_in_bsn",
    "hardware_leading_ratio",
    "delay_leading_ratio",
]


# ----------------------------------------------------------------------
# Building blocks (Eqs. 3-5)
# ----------------------------------------------------------------------
def nested_network_switch_slices(p_size: int, w: int = 0) -> int:
    """Eq. 2-3: switches of one ``P``-input nested network.

    ``(P/2) log P`` switches per one-bit slice, times ``log P + w``
    slices.
    """
    p = require_power_of_two(p_size, "nested network size")
    return (p_size // 2) * p * (p + w)


def arbiter_nodes_in_bsn(p_size: int) -> int:
    """Eq. 4 closed form: ``P log(P/2) - P/2 + 1`` function nodes.

    Total arbiter nodes of all splitters of one ``P``-input bit-sorter
    network, counting ``A(1)`` as wiring (zero nodes).
    """
    p = require_power_of_two(p_size, "bit-sorter network size")
    return p_size * (p - 1) - p_size // 2 + 1


# ----------------------------------------------------------------------
# BNB network (Eqs. 6-9)
# ----------------------------------------------------------------------
def bnb_switch_slices(n: int, w: int = 0) -> int:
    """Eq. 6's ``C_SW`` coefficient, exactly.

    ``(N/6) m^3 + (N/4) m^2 + (N/12) m + (N w / 4)(m^2 + m)``; the
    expression is always integral and evaluated with ``Fraction`` to
    prove it (a non-integral result would mean a transcription error).
    """
    m = require_power_of_two(n, "network size")
    value = (
        Fraction(n, 6) * m**3
        + Fraction(n, 4) * m**2
        + Fraction(n, 12) * m
        + Fraction(n * w, 4) * (m**2 + m)
    )
    if value.denominator != 1:
        raise AssertionError(f"Eq. 6 switch term not integral for n={n}, w={w}")
    return int(value)


def bnb_function_nodes(n: int) -> int:
    """Eq. 6's ``C_FN`` coefficient: ``(N/2) m^2 - N m + N - 1``."""
    m = require_power_of_two(n, "network size")
    value = Fraction(n, 2) * m**2 - n * m + n - 1
    if value.denominator != 1:
        raise AssertionError(f"Eq. 6 function-node term not integral for n={n}")
    return int(value)


def bnb_delay(n: int, d_sw: float = 1.0, d_fn: float = 1.0) -> float:
    """Eq. 9: total BNB propagation delay.

    ``(m^3/3 + m^2 - 4m/3) D_FN + (m^2/2 + m/2) D_SW``.
    """
    m = require_power_of_two(n, "network size")
    fn_term = Fraction(m**3, 3) + m**2 - Fraction(4 * m, 3)
    sw_term = Fraction(m**2 + m, 2)
    return float(fn_term) * d_fn + float(sw_term) * d_sw


def bnb_delay_table2(n: int) -> float:
    """The printed Table 2 row for "this paper".

    ``m^3/3 + 3 m^2/2 - 5m/6`` — exactly Eq. 9 evaluated at
    ``D_SW = D_FN = 1``.
    """
    m = require_power_of_two(n, "network size")
    return float(Fraction(m**3, 3) + Fraction(3 * m**2, 2) - Fraction(5 * m, 6))


# ----------------------------------------------------------------------
# Batcher's odd-even sorting network (Eqs. 10-12)
# ----------------------------------------------------------------------
def batcher_comparators(n: int) -> int:
    """Eq. 10: ``(N/4) m^2 - (N/4) m + N - 1`` comparison elements."""
    m = require_power_of_two(n, "network size")
    if n == 1:
        return 0
    value = Fraction(n, 4) * m**2 - Fraction(n, 4) * m + n - 1
    if value.denominator != 1:
        raise AssertionError(f"Eq. 10 not integral for n={n}")
    return int(value)


def batcher_switch_slices(n: int, w: int = 0) -> int:
    """Eq. 11's ``C_SW`` coefficient: ``p(N) * (log N + w)``.

    The paper prints the expanded polynomial
    ``(N/4) m^3 + (N(w-1)/4) m^2 - (N w/4 - N + 1) m + (N-1) w``;
    this function evaluates the product form, and tests assert the two
    agree — which validates the paper's expansion.
    """
    m = require_power_of_two(n, "network size")
    return batcher_comparators(n) * (m + w)


def batcher_function_slices(n: int) -> int:
    """Eq. 11's ``C_FN`` coefficient: ``p(N) * log N``."""
    m = require_power_of_two(n, "network size")
    return batcher_comparators(n) * m


def batcher_delay(n: int, d_sw: float = 1.0, d_fn: float = 1.0) -> float:
    """Eq. 12: ``(m^3/2 + m^2/2) D_FN + (m^2/2 + m/2) D_SW``."""
    m = require_power_of_two(n, "network size")
    return float(Fraction(m**3 + m**2, 2)) * d_fn + float(
        Fraction(m**2 + m, 2)
    ) * d_sw


def batcher_delay_table2(n: int) -> float:
    """The printed Table 2 Batcher row: ``m^3/2 + m^2/2``.

    Note the quirk documented in EXPERIMENTS.md: the printed row keeps
    only the ``D_FN`` polynomial of Eq. 12 and drops the switch term;
    :func:`batcher_delay` is the full Eq. 12.
    """
    m = require_power_of_two(n, "network size")
    return float(Fraction(m**3 + m**2, 2))


# ----------------------------------------------------------------------
# Koppelman & Oruc SRPN (Table 1 and Table 2 rows)
# ----------------------------------------------------------------------
def koppelman_switch_slices(n: int) -> int:
    """Table 1: ``(N/4) log^3 N`` switch slices."""
    m = require_power_of_two(n, "network size")
    return (n * m**3) // 4


def koppelman_function_slices(n: int) -> int:
    """Table 1: ``(N/2) log^2 N`` function slices."""
    m = require_power_of_two(n, "network size")
    return (n * m**2) // 2


def koppelman_adder_slices(n: int) -> int:
    """Table 1: ``N log^2 N`` adder slices (the ranking circuits)."""
    m = require_power_of_two(n, "network size")
    return n * m**2


def koppelman_delay_table2(n: int) -> float:
    """Table 2: ``(2/3) m^3 - m^2 + m/3 + 1``."""
    m = require_power_of_two(n, "network size")
    return float(Fraction(2 * m**3, 3) - m**2 + Fraction(m, 3) + 1)


# ----------------------------------------------------------------------
# Headline ratios (Section 5.3 and the abstract)
# ----------------------------------------------------------------------
def hardware_leading_ratio(n: int, w: int = 0) -> float:
    """BNB total hardware over Batcher total hardware at equal unit costs.

    The abstract's claim is that this tends to ``(N/6) / (2 * N/4) = 1/3``:
    Batcher pays ``(N/4) m^3`` in switches *and* ``(N/4) m^3`` in
    function slices, while BNB's ``m^3`` term is switches only.
    """
    bnb_total = bnb_switch_slices(n, w) + bnb_function_nodes(n)
    batcher_total = batcher_switch_slices(n, w) + batcher_function_slices(n)
    return bnb_total / batcher_total


def delay_leading_ratio(n: int) -> float:
    """BNB delay over Batcher delay (full Eqs. 9 and 12, unit delays).

    Tends to ``(1/3) / (1/2) = 2/3`` — the abstract's delay claim.
    """
    return bnb_delay(n) / batcher_delay(n)
