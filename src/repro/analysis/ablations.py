"""Ablation studies: remove one design choice, watch it fail.

DESIGN.md calls out the load-bearing choices of the BNB construction;
each function here builds the network *without* one of them so tests
and benches can measure exactly what breaks:

* :func:`route_with_bit_order` — the MSB-first radix schedule.  Any
  other per-stage bit order misroutes some permutations (MSB-first is
  what makes the unshuffle grouping a radix sort).
* :func:`splitter_controls_without_generate` — the arbiter's
  "children-XOR = 0 generates flags (0, 1)" rule replaced by pure
  forwarding.  Type-2 pairs are then no longer paired off evenly and
  Theorem 3's M_e = M_o balance collapses.
* :func:`bare_baseline_delivery_fraction` — the nesting itself removed:
  a plain baseline network with destination-tag switches, whose
  deliverable fraction of random permutations collapses with N.

These are *negative* experiments: their assertions state that the
ablated designs fail, which pins down why each mechanism is in the
paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..bits import address_bit, unshuffle_index
from ..core.bnb import BNBNetwork
from ..core.bsn import BitSorterNetwork
from ..core.switchbox import apply_pair_controls
from ..permutations.generators import random_permutation
from ..permutations.permutation import Permutation
from ..permutations.properties import baseline_passable

__all__ = [
    "route_with_bit_order",
    "bit_order_delivery_fraction",
    "splitter_controls_without_generate",
    "unbalance_after_ablated_splitter",
    "bare_baseline_delivery_fraction",
]


def route_with_bit_order(
    m: int, addresses: Sequence[int], bit_order: Sequence[int]
) -> List[int]:
    """Route through a BNB variant whose main stage ``i`` sorts on
    address bit ``bit_order[i]`` (paper's numbering: 0 = MSB).

    ``bit_order == [0, 1, ..., m-1]`` is the real network; any other
    order is the ablation.  Returns the address arriving at each output
    line (unchecked — misrouting is the point).
    """
    if sorted(bit_order) != list(range(m)):
        raise ValueError(
            f"bit_order must order the address bits 0..{m - 1}, got {bit_order!r}"
        )
    n = 1 << m
    if len(addresses) != n:
        raise ValueError(f"expected {n} addresses, got {len(addresses)}")
    bsns = {k: BitSorterNetwork(k, check_balance=False) for k in range(1, m + 1)}
    current: List[int] = list(addresses)
    for i in range(m):
        block_exp = m - i
        block = 1 << block_exp
        bit_index = bit_order[i]
        bsn = bsns[block_exp]
        routed: List[int] = [0] * n
        for l in range(1 << i):
            lo = l * block
            out, _rec = bsn.route_words(
                current[lo : lo + block],
                key_of=lambda address: address_bit(address, bit_index, m),
            )
            routed[lo : lo + block] = out
        if i < m - 1:
            connected: List[int] = [0] * n
            for j, value in enumerate(routed):
                connected[unshuffle_index(j, m - i, m)] = value
            current = connected
        else:
            current = routed
    return current


def bit_order_delivery_fraction(
    m: int, bit_order: Sequence[int], samples: int = 100, seed: int = 0
) -> float:
    """Fraction of random permutations the given schedule delivers."""
    n = 1 << m
    delivered = 0
    for index in range(samples):
        pi = random_permutation(n, rng=seed + index)
        outputs = route_with_bit_order(m, pi.to_list(), bit_order)
        delivered += outputs == list(range(n))
    return delivered / samples


def splitter_controls_without_generate(bits: Sequence[int]) -> List[int]:
    """Arbiter ablation: every node forwards its parent flag (the
    generate rule removed; the root's flag is 0).

    All flags collapse to 0, so every switch setting degenerates to the
    raw input bit — included to quantify how much work the generate
    rule does.
    """
    flags = [0] * len(bits)
    return [bits[2 * t] ^ flags[2 * t] for t in range(len(bits) // 2)]


def unbalance_after_ablated_splitter(bits: Sequence[int]) -> int:
    """|M_e - M_o| after routing with the ablated controls."""
    controls = splitter_controls_without_generate(bits)
    routed = apply_pair_controls(list(bits), controls)
    even = sum(routed[j] for j in range(0, len(routed), 2))
    odd = sum(routed[j] for j in range(1, len(routed), 2))
    return abs(even - odd)


def bare_baseline_delivery_fraction(
    m: int, samples: int = 200, seed: int = 0
) -> float:
    """Nesting ablation: the plain baseline network's delivery rate."""
    n = 1 << m
    delivered = 0
    for index in range(samples):
        pi = random_permutation(n, rng=seed + index)
        delivered += baseline_passable(pi)
    return delivered / samples
