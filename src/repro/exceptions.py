"""Exception hierarchy for the BNB reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from routing
failures detected at run time.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A network or component was constructed with invalid parameters.

    Typical causes: a size that is not a power of two, a negative word
    width, or a stage index outside the network.
    """


class SizeError(ConfigurationError):
    """A size argument is not a positive power of two."""

    def __init__(self, size: object, what: str = "size") -> None:
        super().__init__(f"{what} must be a positive power of two, got {size!r}")
        self.size = size
        self.what = what


class InputError(ReproError):
    """An input vector handed to a network violates its preconditions.

    The BNB network requires its inputs to carry a permutation of the
    destination addresses ``0 .. N-1``; a bit-sorter network requires a
    balanced 0/1 vector.  Violations raise this error rather than
    silently misrouting.
    """


class UnbalancedInputError(InputError):
    """A bit-sorter component received an unbalanced 0/1 input vector."""

    def __init__(self, ones: int, zeros: int) -> None:
        super().__init__(
            f"bit-sorter input must contain equally many 0s and 1s; "
            f"got {ones} ones and {zeros} zeros"
        )
        self.ones = ones
        self.zeros = zeros


class NotAPermutationError(InputError):
    """The destination addresses of the inputs do not form a permutation."""

    def __init__(self, addresses: object) -> None:
        super().__init__(
            f"input addresses must be a permutation of 0..N-1, got {addresses!r}"
        )
        self.addresses = addresses


class RoutingError(ReproError):
    """The network failed to deliver an input to its destination.

    For the BNB network this indicates a bug (Theorem 2 guarantees
    conflict-free delivery); for restricted self-routing networks such
    as the Nassimi-Sahni Benes router it signals a permutation outside
    the routable class.
    """


class PathConflictError(RoutingError):
    """Two inputs requested the same internal link or output port."""

    def __init__(self, stage: int, port: int, contenders: object = None) -> None:
        message = f"path conflict at stage {stage}, port {port}"
        if contenders is not None:
            message += f" between inputs {contenders!r}"
        super().__init__(message)
        self.stage = stage
        self.port = port
        self.contenders = contenders


class UnroutablePermutationError(RoutingError):
    """A restricted router was asked to realize a permutation it cannot."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class FaultError(ReproError):
    """A fault-injection request referenced a non-existent element."""


class FaultServiceError(ReproError):
    """The resilient fabric service could not uphold its delivery contract.

    Raised by :class:`repro.service.ResilientFabric` when the
    detect/localize/quarantine/failover lifecycle runs out of options;
    the three concrete subclasses name the exhausted resource.
    """


class QuarantineExhaustedError(FaultServiceError):
    """A fault was detected but no healthy plane remains to fail over to."""

    def __init__(self, detail: str = "") -> None:
        message = "no healthy routing plane left to quarantine onto"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class LocalizationAmbiguousError(FaultServiceError):
    """The syndrome decoder could not narrow the fault to one switch."""

    def __init__(self, candidates: object = None) -> None:
        message = "fault localization did not converge to a unique switch"
        if candidates is not None:
            message += f"; surviving candidates: {candidates!r}"
        super().__init__(message)
        self.candidates = candidates


class RetryBudgetExceededError(FaultServiceError):
    """Bounded retry finished with words still undelivered."""

    def __init__(self, pending: int, retries: int) -> None:
        super().__init__(
            f"{pending} word(s) still undelivered after {retries} "
            f"retry pass(es) and no failover plane is available"
        )
        self.pending = pending
        self.retries = retries


class ServerError(ReproError):
    """The async traffic gateway could not serve a request.

    Raised by :mod:`repro.server`; the concrete subclasses distinguish
    transient conditions the client should retry
    (:class:`AdmissionRejectedError`) from terminal ones
    (:class:`GatewayClosedError`, :class:`PlaneUnavailableError`,
    :class:`MisdeliveryError`).
    """


class AdmissionRejectedError(ServerError):
    """Backpressure: the destination's virtual output queue is full.

    The request was *not* enqueued; the client owns the retry.
    ``retry_after_cycles`` is the gateway's estimate of how many fabric
    cycles must elapse before the queue can drain one slot — a
    ``Retry-After`` hint in fabric time, not a reservation.
    """

    def __init__(self, destination: int, depth: int, retry_after_cycles: int) -> None:
        super().__init__(
            f"destination {destination} queue full ({depth} words); "
            f"retry after ~{retry_after_cycles} fabric cycle(s)"
        )
        self.destination = destination
        self.depth = depth
        self.retry_after_cycles = retry_after_cycles


class GatewayClosedError(ServerError):
    """A request arrived at (or was stranded in) a gateway that shut down."""

    def __init__(self, detail: str = "") -> None:
        message = "the gateway is not accepting traffic"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class PlaneUnavailableError(ServerError):
    """No healthy fabric plane remains to carry a frame."""

    def __init__(self, planes: int = 0) -> None:
        super().__init__(
            f"no healthy fabric plane available (pool size {planes})"
        )
        self.planes = planes


class WireFormatError(ServerError):
    """A binary wire frame violated the framing layer's invariants.

    Raised by :mod:`repro.server.framing` for a bad magic, a body
    length beyond the frame cap, a truncated payload, or a malformed
    array manifest; the protocol layer answers with the stable
    ``bad-request`` error slug, same as malformed JSON.
    """


class UnsupportedVersionError(ServerError):
    """A client's ``hello`` asked for a protocol major the server lacks.

    The compatibility rule: the server refuses a *newer major* (the
    client must downgrade or upgrade the server) and ignores unknown
    request fields, so same-major/newer-minor clients interoperate.
    """

    def __init__(self, requested: object, supported: object) -> None:
        super().__init__(
            f"protocol version {requested!r} is newer than the supported "
            f"{supported!r}; the server refuses newer majors"
        )
        self.requested = requested
        self.supported = supported


class GatewayRequestError(ServerError):
    """A gateway answered a :class:`repro.client.GatewayClient` request
    with an error envelope.

    ``slug`` is the stable protocol error slug (``admission-rejected``,
    ``bad-request``, ``unsupported-version``, ...) and ``response`` the
    full decoded response object, so callers can branch on the slug and
    still reach every detail field (``retry_after_cycles``, ``dest``,
    ``detail``) the server attached.
    """

    def __init__(self, slug: str, response: dict) -> None:
        detail = response.get("detail")
        message = f"gateway answered {slug!r}"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.slug = slug
        self.response = response

    @property
    def retry_after_cycles(self) -> int:
        """The backpressure hint, or 0 when the error carries none."""
        hint = self.response.get("retry_after_cycles", 0)
        return hint if isinstance(hint, int) else 0


class GatewayDisconnectedError(ServerError, ConnectionError):
    """The TCP connection to a gateway dropped with requests pending.

    Raised by :class:`repro.client.GatewayClient` to fail every
    in-flight request when the socket dies mid-conversation, carrying
    the stable ``gateway-disconnected`` slug instead of leaking a raw
    :class:`ConnectionError` (it still *is* one, so existing
    ``except ConnectionError`` callers keep working).  The cluster
    client treats it as "this node is gone: refresh the shard map and
    fail over", distinct from a server-sent error envelope
    (:class:`GatewayRequestError`).
    """

    slug = "gateway-disconnected"

    def __init__(self, detail: str = "") -> None:
        message = "the gateway connection dropped"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.detail = detail


class ClusterError(ReproError):
    """The cluster tier could not uphold its routing contract.

    Raised by :mod:`repro.cluster` when a shard map operation is
    impossible (no surviving node to reassign a dead node's range to)
    or when the cluster client exhausts its failover budget with words
    still undelivered.
    """


class MisdeliveryError(ServerError):
    """A frame emerged from a plane with a word on the wrong line.

    For a healthy BNB plane this is Theorem-2-impossible, so seeing it
    means either a physical fault on an unprotected plane or a bug; the
    gateway quarantines the plane and requeues the frame either way.
    """

    def __init__(self, plane: object, detail: str = "") -> None:
        message = f"plane {plane!r} misdelivered a frame"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.plane = plane
