"""Traffic scenarios and the recorded-trace format they synthesize to.

A :class:`Scenario` is a compact, named description of a traffic mix —
destination distribution and its contention knobs, multicast fraction
and fanout, tenant classes with weights and offered shares.
:func:`synthesize` expands a scenario into a concrete :class:`Trace`
(a flat event list, reproducible from the seed), and a trace can be
saved to / loaded from the JSON document format described in
``docs/traffic.md`` — so recorded production traffic and synthetic
workloads replay through exactly the same harness
(:mod:`repro.traffic.replay`, ``repro replay``).

Built-in scenarios (:data:`SCENARIOS`): ``uniform``, ``hotspot``,
``multicast``, ``tenants``, ``mixed``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple, Union

from ..exceptions import InputError
from ..permutations.generators import RandomLike, TrafficSampler, _resolve_rng
from ..server.voq import DEFAULT_TENANT

__all__ = [
    "SCENARIOS",
    "Scenario",
    "TenantSpec",
    "Trace",
    "TraceEvent",
    "TRACE_VERSION",
    "load_trace",
    "parse_tenant_spec",
    "synthesize",
]

#: Version stamp every saved trace carries; the loader refuses newer.
TRACE_VERSION = 1


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One QoS class inside a scenario.

    ``weight`` is the scheduling weight the gateway's deficit-weighted
    round-robin honours; ``share`` the fraction of the scenario's
    offered events this class generates (shares are normalized over the
    scenario's tenants).
    """

    name: str
    weight: int = 1
    share: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise InputError("tenant names must be non-empty")
        if not isinstance(self.weight, int) or self.weight < 1:
            raise InputError(
                f"tenant {self.name!r} needs an integer weight >= 1, "
                f"got {self.weight!r}"
            )
        if self.share <= 0:
            raise InputError(
                f"tenant {self.name!r} needs a positive share, "
                f"got {self.share!r}"
            )


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named traffic mix; see module docstring and ``docs/traffic.md``."""

    name: str
    description: str = ""
    #: Destination distribution: one of TrafficSampler.DISTRIBUTIONS.
    distribution: str = "uniform"
    zipf_alpha: float = 1.1
    hot_fraction: float = 0.05
    hot_weight: float = 0.8
    #: Fraction of events that are multicast requests (0 = pure unicast).
    multicast_fraction: float = 0.0
    #: Largest multicast fanout; each multicast event draws a fanout
    #: uniformly from 2..fanout.
    fanout: int = 4
    tenants: Tuple[TenantSpec, ...] = (TenantSpec(DEFAULT_TENANT),)

    def __post_init__(self) -> None:
        if self.distribution not in TrafficSampler.DISTRIBUTIONS:
            raise InputError(
                f"unknown distribution {self.distribution!r}; choose one "
                f"of {TrafficSampler.DISTRIBUTIONS}"
            )
        if not 0 <= self.multicast_fraction <= 1:
            raise InputError(
                f"multicast_fraction must be in [0, 1], "
                f"got {self.multicast_fraction}"
            )
        if self.fanout < 2:
            raise InputError(f"fanout must be >= 2, got {self.fanout}")
        if not self.tenants:
            raise InputError("a scenario needs at least one tenant class")

    @property
    def tenant_weights(self) -> Dict[str, int]:
        return {spec.name: spec.weight for spec in self.tenants}


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One replayable request: unicast (one destination) or multicast."""

    tenant: str
    destinations: Tuple[int, ...]

    @property
    def words(self) -> int:
        """Fabric words this event expands to (copies for a multicast)."""
        return len(self.destinations)


@dataclasses.dataclass
class Trace:
    """A concrete, replayable event stream plus its tenant table."""

    n: int
    scenario: str
    tenants: Dict[str, int]
    events: List[TraceEvent]
    seed: Optional[int] = None
    version: int = TRACE_VERSION

    @property
    def words(self) -> int:
        return sum(event.words for event in self.events)

    @property
    def multicast_events(self) -> int:
        return sum(1 for event in self.events if event.words > 1)

    def to_document(self) -> Dict[str, Any]:
        """The JSON document form (see ``docs/traffic.md``)."""
        return {
            "version": self.version,
            "n": self.n,
            "scenario": self.scenario,
            "tenants": dict(self.tenants),
            "seed": self.seed,
            "events": [
                {"tenant": event.tenant, "dests": list(event.destinations)}
                for event in self.events
            ],
        }

    def save(self, path: Union[str, pathlib.Path]) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_document(), separators=(",", ":")) + "\n"
        )

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "Trace":
        if not isinstance(document, dict):
            raise InputError("a trace must be a JSON object")
        version = document.get("version")
        if not isinstance(version, int) or version < 1:
            raise InputError(
                f"trace 'version' must be a positive integer, got {version!r}"
            )
        if version > TRACE_VERSION:
            raise InputError(
                f"trace version {version} is newer than this build "
                f"understands ({TRACE_VERSION})"
            )
        n = document.get("n")
        if not isinstance(n, int) or n < 1:
            raise InputError(f"trace 'n' must be a positive integer, got {n!r}")
        tenants = document.get("tenants") or {DEFAULT_TENANT: 1}
        if not isinstance(tenants, dict):
            raise InputError("trace 'tenants' must map names to weights")
        raw_events = document.get("events")
        if not isinstance(raw_events, list):
            raise InputError("trace 'events' must be a list")
        events: List[TraceEvent] = []
        for position, raw in enumerate(raw_events):
            if not isinstance(raw, dict):
                raise InputError(f"event {position} must be an object")
            dests = raw.get("dests")
            if (
                not isinstance(dests, list)
                or not dests
                or not all(
                    isinstance(dest, int) and 0 <= dest < n for dest in dests
                )
            ):
                raise InputError(
                    f"event {position} needs a non-empty 'dests' list of "
                    f"outputs in [0, {n})"
                )
            if len(set(dests)) != len(dests):
                raise InputError(
                    f"event {position} repeats a destination; multicast "
                    f"copies must be distinct"
                )
            tenant = raw.get("tenant", DEFAULT_TENANT)
            if not isinstance(tenant, str) or not tenant:
                raise InputError(
                    f"event {position} 'tenant' must be a non-empty string"
                )
            events.append(TraceEvent(tenant=tenant, destinations=tuple(dests)))
        return cls(
            n=n,
            scenario=str(document.get("scenario", "recorded")),
            tenants={str(k): int(v) for k, v in tenants.items()},
            events=events,
            seed=document.get("seed"),
            version=version,
        )


def load_trace(path: Union[str, pathlib.Path]) -> Trace:
    """Load a trace document saved by :meth:`Trace.save`."""
    try:
        document = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise InputError(f"cannot read trace {path}: {error}") from error
    return Trace.from_document(document)


def synthesize(
    scenario: Scenario,
    n: int,
    events: int,
    seed: RandomLike = 0,
) -> Trace:
    """Expand *scenario* into a concrete trace of *events* requests.

    Deterministic in ``(scenario, n, events, seed)``: the same call
    reproduces the same trace, which is what makes a scenario name in a
    benchmark or a CI gate meaningful.
    """
    if events < 1:
        raise InputError(f"need at least one event, got {events}")
    rng = _resolve_rng(seed)
    sampler = TrafficSampler(
        n,
        scenario.distribution,
        zipf_alpha=scenario.zipf_alpha,
        hot_fraction=scenario.hot_fraction,
        hot_weight=scenario.hot_weight,
        rng=rng,
    )
    names = [spec.name for spec in scenario.tenants]
    shares = [spec.share for spec in scenario.tenants]
    max_fanout = min(scenario.fanout, n)
    trace_events: List[TraceEvent] = []
    for _ in range(events):
        tenant = (
            names[0]
            if len(names) == 1
            else rng.choices(names, weights=shares, k=1)[0]
        )
        if (
            scenario.multicast_fraction > 0
            and rng.random() < scenario.multicast_fraction
            and max_fanout >= 2
        ):
            fanout = rng.randint(2, max_fanout)
            dests = tuple(sampler.distinct(fanout))
        else:
            dests = (sampler.destinations(1)[0],)
        trace_events.append(TraceEvent(tenant=tenant, destinations=dests))
    return Trace(
        n=n,
        scenario=scenario.name,
        tenants=scenario.tenant_weights,
        events=trace_events,
        seed=seed if isinstance(seed, int) else None,
    )


def parse_tenant_spec(spec: str) -> Dict[str, int]:
    """Parse a ``"gold:8,bronze:1"`` CLI tenant spec into weights."""
    tenants: Dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight_text = part.partition(":")
        name = name.strip()
        if not name:
            raise InputError(f"bad tenant spec {spec!r}: empty name")
        weight = 1
        if weight_text:
            try:
                weight = int(weight_text)
            except ValueError:
                raise InputError(
                    f"bad tenant spec {spec!r}: weight {weight_text!r} "
                    f"is not an integer"
                ) from None
        if weight < 1:
            raise InputError(
                f"bad tenant spec {spec!r}: weight must be >= 1"
            )
        if name in tenants:
            raise InputError(f"bad tenant spec {spec!r}: {name!r} repeats")
        tenants[name] = weight
    if not tenants:
        raise InputError(f"bad tenant spec {spec!r}: no classes named")
    return tenants


#: The built-in scenario library ``repro replay --scenario`` accepts.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="uniform",
            description="uniform unicast traffic — the no-contention baseline",
        ),
        Scenario(
            name="hotspot",
            description=(
                "Zipf-skewed unicast: a few hot outputs absorb most words"
            ),
            distribution="zipf",
            zipf_alpha=1.2,
        ),
        Scenario(
            name="multicast",
            description=(
                "pure multicast: every event fans out to 2..8 distinct "
                "outputs through the copy-network expansion"
            ),
            multicast_fraction=1.0,
            fanout=8,
        ),
        Scenario(
            name="tenants",
            description=(
                "two QoS classes on the same hotspot stream: gold "
                "(weight 8) vs bronze (weight 1), equal offered shares"
            ),
            distribution="hotspot",
            hot_fraction=0.125,
            hot_weight=0.7,
            tenants=(
                TenantSpec("gold", weight=8, share=0.5),
                TenantSpec("bronze", weight=1, share=0.5),
            ),
        ),
        Scenario(
            name="mixed",
            description=(
                "everything at once: Zipf hotspots, a quarter multicast, "
                "two weighted tenant classes"
            ),
            distribution="zipf",
            zipf_alpha=1.1,
            multicast_fraction=0.25,
            fanout=4,
            tenants=(
                TenantSpec("gold", weight=4, share=0.4),
                TenantSpec("bronze", weight=1, share=0.6),
            ),
        ),
    )
}
