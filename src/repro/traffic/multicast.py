"""Copy-network front end: multicast requests -> partial-permutation rounds.

The BNB fabric is a point-to-point permutation network — every frame
delivers at most one word per output.  A multicast request (one source,
``k`` destinations) therefore cannot ride a single frame as-is; the
classic fix is a *copy network* in front of the routing network that
fans each request out into unicast copies first.  This module is that
front end, in planning form: :func:`expand_copies` turns a list of
:class:`MulticastRequest` into **rounds** of pairwise-distinct
destinations (each round a conflict-free partial permutation), which
the batch dataplane serves one ``send_batch`` per round, or the offline
:func:`route_copies` helper routes directly on a
:class:`~repro.core.bnb.BNBNetwork`.

The round assignment is the FIFO-per-output rule of
:class:`~repro.core.traffic.MultipassRouter`: copy ``j`` of a
destination lands in round ``j``, so the round count equals the maximum
number of copies any single output must absorb — the
information-theoretic minimum for a fabric delivering one word per
output per pass.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.bnb import BNBNetwork
from ..core.traffic import route_partial
from ..exceptions import InputError

__all__ = [
    "CopyPlan",
    "CopyRound",
    "MulticastRequest",
    "expand_copies",
    "route_copies",
]


@dataclasses.dataclass(frozen=True)
class MulticastRequest:
    """One source word bound for ``len(destinations)`` outputs.

    ``source`` is provenance (which input port asked), ``payload`` the
    word every copy carries, ``tenant`` the QoS class the copies are
    admitted under (see ``docs/traffic.md``).  Destinations must be
    pairwise distinct — "send twice to output 3" is two requests.
    """

    source: int
    destinations: Tuple[int, ...]
    payload: Any = None
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "destinations", tuple(self.destinations)
        )
        if not self.destinations:
            raise InputError(
                f"multicast request from {self.source} names no destinations"
            )
        if len(set(self.destinations)) != len(self.destinations):
            raise InputError(
                f"multicast destinations must be distinct, "
                f"got {list(self.destinations)}"
            )

    @property
    def fanout(self) -> int:
        return len(self.destinations)


@dataclasses.dataclass
class CopyRound:
    """One conflict-free batch of copies: pairwise-distinct destinations.

    ``origins[k]`` is ``(request_index, copy_index)`` for the word at
    ``destinations[k]`` — how a delivered copy is attributed back to
    the multicast request that spawned it.
    """

    destinations: List[int]
    origins: List[Tuple[int, int]]

    def __len__(self) -> int:
        return len(self.destinations)


@dataclasses.dataclass
class CopyPlan:
    """The full expansion of a multicast workload into unicast rounds."""

    n: int
    requests: int
    copies: int
    rounds: List[CopyRound]

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def expansion_ratio(self) -> float:
        """Copies per request — the bandwidth cost of the multicast."""
        return self.copies / self.requests if self.requests else 0.0


def expand_copies(
    requests: Sequence[MulticastRequest], n: int
) -> CopyPlan:
    """Expand *requests* into conflict-free rounds for an *n*-output fabric.

    Every copy of every request appears in exactly one round; within a
    round destinations are pairwise distinct (a destination's ``j``-th
    copy, counting across requests in submission order, lands in round
    ``j``).  Raises :class:`~repro.exceptions.InputError` for an
    out-of-range destination.
    """
    if n < 1:
        raise InputError(f"need at least one output, got n={n}")
    multiplicity: Dict[int, int] = {}
    rounds: List[CopyRound] = []
    copies = 0
    for request_index, request in enumerate(requests):
        for copy_index, dest in enumerate(request.destinations):
            if not 0 <= dest < n:
                raise InputError(
                    f"destination {dest} out of range for N={n} "
                    f"(request {request_index})"
                )
            round_index = multiplicity.get(dest, 0)
            multiplicity[dest] = round_index + 1
            while len(rounds) <= round_index:
                rounds.append(CopyRound([], []))
            rounds[round_index].destinations.append(dest)
            rounds[round_index].origins.append((request_index, copy_index))
            copies += 1
    return CopyPlan(
        n=n, requests=len(requests), copies=copies, rounds=rounds
    )


def route_copies(
    network: BNBNetwork, requests: Sequence[MulticastRequest]
) -> List[List[Any]]:
    """Offline reference: expand and route every copy on *network*.

    Returns ``delivered[output]`` — the payloads that arrived at each
    output, in round order.  Every copy rides a real partial-permutation
    pass through the fabric (copies placed on consecutive input lines,
    idle lines filled by ``complete_partial_permutation``), so this is
    the ground truth the serving-path replay is checked against.
    """
    plan = expand_copies(requests, network.n)
    delivered: List[List[Any]] = [[] for _ in range(network.n)]
    for copy_round in plan.rounds:
        if len(copy_round) > network.n:  # pragma: no cover — impossible
            raise InputError("round larger than the fabric")
        partial: List[Optional[Tuple[int, Any]]] = [None] * network.n
        for line, (dest, (request_index, _copy)) in enumerate(
            zip(copy_round.destinations, copy_round.origins)
        ):
            partial[line] = (dest, requests[request_index].payload)
        outputs = route_partial(network, partial).outputs
        for dest in copy_round.destinations:
            delivered[dest].append(outputs[dest])
    return delivered
