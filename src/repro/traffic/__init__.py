"""Traffic scenarios: multicast, hotspots, QoS tenants, trace replay.

The paper's fabric routes one full permutation per frame; this package
is where the repository meets traffic that is not that polite (ROADMAP
open item 1, grounded in the POPS permutation-routing model,
arxiv cs/0109027, and routing-via-matchings, arxiv 1604.04978):

* :mod:`repro.traffic.multicast` — the **copy-network front end**:
  expands multicast requests (one source, ``k`` destinations) into
  conflict-free partial-permutation rounds the batch dataplane serves;
* :mod:`repro.traffic.scenarios` — the **scenario library and trace
  format**: named traffic mixes (hotspot skew, multicast fraction,
  tenant classes) that synthesize into reproducible, saveable traces;
* :mod:`repro.traffic.replay` — the **replay harness** behind
  ``repro replay`` and ``benchmarks/bench_traffic_scenarios.py``:
  drives a live gateway with a trace and reports per-tenant delivery
  and latency percentiles against p50/p99 SLOs.

The contended-workload *generators* (Zipf, hot-output, fill factor)
live with the other workload sources in
:mod:`repro.permutations.generators`; the weighted per-tenant QoS
scheduling itself lives in the admission path
(:mod:`repro.server.voq`).  ``docs/traffic.md`` documents the whole
traffic model.
"""

from .multicast import (
    CopyPlan,
    CopyRound,
    MulticastRequest,
    expand_copies,
    route_copies,
)
from .replay import ReplayReport, TenantReport, replay_scenario, replay_trace
from .scenarios import (
    SCENARIOS,
    Scenario,
    TenantSpec,
    Trace,
    TraceEvent,
    TRACE_VERSION,
    load_trace,
    parse_tenant_spec,
    synthesize,
)

__all__ = [
    "CopyPlan",
    "CopyRound",
    "MulticastRequest",
    "ReplayReport",
    "SCENARIOS",
    "Scenario",
    "TenantReport",
    "TenantSpec",
    "Trace",
    "TraceEvent",
    "TRACE_VERSION",
    "expand_copies",
    "load_trace",
    "parse_tenant_spec",
    "replay_scenario",
    "replay_trace",
    "route_copies",
    "synthesize",
]
