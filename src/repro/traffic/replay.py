"""The trace-replay harness: drive a gateway with a scenario trace.

:func:`replay_trace` pushes every event of a :class:`~repro.traffic.
scenarios.Trace` through a gateway — the in-process
:class:`~repro.server.gateway.AsyncGateway` or a live server via
:class:`~repro.client.GatewayClient` — and returns a
:class:`ReplayReport` with per-tenant delivery accounting and latency
percentiles, ready for the SLO gates in ``benchmarks/check_artifacts.py``
(and the exit code of ``repro replay``).

Mechanics: unicast events chunk into per-tenant ``send_batch`` bursts;
multicast events run through the copy-network expansion
(:func:`~repro.traffic.multicast.expand_copies`) and each resulting
conflict-free round becomes one ``send_batch``.  All bursts across all
tenants are submitted as interleaved concurrent tasks, so tenant
classes genuinely contend for the same VOQs while the replay runs —
the condition under which the deficit-weighted scheduler's fairness is
measurable at all.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..exceptions import InputError
from ..server.voq import DEFAULT_TENANT
from .multicast import MulticastRequest, expand_copies
from .scenarios import SCENARIOS, Scenario, Trace, synthesize

__all__ = ["ReplayReport", "TenantReport", "replay_scenario", "replay_trace"]


def _percentile(samples: Sequence[int], q: float) -> Optional[int]:
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


@dataclasses.dataclass
class TenantReport:
    """Delivery + latency accounting for one QoS class of a replay."""

    tenant: str
    weight: int
    offered: int = 0
    delivered: int = 0
    latencies: List[int] = dataclasses.field(default_factory=list)

    @property
    def rejected(self) -> int:
        return self.offered - self.delivered

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.offered if self.offered else 0.0

    def to_document(self) -> Dict[str, Any]:
        return {
            "weight": self.weight,
            "offered": self.offered,
            "delivered": self.delivered,
            "rejected": self.rejected,
            "delivery_ratio": round(self.delivery_ratio, 6),
            "latency_cycles": {
                "samples": len(self.latencies),
                "p50": _percentile(self.latencies, 0.50),
                "p99": _percentile(self.latencies, 0.99),
                "max": max(self.latencies) if self.latencies else None,
            },
        }


@dataclasses.dataclass
class ReplayReport:
    """Everything a replay measured; see ``docs/traffic.md``."""

    scenario: str
    n: int
    events: int
    words_offered: int
    unicast_words: int
    multicast_requests: int
    multicast_copies: int
    multicast_rounds: int
    multicast_delivered: int
    per_tenant: Dict[str, TenantReport]
    elapsed_seconds: float
    cycles: Optional[int] = None
    offered_load: Optional[float] = None
    starvation_rescues: int = 0

    @property
    def words_delivered(self) -> int:
        return sum(report.delivered for report in self.per_tenant.values())

    @property
    def words_rejected(self) -> int:
        return self.words_offered - self.words_delivered

    def check_slos(
        self,
        slo_p50: Optional[int] = None,
        slo_p99: Optional[int] = None,
        require_delivery: bool = False,
    ) -> List[str]:
        """Return the list of violated gates (empty means all green).

        The p50/p99 thresholds apply to every tenant class; with
        ``require_delivery`` any word still rejected after the replay's
        retries is also a violation (the "no tenant starves" gate).
        """
        violations: List[str] = []
        for tenant, report in sorted(self.per_tenant.items()):
            p50 = _percentile(report.latencies, 0.50)
            p99 = _percentile(report.latencies, 0.99)
            if slo_p50 is not None and p50 is not None and p50 > slo_p50:
                violations.append(
                    f"tenant {tenant!r}: p50 {p50} cycles exceeds the "
                    f"{slo_p50}-cycle SLO"
                )
            if slo_p99 is not None and p99 is not None and p99 > slo_p99:
                violations.append(
                    f"tenant {tenant!r}: p99 {p99} cycles exceeds the "
                    f"{slo_p99}-cycle SLO"
                )
            if require_delivery and report.rejected:
                violations.append(
                    f"tenant {tenant!r}: {report.rejected} of "
                    f"{report.offered} words undelivered"
                )
        if self.multicast_copies and (
            self.multicast_delivered != self.multicast_copies
        ):
            violations.append(
                f"multicast: {self.multicast_delivered} of "
                f"{self.multicast_copies} expanded copies delivered"
            )
        return violations

    def to_document(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "n": self.n,
            "events": self.events,
            "words_offered": self.words_offered,
            "words_delivered": self.words_delivered,
            "words_rejected": self.words_rejected,
            "unicast_words": self.unicast_words,
            "multicast": {
                "requests": self.multicast_requests,
                "copies": self.multicast_copies,
                "rounds": self.multicast_rounds,
                "delivered": self.multicast_delivered,
            },
            "tenants": {
                tenant: report.to_document()
                for tenant, report in sorted(self.per_tenant.items())
            },
            "cycles": self.cycles,
            "offered_load": (
                round(self.offered_load, 4)
                if self.offered_load is not None
                else None
            ),
            "starvation_rescues": self.starvation_rescues,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
        }


async def _submit(
    target: Any, dests: List[int], tenant: str, retry: int
) -> Tuple[int, Any]:
    """One burst through either target kind; returns (delivered, latencies).

    Ducks on the ``voqs`` attribute: an in-process
    :class:`~repro.server.gateway.AsyncGateway` takes
    ``retry_attempts=`` and returns a ``BatchResult``; a
    :class:`~repro.client.GatewayClient` takes ``retry=`` and returns
    the response dict with int64 arrays.
    """
    if hasattr(target, "voqs"):
        result = await target.send_batch(
            dests, retry_attempts=retry, tenant=tenant
        )
        return int(result.delivered), result.latencies[result.statuses == 1]
    response = await target.send_batch(dests, retry=retry, tenant=tenant)
    statuses = response["statuses"]
    return int(response["delivered"]), response["latencies"][statuses == 1]


async def replay_trace(
    target: Any,
    trace: Trace,
    *,
    burst: int = 512,
    retry_attempts: int = 64,
) -> ReplayReport:
    """Replay *trace* through *target*; see module docstring.

    *burst* bounds the words per ``send_batch`` (unicast events); every
    burst is offered with *retry_attempts* server-side re-admission
    rounds, so under saturation the replay applies sustained offered
    load instead of giving up at the first backpressure hint.
    """
    import asyncio

    if burst < 1:
        raise InputError(f"burst must be >= 1, got {burst}")
    reports = {
        tenant: TenantReport(tenant=tenant, weight=weight)
        for tenant, weight in trace.tenants.items()
    }

    def report_for(tenant: str) -> TenantReport:
        existing = reports.get(tenant)
        if existing is None:
            existing = reports[tenant] = TenantReport(tenant=tenant, weight=1)
        return existing

    # Partition: unicast destination streams per tenant, multicast
    # requests per tenant (the copy network keeps tenants separate so
    # every copy is admitted under its request's class).
    unicast: Dict[str, List[int]] = {}
    multicast: Dict[str, List[MulticastRequest]] = {}
    for event in trace.events:
        if event.words == 1:
            unicast.setdefault(event.tenant, []).append(
                event.destinations[0]
            )
        else:
            multicast.setdefault(event.tenant, []).append(
                MulticastRequest(
                    source=0,
                    destinations=event.destinations,
                    tenant=event.tenant,
                )
            )
    # Build the burst list per tenant: unicast chunks, then the
    # conflict-free copy rounds of that tenant's multicast expansion.
    bursts: Dict[str, List[Tuple[str, List[int]]]] = {}
    multicast_requests = multicast_copies = multicast_rounds = 0
    for tenant, dests in unicast.items():
        bursts.setdefault(tenant, []).extend(
            ("unicast", dests[start:start + burst])
            for start in range(0, len(dests), burst)
        )
    for tenant, requests in multicast.items():
        plan = expand_copies(requests, trace.n)
        multicast_requests += plan.requests
        multicast_copies += plan.copies
        multicast_rounds += plan.round_count
        bursts.setdefault(tenant, []).extend(
            ("multicast", copy_round.destinations)
            for copy_round in plan.rounds
        )
    # Interleave the tenants' bursts round-robin and launch them all:
    # each task admits its first round synchronously at creation order,
    # so the classes contend from the first frame.
    interleaved: List[Tuple[str, str, List[int]]] = []
    streams = {
        tenant: iter(tenant_bursts)
        for tenant, tenant_bursts in bursts.items()
    }
    while streams:
        for tenant in list(streams):
            try:
                kind, dests = next(streams[tenant])
            except StopIteration:
                del streams[tenant]
            else:
                interleaved.append((tenant, kind, dests))

    voqs = getattr(target, "voqs", None)
    start_cycle = getattr(target, "cycle", None)
    start_offered = voqs.offered if voqs is not None else None
    started = time.perf_counter()
    tasks = [
        asyncio.ensure_future(
            _submit(target, dests, tenant, retry_attempts)
        )
        for tenant, _kind, dests in interleaved
    ]
    outcomes = await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - started

    multicast_delivered = 0
    words_offered = unicast_words = 0
    for (tenant, kind, dests), (delivered, latencies) in zip(
        interleaved, outcomes
    ):
        report = report_for(tenant)
        report.offered += len(dests)
        report.delivered += delivered
        report.latencies.extend(int(value) for value in latencies)
        words_offered += len(dests)
        if kind == "multicast":
            multicast_delivered += delivered
        else:
            unicast_words += len(dests)

    cycles = offered_load = None
    rescues = 0
    if voqs is not None and start_cycle is not None:
        cycles = target.cycle - start_cycle
        if cycles:
            # Offered load counts every admission offer (including the
            # retry re-offers), per output line per cycle — >= 1.0 means
            # the VOQs saw at least fabric capacity in arrivals.
            offered_load = (voqs.offered - start_offered) / (
                trace.n * cycles
            )
        tenant_rows = voqs.tenant_snapshot()
        if tenant_rows:
            rescues = sum(
                row["starvation_rescues"] for row in tenant_rows.values()
            )
    return ReplayReport(
        scenario=trace.scenario,
        n=trace.n,
        events=len(trace.events),
        words_offered=words_offered,
        unicast_words=unicast_words,
        multicast_requests=multicast_requests,
        multicast_copies=multicast_copies,
        multicast_rounds=multicast_rounds,
        multicast_delivered=multicast_delivered,
        per_tenant=reports,
        elapsed_seconds=elapsed,
        cycles=cycles,
        offered_load=offered_load,
        starvation_rescues=rescues,
    )


async def replay_scenario(
    target: Any,
    scenario: Union[str, Scenario],
    *,
    events: int = 1024,
    seed: int = 0,
    burst: int = 512,
    retry_attempts: int = 64,
) -> ReplayReport:
    """Synthesize *scenario* for the target's fabric size and replay it."""
    if isinstance(scenario, str):
        try:
            scenario = SCENARIOS[scenario]
        except KeyError:
            raise InputError(
                f"unknown scenario {scenario!r}; choose one of "
                f"{sorted(SCENARIOS)} or pass a trace file"
            ) from None
    n = getattr(target, "n", None)
    if n is None:
        raise InputError(
            "the replay target does not expose its fabric size; "
            "synthesize a trace explicitly and use replay_trace"
        )
    trace = synthesize(scenario, n, events, seed)
    return await replay_trace(
        target, trace, burst=burst, retry_attempts=retry_attempts
    )
