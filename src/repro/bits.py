"""Bit and index algebra used throughout the BNB reproduction.

The paper describes every interconnection pattern in terms of operations
on the binary representation of line indices.  This module implements
those operations exactly as defined in Section 2 of the paper, plus a
handful of generic helpers (bit extraction, parity, reversal) shared by
the topology and core packages.

Conventions
-----------
* ``m`` always denotes the number of address bits, so networks have
  ``N = 2**m`` lines numbered ``0 .. N-1``.
* The binary representation of an index ``i`` is written
  ``(b_{m-1} b_{m-2} ... b_1 b_0)`` with ``b_{m-1}`` the most
  significant bit, as in the paper.
* *Paper bit numbering for addresses* differs: the paper indexes address
  bits of an input word as ``b^0 .. b^{m-1}`` where ``b^0`` is the MSB.
  :func:`address_bit` implements that convention; :func:`bit` implements
  the ordinary LSB-first convention.
"""

from __future__ import annotations

import functools
from typing import Iterable, Iterator, List, Sequence, Tuple

from .exceptions import SizeError

__all__ = [
    "is_power_of_two",
    "ilog2",
    "require_power_of_two",
    "bit",
    "address_bit",
    "set_bit",
    "to_bits",
    "from_bits",
    "bit_reverse",
    "parity",
    "popcount",
    "rotate_right",
    "rotate_left",
    "unshuffle_index",
    "shuffle_index",
    "unshuffle",
    "shuffle",
    "unshuffle_permutation",
    "shuffle_permutation",
    "cached_unshuffle_permutation",
    "cached_shuffle_permutation",
    "butterfly_index",
    "gray_code",
    "inverse_gray_code",
    "pairs",
]


def is_power_of_two(n: int) -> bool:
    """Return ``True`` when *n* is a positive power of two."""
    return isinstance(n, int) and n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Return ``log2(n)`` for a power-of-two *n*.

    Raises :class:`~repro.exceptions.SizeError` otherwise, because a
    silent rounding here would corrupt every stage computation above it.
    """
    if not is_power_of_two(n):
        raise SizeError(n)
    return n.bit_length() - 1


def require_power_of_two(n: int, what: str = "size") -> int:
    """Validate that *n* is a power of two and return ``log2(n)``."""
    if not is_power_of_two(n):
        raise SizeError(n, what)
    return n.bit_length() - 1


def bit(value: int, position: int) -> int:
    """Return bit *position* of *value*, LSB-first (``position 0`` = LSB)."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return (value >> position) & 1


def address_bit(address: int, index: int, m: int) -> int:
    """Return address bit *index* in the paper's MSB-first numbering.

    The paper writes the address bits of an input word as
    ``b^0, b^1, ..., b^{m-1}`` where ``b^0`` is the most significant
    bit.  Stage ``i`` of the BNB main network routes on ``b^i``.
    """
    if not 0 <= index < m:
        raise ValueError(f"address bit index {index} out of range for m={m}")
    return (address >> (m - 1 - index)) & 1


def set_bit(value: int, position: int, bit_value: int) -> int:
    """Return *value* with bit *position* (LSB-first) forced to *bit_value*."""
    if bit_value not in (0, 1):
        raise ValueError(f"bit value must be 0 or 1, got {bit_value!r}")
    mask = 1 << position
    return (value | mask) if bit_value else (value & ~mask)


def to_bits(value: int, width: int) -> List[int]:
    """Return the *width*-bit binary representation, MSB first."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> (width - 1 - k)) & 1 for k in range(width)]


def from_bits(bits_msb_first: Sequence[int]) -> int:
    """Inverse of :func:`to_bits`."""
    value = 0
    for b in bits_msb_first:
        if b not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {b!r}")
        value = (value << 1) | b
    return value


def bit_reverse(value: int, width: int) -> int:
    """Reverse the *width*-bit representation of *value*."""
    return from_bits(list(reversed(to_bits(value, width))))


def parity(value: int) -> int:
    """Return the XOR of all bits of *value* (0 = even number of 1s)."""
    return popcount(value) & 1


def popcount(value: int) -> int:
    """Return the number of set bits of a non-negative integer."""
    if value < 0:
        raise ValueError(f"popcount of a negative value: {value}")
    return bin(value).count("1")


def rotate_right(value: int, width: int, amount: int = 1) -> int:
    """Rotate the low *width* bits of *value* right by *amount*."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    amount %= width
    mask = (1 << width) - 1
    value &= mask
    return ((value >> amount) | (value << (width - amount))) & mask


def rotate_left(value: int, width: int, amount: int = 1) -> int:
    """Rotate the low *width* bits of *value* left by *amount*."""
    return rotate_right(value, width, width - (amount % width))


def unshuffle_index(index: int, k: int, m: int) -> int:
    """The paper's ``U_k^m`` applied to one index (Definition 1).

    ``U_k^m`` maps ``(b_{m-1} .. b_k  b_{k-1} .. b_1 b_0)`` to
    ``(b_{m-1} .. b_k  b_0 b_{k-1} .. b_1)``: the high ``m - k`` bits
    are fixed and the low ``k`` bits rotate right by one, so the LSB
    becomes the top bit of the low field.  Consequently even offsets
    within each ``2**k`` block map to the block's upper half (in order)
    and odd offsets to the lower half.
    """
    if not 1 <= k <= m:
        raise ValueError(f"need 1 <= k <= m, got k={k}, m={m}")
    if not 0 <= index < (1 << m):
        raise ValueError(f"index {index} out of range for m={m}")
    high = index >> k
    low = index & ((1 << k) - 1)
    return (high << k) | rotate_right(low, k)


def shuffle_index(index: int, k: int, m: int) -> int:
    """Inverse of :func:`unshuffle_index`: rotate the low *k* bits left."""
    if not 1 <= k <= m:
        raise ValueError(f"need 1 <= k <= m, got k={k}, m={m}")
    if not 0 <= index < (1 << m):
        raise ValueError(f"index {index} out of range for m={m}")
    high = index >> k
    low = index & ((1 << k) - 1)
    return (high << k) | rotate_left(low, k)


@functools.lru_cache(maxsize=None)
def cached_unshuffle_permutation(k: int, m: int) -> Tuple[int, ...]:
    """Memoized ``U_k^m`` wiring as an immutable tuple.

    ``unshuffle_index`` is pure, so the wiring of a given ``(k, m)`` is
    computed once per process and shared by every stage evaluation
    (the pipeline recomputes nothing per line per cycle).  Returned as a
    tuple so cache sharing can never be corrupted by a caller mutation.
    """
    return tuple(unshuffle_index(j, k, m) for j in range(1 << m))


@functools.lru_cache(maxsize=None)
def cached_shuffle_permutation(k: int, m: int) -> Tuple[int, ...]:
    """Memoized inverse of :func:`cached_unshuffle_permutation`."""
    return tuple(shuffle_index(j, k, m) for j in range(1 << m))


def unshuffle_permutation(k: int, m: int) -> List[int]:
    """Return ``U_k^m`` as a list: entry ``j`` is ``U_k^m(j)``.

    Interpreted as a wiring diagram, output ``j`` of one stage drives
    input ``U_k^m(j)`` of the next (Definition 1).  Backed by
    :func:`cached_unshuffle_permutation`; the returned list is a fresh
    copy the caller may mutate freely.
    """
    return list(cached_unshuffle_permutation(k, m))


def shuffle_permutation(k: int, m: int) -> List[int]:
    """Return the inverse wiring of :func:`unshuffle_permutation`."""
    return list(cached_shuffle_permutation(k, m))


def unshuffle(lines: Sequence, k: int, m: int) -> List:
    """Apply a ``2**k``-unshuffle connection to a list of line values.

    ``result[U_k^m(j)] = lines[j]``: the value leaving output ``j``
    arrives at input ``U_k^m(j)`` of the next stage.
    """
    n = 1 << m
    if len(lines) != n:
        raise ValueError(f"expected {n} lines, got {len(lines)}")
    wiring = cached_unshuffle_permutation(k, m)
    result: List = [None] * n
    for j, value in enumerate(lines):
        result[wiring[j]] = value
    return result


def shuffle(lines: Sequence, k: int, m: int) -> List:
    """Apply the inverse of :func:`unshuffle` to a list of line values."""
    n = 1 << m
    if len(lines) != n:
        raise ValueError(f"expected {n} lines, got {len(lines)}")
    wiring = cached_shuffle_permutation(k, m)
    result: List = [None] * n
    for j, value in enumerate(lines):
        result[wiring[j]] = value
    return result


def butterfly_index(index: int, k: int, m: int) -> int:
    """Swap bit ``k`` with bit ``0`` of an *m*-bit index.

    This is the classic butterfly interstage pattern, included for the
    topology library's indirect-binary-cube constructions.
    """
    if not 0 <= k < m:
        raise ValueError(f"need 0 <= k < m, got k={k}, m={m}")
    if not 0 <= index < (1 << m):
        raise ValueError(f"index {index} out of range for m={m}")
    b0 = index & 1
    bk = (index >> k) & 1
    if b0 == bk:
        return index
    return index ^ ((1 << k) | 1)


def gray_code(value: int) -> int:
    """Return the binary-reflected Gray code of *value*."""
    if value < 0:
        raise ValueError(f"gray code of a negative value: {value}")
    return value ^ (value >> 1)


def inverse_gray_code(code: int) -> int:
    """Inverse of :func:`gray_code`."""
    if code < 0:
        raise ValueError(f"inverse gray code of a negative value: {code}")
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


def pairs(items: Sequence) -> Iterator[tuple]:
    """Yield consecutive non-overlapping pairs ``(items[2t], items[2t+1])``.

    The splitter and every 2x2-switch column consume their lines in
    adjacent pairs; centralizing the iteration avoids subtle off-by-one
    indexing in each component.
    """
    if len(items) % 2:
        raise ValueError(f"need an even number of items, got {len(items)}")
    for t in range(0, len(items), 2):
        yield items[t], items[t + 1]
