"""The public async client for the gateway wire protocol.

:class:`GatewayClient` is the supported way to talk to a running
``repro serve`` gateway — the CLI's ``stats``/``faults --connect``
subcommands, the wire benchmark, and the protocol tests all speak
through it instead of hand-rolling JSON lines over raw sockets.

The client speaks either framing of :mod:`repro.server.protocol`:

* ``binary=True`` (default) — length-prefixed binary frames
  (:mod:`repro.server.framing`): batched ``int64`` arrays cross the
  wire packed, not as JSON digit strings.  This is the framing the
  ≥10× wire-throughput target is measured on.
* ``binary=False`` — the JSON-lines debug framing: one JSON object
  per line, trivially greppable with ``nc``/``socat``.

On :meth:`connect` the client performs the ``hello`` negotiation and
exposes the result (:attr:`protocol_version`, :attr:`features`,
:attr:`n`).  The compatibility rule is enforced server-side: a server
refuses a client asking for a newer *major* and ignores unknown request
fields, so a same-major client can always talk to a newer-minor server.

Requests are correlated by id, so any number of coroutines can share
one client; responses may arrive out of order (a slow ``send`` never
blocks a ``stats`` probe).  Error envelopes surface as
:class:`~repro.exceptions.GatewayRequestError` carrying the stable
slug; :meth:`send` can retry ``admission-rejected`` itself, honouring
the server's ``retry_after_cycles`` hint.  A socket that drops with
requests pending fails them all with
:class:`~repro.exceptions.GatewayDisconnectedError` — the stable
``gateway-disconnected`` slug (still a :class:`ConnectionError`), so
failover logic can branch on it without parsing messages.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .exceptions import (
    GatewayDisconnectedError,
    GatewayRequestError,
    InputError,
)
from .server.framing import (
    HEADER,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_body,
    encode_frame,
    jsonable,
    unpack_header,
)
from .server.ops import REGISTRY

__all__ = ["GatewayClient"]

#: ``send_batch`` response fields that are arrays on the wire; the
#: client normalizes them to int64 numpy arrays in both framings.
_BATCH_ARRAY_FIELDS = (
    "statuses",
    "planes",
    "latencies",
    "frames",
    "retry_after",
    "modes",
)


class GatewayClient:
    """Async client for one gateway connection, either framing.

    Usage::

        async with GatewayClient("127.0.0.1", 9000) as client:
            receipt = await client.send(3, payload="hi")
            result = await client.send_batch([0, 1, 2, 3])

    One client is one TCP connection; share it freely between
    coroutines (requests interleave by id) but not between event loops.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        binary: bool = True,
        seconds_per_cycle: float = 0.001,
    ) -> None:
        self.host = host
        self.port = port
        self.binary = binary
        #: The client's guess at wall-clock seconds per gateway cycle,
        #: used to turn ``retry_after_cycles`` hints into backoff
        #: sleeps.  The default matches the serve loop's idle cadence;
        #: it only shapes politeness, not correctness.
        self.seconds_per_cycle = seconds_per_cycle
        #: Filled by the ``hello`` negotiation on :meth:`connect`.
        self.protocol_version: Optional[Tuple[int, int]] = None
        self.features: Tuple[str, ...] = ()
        self.n: Optional[int] = None
        self.ops: Dict[str, int] = {
            name: spec.code for name, spec in REGISTRY.items()
        }
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._next_id = 1
        self._closing = False
        self._dead: Optional[Exception] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> "GatewayClient":
        """Open the connection and run the ``hello`` negotiation."""
        if self._writer is not None:
            raise InputError("client already connected")
        # Large send_batch responses (JSON framing) exceed asyncio's
        # default 64 KiB line limit; cap streams at the wire cap instead.
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_FRAME_BYTES
        )
        self._closing = False
        self._dead = None
        self._reader_task = asyncio.ensure_future(self._read_loop())
        hello = await self.request(
            "hello", version=list(PROTOCOL_VERSION)
        )
        self.protocol_version = tuple(hello["protocol_version"])
        self.features = tuple(hello["features"])
        self.n = hello["n"]
        # The server's op table wins over the compiled-in one, so a
        # newer server's added ops are immediately callable.
        self.ops = dict(hello["ops"])
        return self

    async def aclose(self) -> None:
        """Close the connection; pending requests fail cleanly."""
        self._closing = True
        writer, self._writer = self._writer, None
        task, self._reader_task = self._reader_task, None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._fail_pending(GatewayDisconnectedError("client closed"))

    async def __aenter__(self) -> "GatewayClient":
        return await self.connect()

    async def __aexit__(self, *_exc) -> None:
        await self.aclose()

    @property
    def connected(self) -> bool:
        return self._writer is not None

    # ------------------------------------------------------------------
    # The request core
    # ------------------------------------------------------------------
    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Issue one op and await its response body.

        Returns the decoded response dict on ``ok: true``; raises
        :class:`~repro.exceptions.GatewayRequestError` (carrying the
        stable slug and the full response) otherwise.
        """
        writer = self._writer
        if writer is None:
            raise InputError("client is not connected")
        if self._dead is not None:
            # The read loop already died; a new future would never fire.
            if isinstance(self._dead, GatewayDisconnectedError):
                raise self._dead
            raise GatewayDisconnectedError(str(self._dead)) from self._dead
        request_id = self._next_id
        self._next_id = (self._next_id + 1) & 0xFFFFFFFF or 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            if self.binary:
                opcode = self.ops.get(op)
                if opcode is None:
                    raise InputError(
                        f"op {op!r} unknown to both client and server"
                    )
                frame = encode_frame(opcode, fields, request_id=request_id)
            else:
                body = {"op": op, "id": request_id, **jsonable(fields)}
                frame = (json.dumps(body) + "\n").encode("utf-8")
            try:
                async with self._write_lock:
                    writer.write(frame)
                    await writer.drain()
            except (ConnectionResetError, OSError) as error:
                raise GatewayDisconnectedError(
                    str(error) or repr(error)
                ) from error
            response = await future
        finally:
            self._pending.pop(request_id, None)
            # A write failure can race the read loop failing this same
            # future; mark its exception retrieved so the loop's copy
            # never surfaces as an unretrieved-exception warning.
            if future.done() and not future.cancelled():
                future.exception()
        if not response.get("ok"):
            raise GatewayRequestError(
                response.get("error", "unknown"), response
            )
        return response

    async def _read_loop(self) -> None:
        reader = self._reader
        assert reader is not None
        failure: Exception = GatewayDisconnectedError(
            "connection closed by server"
        )
        try:
            if self.binary:
                while True:
                    raw = await reader.readexactly(HEADER.size)
                    header = unpack_header(raw)
                    body = await reader.readexactly(header.body_len)
                    response = decode_body(header, body)
                    response.setdefault("id", header.request_id)
                    self._deliver(response)
            else:
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    if not line.strip():
                        continue
                    self._deliver(json.loads(line))
        except asyncio.CancelledError:
            failure = GatewayDisconnectedError("client closed")
            raise
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError) as error:
            failure = GatewayDisconnectedError(str(error) or repr(error))
        except Exception as error:  # desync / malformed response
            failure = error
        finally:
            self._dead = failure
            self._fail_pending(failure)

    def _deliver(self, response: Dict[str, Any]) -> None:
        future = self._pending.get(response.get("id"))
        if future is not None and not future.done():
            future.set_result(response)
        # Responses for ids we no longer wait on (cancelled callers,
        # the server's parting desync error frame) are dropped.

    def _fail_pending(self, failure: Exception) -> None:
        if self._closing:
            failure = GatewayDisconnectedError("client closed")
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(failure)
        self._pending.clear()

    # ------------------------------------------------------------------
    # The ops
    # ------------------------------------------------------------------
    async def ping(self) -> Dict[str, Any]:
        return await self.request("ping")

    async def hello(
        self, version: Optional[Sequence[int]] = None
    ) -> Dict[str, Any]:
        """Re-run the negotiation (done automatically on connect)."""
        fields = {} if version is None else {"version": list(version)}
        return await self.request("hello", **fields)

    async def stats(self) -> Dict[str, Any]:
        """The gateway's counters snapshot (``response["stats"]``)."""
        return await self.request("stats")

    async def metrics(self, format: str = "json") -> Dict[str, Any]:
        return await self.request("metrics", format=format)

    async def drain(self) -> Dict[str, Any]:
        """Ask the node to stop admitting while it serves its backlog."""
        return await self.request("drain")

    async def rejoin(self) -> Dict[str, Any]:
        """Reverse a :meth:`drain`: the node admits again."""
        return await self.request("rejoin")

    async def shard_map(
        self, doc: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Fetch the node's cluster shard map, or install *doc*.

        Without *doc* this is the cluster client's bootstrap/refresh
        path (``response["map"]`` is ``None`` on a standalone node);
        with *doc* it is the router's push path — the node keeps
        whichever document carries the newest ``version``.
        """
        fields = {} if doc is None else {"map": doc}
        return await self.request("shard_map", **fields)

    async def inject(
        self, plane: int, coordinate: Sequence[int], value: int = 1
    ) -> Dict[str, Any]:
        return await self.request(
            "inject",
            plane=plane,
            coordinate=[int(axis) for axis in coordinate],
            value=value,
        )

    async def send(
        self,
        dest: int,
        payload: Any = None,
        *,
        retry: bool = False,
        max_attempts: int = 16,
        server_retry: bool = False,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Send one word; optionally retry through backpressure.

        With ``retry=True`` the client re-offers an
        ``admission-rejected`` word up to *max_attempts* times, sleeping
        ``retry_after_cycles * seconds_per_cycle`` between attempts —
        the client-side half of the backpressure contract.  Any other
        error slug raises immediately.  ``server_retry=True`` asks the
        gateway to wait out its own backpressure instead (no extra wire
        round trips); the two compose.  ``tenant`` names the word's QoS
        class on a tenant-configured gateway (``docs/traffic.md``).
        """
        fields: Dict[str, Any] = {"dest": dest, "payload": payload}
        if tenant is not None:
            fields["tenant"] = tenant
        if server_retry:
            fields["retry"] = True
        attempts = max_attempts if retry else 0
        while True:
            try:
                return await self.request("send", **fields)
            except GatewayRequestError as error:
                if error.slug != "admission-rejected" or attempts <= 0:
                    raise
                attempts -= 1
                hint = max(1, error.retry_after_cycles)
                await asyncio.sleep(
                    min(1.0, hint * self.seconds_per_cycle)
                )

    async def send_batch(
        self,
        dests: Any,
        payloads: Optional[Sequence[Any]] = None,
        *,
        retry: int = 0,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Send a whole batch of words in one request.

        *dests* is any 1-D int sequence; over the binary framing it
        crosses the wire as one packed int64 array.  *retry* is the
        **server-side** re-admission attempt count (the gateway waits
        out its own ``retry_after`` hints between rounds, far cheaper
        than a wire round trip per retry).  The per-word result arrays
        (``statuses``, ``latencies``, ...) come back as int64 numpy
        arrays in both framings.  ``tenant`` names the batch's QoS
        class on a tenant-configured gateway.
        """
        array = np.ascontiguousarray(dests, dtype=np.int64)
        if array.ndim != 1:
            raise InputError(
                f"dests must be one-dimensional, got shape {array.shape}"
            )
        fields: Dict[str, Any] = {"retry": retry}
        if tenant is not None:
            fields["tenant"] = tenant
        if self.binary:
            fields["dests"] = array
        else:
            fields["dests"] = array.tolist()
        if payloads is not None:
            fields["payloads"] = list(payloads)
        response = await self.request("send_batch", **fields)
        for key in _BATCH_ARRAY_FIELDS:
            if key in response:
                response[key] = np.asarray(response[key], dtype=np.int64)
        return response
