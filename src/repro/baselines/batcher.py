"""Batcher's odd-even merge sorting network (reference [9] of the paper).

The paper's main comparator: a sorting network used as a self-routing
permutation network by sorting on the destination address.  The
``N = 2**m``-input network has

* ``p(N) = (N/4) log^2 N - (N/4) log N + N - 1`` compare-exchange
  elements (Eq. 10), arranged in
* ``log N (log N + 1) / 2`` comparator stages,

and the paper's hardware model charges each comparator
``(log N + w)`` switch slices plus ``log N`` function slices (Eq. 11)
and each stage ``log N * D_FN + D_SW`` delay (Eq. 12).

The construction is the classic recursive odd-even merge; comparators
are emitted in dependency order and scheduled into stages by an ASAP
(as-soon-as-possible) levelization, which for this network achieves the
textbook stage count — asserted in tests rather than assumed.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..bits import require_power_of_two
from ..core.words import Word
from ..exceptions import NotAPermutationError

__all__ = [
    "odd_even_merge_sort_pairs",
    "batcher_comparator_count",
    "batcher_stage_count",
    "BatcherNetwork",
    "ComparatorRecord",
]


def _odd_even_merge(lo: int, hi: int, r: int) -> Iterator[Tuple[int, int]]:
    """Comparators merging two sorted halves of ``[lo, hi]`` at stride *r*."""
    step = r * 2
    if step < hi - lo:
        yield from _odd_even_merge(lo, hi, step)
        yield from _odd_even_merge(lo + r, hi, step)
        for i in range(lo + r, hi - r, step):
            yield (i, i + r)
    else:
        yield (lo, lo + r)


def _odd_even_merge_sort(lo: int, hi: int) -> Iterator[Tuple[int, int]]:
    """Comparators sorting the inclusive index range ``[lo, hi]``."""
    if hi - lo >= 1:
        mid = lo + (hi - lo) // 2
        yield from _odd_even_merge_sort(lo, mid)
        yield from _odd_even_merge_sort(mid + 1, hi)
        yield from _odd_even_merge(lo, hi, 1)


def odd_even_merge_sort_pairs(n: int) -> List[Tuple[int, int]]:
    """All comparators ``(i, j)``, ``i < j``, in dependency order."""
    require_power_of_two(n, "Batcher network size")
    if n == 1:
        return []
    return list(_odd_even_merge_sort(0, n - 1))


def batcher_comparator_count(n: int) -> int:
    """Eq. 10: ``(N/4) log^2 N - (N/4) log N + N - 1`` (and 0 for N=1)."""
    m = require_power_of_two(n, "Batcher network size")
    if n == 1:
        return 0
    return (n * m * m) // 4 - (n * m) // 4 + n - 1


def batcher_stage_count(n: int) -> int:
    """Comparator stages on the critical path: ``log N (log N + 1) / 2``."""
    m = require_power_of_two(n, "Batcher network size")
    return m * (m + 1) // 2


@dataclasses.dataclass(frozen=True)
class ComparatorRecord:
    """One compare-exchange decision during a routing pass."""

    stage: int
    low_line: int
    high_line: int
    swapped: bool


class BatcherNetwork:
    """The ``N``-input odd-even merge sorting network.

    Parameters
    ----------
    m:
        Size exponent (``N = 2**m`` lines).
    w:
        Data width for the hardware cost model (``q = m + w``-bit
        words), matching the BNB network's convention.
    """

    def __init__(self, m: int, w: int = 0) -> None:
        if m < 0:
            raise ValueError(f"need m >= 0, got {m}")
        if w < 0:
            raise ValueError(f"data width must be non-negative, got {w}")
        self.m = m
        self.n = 1 << m
        self.w = w
        self._comparators = odd_even_merge_sort_pairs(self.n)
        self._stages = self._levelize(self._comparators)

    @staticmethod
    def _levelize(
        comparators: Sequence[Tuple[int, int]]
    ) -> List[List[Tuple[int, int]]]:
        """Group comparators into stages by ASAP scheduling.

        A comparator runs one stage after the last stage that touched
        either of its lines; emitting in dependency order makes this a
        single pass.
        """
        line_ready: dict = {}
        stages: List[List[Tuple[int, int]]] = []
        for i, j in comparators:
            stage = max(line_ready.get(i, 0), line_ready.get(j, 0))
            if stage == len(stages):
                stages.append([])
            stages[stage].append((i, j))
            line_ready[i] = stage + 1
            line_ready[j] = stage + 1
        return stages

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def comparator_count(self) -> int:
        return len(self._comparators)

    @property
    def stage_count(self) -> int:
        return len(self._stages)

    def stages(self) -> List[List[Tuple[int, int]]]:
        """Comparator pairs grouped by stage (copies; callers may mutate)."""
        return [list(stage) for stage in self._stages]

    @property
    def switch_slice_count(self) -> int:
        """Eq. 11's ``C_SW`` coefficient: ``p(N) * (log N + w)``."""
        return self.comparator_count * (self.m + self.w)

    @property
    def function_slice_count(self) -> int:
        """Eq. 11's ``C_FN`` coefficient: ``p(N) * log N``."""
        return self.comparator_count * self.m

    def propagation_delay(self, d_sw: float = 1.0, d_fn: float = 1.0) -> float:
        """Eq. 12: every stage costs a ``log N``-bit compare plus a switch."""
        return self.stage_count * (self.m * d_fn + d_sw)

    # ------------------------------------------------------------------
    # Sorting / routing
    # ------------------------------------------------------------------
    def sort(
        self,
        items: Sequence[Any],
        key: Callable[[Any], int] = lambda item: item,
        record: bool = False,
    ) -> Tuple[List[Any], Optional[List[ComparatorRecord]]]:
        """Run the network: compare-exchange every pair, stage by stage."""
        if len(items) != self.n:
            raise ValueError(f"expected {self.n} items, got {len(items)}")
        lines = list(items)
        records: Optional[List[ComparatorRecord]] = [] if record else None
        for stage_index, stage in enumerate(self._stages):
            for i, j in stage:
                swapped = key(lines[i]) > key(lines[j])
                if swapped:
                    lines[i], lines[j] = lines[j], lines[i]
                if records is not None:
                    records.append(
                        ComparatorRecord(
                            stage=stage_index,
                            low_line=i,
                            high_line=j,
                            swapped=swapped,
                        )
                    )
        return lines, records

    def route(
        self, inputs: Sequence[Any], record: bool = False
    ) -> Tuple[List[Word], Optional[List[ComparatorRecord]]]:
        """Use the sorter as a self-routing permutation network.

        Sorting a permutation of addresses delivers address ``a`` to
        output line ``a`` — exactly the contract of
        :meth:`repro.core.bnb.BNBNetwork.route`.
        """
        words = [
            item if isinstance(item, Word) else Word(address=int(item))
            for item in inputs
        ]
        addresses = sorted(word.address for word in words)
        if addresses != list(range(self.n)):
            raise NotAPermutationError([word.address for word in words])
        return self.sort(words, key=lambda word: word.address, record=record)

    def __repr__(self) -> str:
        return f"BatcherNetwork(m={self.m}, n={self.n}, w={self.w})"
