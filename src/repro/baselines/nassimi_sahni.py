"""Bit-controlled self-routing on the Benes network (reference [7]).

Nassimi and Sahni showed that simple switch-setting rules — each switch
examines one bit of a destination address — self-route rich permutation
classes (notably the bit-permute-complement class) on the Benes
network, without the global looping computation.  The catch, and the
reason the paper at hand builds a sorting fabric instead, is that these
rules cannot realize *all* permutations: two packets meeting at a
switch may ask for the same subnetwork, and the router must fail.

The rule implemented here, in the spirit of that scheme, is fully
determined by the fabric's structure:

* first half, column at recursion depth ``d``: the switch is set by
  the packet on its **even (upper) input line alone** — that packet
  takes the upper subnetwork iff destination bit ``d`` is 0, and its
  partner takes whatever is left.  One-packet rules never conflict, so
  the first half always sets;
* second half, forced schedule: column ``c`` decides destination bit
  ``2m - 2 - c`` (see
  :meth:`repro.baselines.benes.BenesNetwork.second_half_bit_schedule`),
  and here two packets *can* contend — that is where out-of-class
  permutations fail.

Tests verify the rule routes every BPC permutation (exhaustively up to
``m = 4``) and measure how quickly the fraction of routable *uniform*
permutations collapses with ``N`` (about 31% at N=8, 0.2% at N=16,
~0 at N=32) — the quantitative version of the paper's motivation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Sequence, Tuple

from ..core.words import Word
from ..exceptions import NotAPermutationError, UnroutablePermutationError
from ..permutations.permutation import Permutation
from .benes import BenesNetwork

__all__ = ["NassimiSahniRouter", "SelfRoutingAttempt"]


@dataclasses.dataclass
class SelfRoutingAttempt:
    """Outcome of one bit-controlled routing attempt."""

    success: bool
    outputs: Optional[List[Word]]
    conflict_stage: Optional[int]
    conflict_switch: Optional[int]


class NassimiSahniRouter:
    """Bit-controlled self-routing over a :class:`BenesNetwork` fabric."""

    def __init__(self, m: int) -> None:
        self.m = m
        self.n = 1 << m
        self.benes = BenesNetwork(m)

    def try_route(self, inputs: Sequence[Any]) -> SelfRoutingAttempt:
        """Attempt to route; report the first conflict instead of raising."""
        words = [
            item if isinstance(item, Word) else Word(address=int(item))
            for item in inputs
        ]
        addresses = [word.address for word in words]
        if sorted(addresses) != list(range(self.n)):
            raise NotAPermutationError(addresses)
        fabric = self.benes.fabric
        lines: List[Word] = list(words)
        for column_index, column in enumerate(fabric.columns):
            if column_index < self.m - 1:
                # First half (depth d = column_index): the even-line
                # packet's destination bit d alone sets the switch —
                # one-packet rules cannot conflict.
                depth = column_index
                column_controls = [
                    (lines[2 * t].address >> depth) & 1
                    for t in range(column.switch_count)
                ]
            else:
                # Second half: forced schedule; contention possible.
                bit_index = 2 * self.m - 2 - column_index
                wanted = [(word.address >> bit_index) & 1 for word in lines]
                column_controls, conflicts = column.controls_for_destinations(
                    wanted
                )
                if conflicts:
                    return SelfRoutingAttempt(
                        success=False,
                        outputs=None,
                        conflict_stage=column_index,
                        conflict_switch=conflicts[0],
                    )
            lines = column.apply(lines, column_controls)
            if column_index < len(fabric.wirings):
                lines = fabric._apply_wiring(lines, fabric.wirings[column_index])
        success = all(word.address == j for j, word in enumerate(lines))
        return SelfRoutingAttempt(
            success=success,
            outputs=lines if success else None,
            conflict_stage=None,
            conflict_switch=None,
        )

    def route(self, inputs: Sequence[Any]) -> List[Word]:
        """Route or raise :class:`UnroutablePermutationError` on conflict."""
        attempt = self.try_route(inputs)
        if not attempt.success:
            raise UnroutablePermutationError(
                f"bit-controlled routing conflicts at column "
                f"{attempt.conflict_stage}, switch {attempt.conflict_switch}; "
                f"the permutation is outside the self-routable class"
            )
        assert attempt.outputs is not None
        return attempt.outputs

    def can_route(self, pi: Permutation) -> bool:
        """``True`` when the bit-controlled rule realizes *pi*."""
        return self.try_route(pi.to_list()).success

    def routable_fraction(self, samples: int, seed: int = 0) -> float:
        """Fraction of uniform random permutations the rule can route."""
        from ..permutations.generators import random_permutation

        if samples <= 0:
            raise ValueError(f"need a positive sample count, got {samples}")
        hits = 0
        for index in range(samples):
            pi = random_permutation(self.n, rng=seed + index)
            if self.can_route(pi):
                hits += 1
        return hits / samples

    def __repr__(self) -> str:
        return f"NassimiSahniRouter(m={self.m}, n={self.n})"
