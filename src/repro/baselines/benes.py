"""The Benes rearrangeable network with Waksman's looping algorithm.

Reference [5] of the paper.  The ``N = 2**m``-input Benes network has
``2m - 1`` switch columns and ``O(N log N)`` switches — asymptotically
the cheapest rearrangeable fabric — but realizing a permutation
requires computing all switch settings *globally*; the best parallel
setup takes ``O(log^2 N)`` time on a fully interconnected machine
(reference [6]), which is the overhead self-routing networks exist to
avoid.

Construction used here: a baseline network back to back with its
mirror image, sharing the middle column.  Column ``i < m - 1`` is
followed by the unshuffle ``U_{m-i}^m``; the mirror columns undo those
connections with shuffles.  Waksman's looping algorithm assigns the
input/output columns of each recursion level and recurses on the two
half-size subnetworks; the result is an explicit control vector for the
underlying :class:`~repro.topology.multistage.MultistageNetwork`, so
routing correctness is checked by actually pushing words through the
fabric rather than by trusting the algorithm.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..bits import require_power_of_two
from ..core.words import Word
from ..exceptions import NotAPermutationError
from ..permutations.permutation import Permutation
from ..topology.connections import invert_connection, unshuffle_connection
from ..topology.multistage import MultistageNetwork

__all__ = ["BenesNetwork", "benes_switch_count"]


def benes_switch_count(n: int) -> int:
    """``(2 log N - 1) * N / 2`` two-by-two switches."""
    m = require_power_of_two(n, "Benes network size")
    if m == 0:
        return 0
    return (2 * m - 1) * (n // 2)


def _build_fabric(m: int) -> MultistageNetwork:
    n = 1 << m
    stage_count = 2 * m - 1
    wirings: List[List[int]] = [[] for _ in range(stage_count - 1)]
    for i in range(m - 1):
        forward = unshuffle_connection(n, m - i)
        wirings[i] = forward
        wirings[stage_count - 2 - i] = invert_connection(forward)
    return MultistageNetwork(
        n=n,
        stage_count=stage_count,
        wirings=wirings,
        name="benes",
    )


class BenesNetwork:
    """The ``N``-input Benes network plus its global routing algorithm.

    Use :meth:`controls_for` to run Waksman's looping algorithm on a
    permutation, and :meth:`route` to set up and push words through the
    fabric in one call.
    """

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError(f"the Benes network needs m >= 1, got {m}")
        self.m = m
        self.n = 1 << m
        self.fabric = _build_fabric(m)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def stage_count(self) -> int:
        return 2 * self.m - 1

    @property
    def switch_count(self) -> int:
        return benes_switch_count(self.n)

    def second_half_bit_schedule(self) -> List[Tuple[int, int]]:
        """(column, destination bit) pairs for the output half.

        Column ``c`` of the second half (``m-1 <= c <= 2m-2``) decides
        destination bit ``2m - 2 - c``: the middle column fixes the MSB
        and the final column the LSB.  The first half has no forced
        schedule — that freedom is exactly what the looping algorithm
        (or a restricted self-routing rule) spends.
        """
        return [(c, 2 * self.m - 2 - c) for c in range(self.m - 1, 2 * self.m - 1)]

    # ------------------------------------------------------------------
    # Waksman's looping algorithm
    # ------------------------------------------------------------------
    def controls_for(self, pi: Permutation) -> List[List[int]]:
        """Compute switch settings realizing permutation *pi*.

        Returns one control vector per column, suitable for
        ``self.fabric.route_with_controls``.
        """
        if len(pi) != self.n:
            raise ValueError(f"expected a permutation of {self.n} points")
        controls = self.fabric.empty_controls()
        self._set_recursive(
            mapping=list(pi.mapping),
            depth=0,
            block=0,
            controls=controls,
        )
        return controls

    def _set_recursive(
        self,
        mapping: List[int],
        depth: int,
        block: int,
        controls: List[List[int]],
    ) -> None:
        """Route the sub-permutation *mapping* of one depth-*depth* sub-Benes.

        The sub-Benes spans lines ``[block * size, (block+1) * size)``
        of columns ``depth .. 2m-2-depth``.  ``mapping[i]`` is the
        sub-output each sub-input must reach.
        """
        size = len(mapping)
        base_line = block * size
        first_col = depth
        last_col = 2 * self.m - 2 - depth
        if size == 2:
            # Base case: one switch; exchange when input 0 wants output 1.
            controls[first_col][base_line // 2] = 1 if mapping[0] == 1 else 0
            return

        half = size // 2
        inverse = [0] * size
        for i, o in enumerate(mapping):
            inverse[o] = i
        # sub[i] is 0 (upper subnetwork) or 1 (lower) for input terminal i.
        input_sub: List[Optional[int]] = [None] * size
        output_sub: List[Optional[int]] = [None] * size

        for start in range(size):
            if input_sub[start] is not None:
                continue
            # Loop: alternate input/output constraints until closure.
            i = start
            side = 0
            while input_sub[i] is None:
                input_sub[i] = side
                o = mapping[i]
                output_sub[o] = side
                partner_output = o ^ 1
                output_sub[partner_output] = side ^ 1
                partner_input = inverse[partner_output]
                input_sub[partner_input] = side ^ 1
                i = partner_input ^ 1  # the other terminal of that switch
                side = (input_sub[partner_input] ^ 1)  # type: ignore[operator]

        # Input column settings: a packet bound for the upper subnetwork
        # must exit on the even port (the U_k connection sends even
        # ports up).  Exchange exactly when the even-line input goes down.
        for t in range(half):
            even_side = input_sub[2 * t]
            controls[first_col][base_line // 2 + t] = 1 if even_side == 1 else 0
        # Output column settings: the upper subnetwork arrives on the
        # even port; exchange when the even-port packet wants the odd
        # (lower) output of the pair.
        for t in range(half):
            upper_output = 2 * t if output_sub[2 * t] == 0 else 2 * t + 1
            # The packet arriving from the upper subnetwork is the one
            # whose output terminal was assigned side 0.
            controls[last_col][base_line // 2 + t] = 1 if upper_output == 2 * t + 1 else 0

        # Build and recurse on the two half-size sub-permutations.
        upper_map = [0] * half
        lower_map = [0] * half
        for i, o in enumerate(mapping):
            if input_sub[i] == 0:
                upper_map[i // 2] = o // 2
            else:
                lower_map[i // 2] = o // 2
        self._set_recursive(upper_map, depth + 1, 2 * block, controls)
        self._set_recursive(lower_map, depth + 1, 2 * block + 1, controls)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(
        self, inputs: Sequence[Any], trace: bool = False
    ) -> Tuple[List[Word], Optional[List]]:
        """Globally set up the fabric for the input permutation and route it."""
        words = [
            item if isinstance(item, Word) else Word(address=int(item))
            for item in inputs
        ]
        addresses = [word.address for word in words]
        if sorted(addresses) != list(range(self.n)):
            raise NotAPermutationError(addresses)
        pi = Permutation(addresses)
        controls = self.controls_for(pi)
        outputs, traces = self.fabric.route_with_controls(
            words, controls, trace=trace
        )
        return outputs, traces

    def __repr__(self) -> str:
        return f"BenesNetwork(m={self.m}, n={self.n})"
