"""The crossbar: the trivially non-blocking reference network.

Mentioned in the paper's introduction as the classic permutation
network with prohibitive ``O(N^2)`` cost.  It serves the reproduction
as ground truth: any other network's output must equal the crossbar's,
and its cost appears in comparison plots as the quadratic upper line.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from ..core.words import Word
from ..exceptions import NotAPermutationError, PathConflictError

__all__ = ["Crossbar"]


class Crossbar:
    """An ``n x n`` crossbar switch.

    Unlike the multistage networks, *n* need not be a power of two.
    Routing is a direct scatter with explicit conflict detection (two
    words addressed to the same output raise
    :class:`~repro.exceptions.PathConflictError`).
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"crossbar size must be positive, got {n}")
        self.n = n

    @property
    def crosspoint_count(self) -> int:
        """``n**2`` crosspoints — the cost the paper's networks avoid."""
        return self.n * self.n

    def route(self, inputs: Sequence[Any]) -> List[Word]:
        """Deliver every word to its addressed output line."""
        if len(inputs) != self.n:
            raise ValueError(f"expected {self.n} inputs, got {len(inputs)}")
        words = [
            item if isinstance(item, Word) else Word(address=int(item))
            for item in inputs
        ]
        outputs: List[Word] = [None] * self.n  # type: ignore[list-item]
        for j, word in enumerate(words):
            if not 0 <= word.address < self.n:
                raise NotAPermutationError([w.address for w in words])
            if outputs[word.address] is not None:
                raise PathConflictError(stage=0, port=word.address, contenders=j)
            outputs[word.address] = word
        return outputs

    def __repr__(self) -> str:
        return f"Crossbar(n={self.n})"
