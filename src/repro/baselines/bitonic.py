"""Batcher's bitonic sorting network (extension beyond the paper).

The paper compares against the odd-even merge network; the bitonic
sorter is Batcher's other 1968 construction with the same
``O(log^2 N)`` stage count but more comparators
(``(N/4) log N (log N + 1)`` exactly).  Including it lets the
comparison benchmarks show that the BNB advantage is not an artifact of
picking odd-even merge specifically.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..bits import require_power_of_two
from ..core.words import Word
from ..exceptions import NotAPermutationError
from .batcher import ComparatorRecord

__all__ = ["bitonic_sort_pairs", "bitonic_comparator_count", "BitonicNetwork"]


def _bitonic_sort(lo: int, count: int, ascending: bool) -> Iterator[Tuple[int, int, bool]]:
    if count > 1:
        half = count // 2
        yield from _bitonic_sort(lo, half, True)
        yield from _bitonic_sort(lo + half, half, False)
        yield from _bitonic_merge(lo, count, ascending)


def _bitonic_merge(lo: int, count: int, ascending: bool) -> Iterator[Tuple[int, int, bool]]:
    if count > 1:
        half = count // 2
        for i in range(lo, lo + half):
            yield (i, i + half, ascending)
        yield from _bitonic_merge(lo, half, ascending)
        yield from _bitonic_merge(lo + half, half, ascending)


def bitonic_sort_pairs(n: int) -> List[Tuple[int, int, bool]]:
    """All comparators ``(i, j, ascending)`` in dependency order.

    ``ascending`` selects the comparator direction: when true the
    smaller key exits on line ``i``.
    """
    require_power_of_two(n, "bitonic network size")
    if n == 1:
        return []
    return list(_bitonic_sort(0, n, True))


def bitonic_comparator_count(n: int) -> int:
    """Closed form ``(N/4) log N (log N + 1)``."""
    m = require_power_of_two(n, "bitonic network size")
    return (n * m * (m + 1)) // 4


class BitonicNetwork:
    """The ``N``-input bitonic sorting network.

    Shares the stage-levelization and cost model of
    :class:`~repro.baselines.batcher.BatcherNetwork` (a comparator is a
    comparator); only the comparator list differs.
    """

    def __init__(self, m: int, w: int = 0) -> None:
        if m < 0:
            raise ValueError(f"need m >= 0, got {m}")
        if w < 0:
            raise ValueError(f"data width must be non-negative, got {w}")
        self.m = m
        self.n = 1 << m
        self.w = w
        self._comparators = bitonic_sort_pairs(self.n)
        self._directed_stages = self._levelize_directed()

    def _levelize_directed(self) -> List[List[Tuple[int, int, bool]]]:
        line_ready: dict = {}
        stages: List[List[Tuple[int, int, bool]]] = []
        for i, j, ascending in self._comparators:
            stage = max(line_ready.get(i, 0), line_ready.get(j, 0))
            if stage == len(stages):
                stages.append([])
            stages[stage].append((i, j, ascending))
            line_ready[i] = stage + 1
            line_ready[j] = stage + 1
        return stages

    @property
    def comparator_count(self) -> int:
        return len(self._comparators)

    @property
    def stage_count(self) -> int:
        return len(self._directed_stages)

    @property
    def switch_slice_count(self) -> int:
        """Same per-comparator cost model as the odd-even network."""
        return self.comparator_count * (self.m + self.w)

    @property
    def function_slice_count(self) -> int:
        return self.comparator_count * self.m

    def propagation_delay(self, d_sw: float = 1.0, d_fn: float = 1.0) -> float:
        return self.stage_count * (self.m * d_fn + d_sw)

    def sort(
        self,
        items: Sequence[Any],
        key: Callable[[Any], int] = lambda item: item,
        record: bool = False,
    ) -> Tuple[List[Any], Optional[List[ComparatorRecord]]]:
        """Run the network over *items*."""
        if len(items) != self.n:
            raise ValueError(f"expected {self.n} items, got {len(items)}")
        lines = list(items)
        records: Optional[List[ComparatorRecord]] = [] if record else None
        for stage_index, stage in enumerate(self._directed_stages):
            for i, j, ascending in stage:
                out_of_order = key(lines[i]) > key(lines[j])
                swapped = out_of_order if ascending else not out_of_order
                if swapped:
                    lines[i], lines[j] = lines[j], lines[i]
                if records is not None:
                    records.append(
                        ComparatorRecord(
                            stage=stage_index,
                            low_line=i,
                            high_line=j,
                            swapped=swapped,
                        )
                    )
        return lines, records

    def route(
        self, inputs: Sequence[Any], record: bool = False
    ) -> Tuple[List[Word], Optional[List[ComparatorRecord]]]:
        """Self-route a permutation of addresses by sorting on them."""
        words = [
            item if isinstance(item, Word) else Word(address=int(item))
            for item in inputs
        ]
        if sorted(word.address for word in words) != list(range(self.n)):
            raise NotAPermutationError([word.address for word in words])
        return self.sort(words, key=lambda word: word.address, record=record)

    def __repr__(self) -> str:
        return f"BitonicNetwork(m={self.m}, n={self.n}, w={self.w})"
