"""Three-stage Clos networks with rearrangeable routing.

The Koppelman & Oruc SRPN the paper compares against "was derived from
a particular Clos network called the complementary Benes network", so
the Clos family is part of this reproduction's context.  We implement
the symmetric three-stage Clos ``C(n, m, r)``:

* ``r`` ingress crossbars of size ``n x m``,
* ``m`` middle crossbars of size ``r x r``,
* ``r`` egress crossbars of size ``m x n``,

with ``N = n * r`` terminals.  For ``m >= n`` the network is
rearrangeable (Slepian-Duguid): any permutation decomposes into ``m``
rounds of middle-stage assignments.  Routing is by repeated perfect
matching on the ingress/egress bipartite demand multigraph — Hall's
theorem guarantees each round a perfect matching, found here with
networkx.  (With ``n = m = 2`` and recursion this is exactly how the
Benes network arises.)
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.words import Word
from ..exceptions import ConfigurationError, NotAPermutationError, RoutingError
from ..permutations.permutation import Permutation

__all__ = ["ClosNetwork", "ClosRoute"]


@dataclasses.dataclass(frozen=True)
class ClosRoute:
    """One word's path: which middle switch carries it."""

    source: int
    destination: int
    ingress_switch: int
    middle_switch: int
    egress_switch: int


class ClosNetwork:
    """A symmetric three-stage Clos network ``C(n, m, r)``.

    Parameters
    ----------
    n:
        Terminals per ingress/egress switch.
    m:
        Middle switches.  ``m >= n`` is required (the rearrangeability
        condition); ``m >= 2n - 1`` would make it strictly non-blocking,
        which this implementation doesn't need since it routes whole
        permutations at once.
    r:
        Ingress (= egress) switches; the network has ``N = n * r``
        terminals.
    """

    def __init__(self, n: int, m: int, r: int) -> None:
        if n < 1 or m < 1 or r < 1:
            raise ConfigurationError(
                f"Clos parameters must be positive, got n={n}, m={m}, r={r}"
            )
        if m < n:
            raise ConfigurationError(
                f"rearrangeability needs m >= n, got n={n}, m={m}"
            )
        self.n = n
        self.m = m
        self.r = r
        self.terminals = n * r

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def crosspoint_count(self) -> int:
        """Total crosspoints: ``2 r n m + m r^2``.

        Minimized over ``m = n`` at ``2 N n + n (N/n)^2`` — the classic
        Clos saving over the single ``N^2`` crossbar.
        """
        return 2 * self.r * self.n * self.m + self.m * self.r * self.r

    def ingress_of(self, terminal: int) -> int:
        if not 0 <= terminal < self.terminals:
            raise ValueError(f"terminal {terminal} out of range")
        return terminal // self.n

    # ------------------------------------------------------------------
    # Routing (Slepian-Duguid via repeated perfect matchings)
    # ------------------------------------------------------------------
    def middle_assignments(self, pi: Permutation) -> List[Dict[int, int]]:
        """Assign each source terminal a middle switch.

        Returns one dict per middle switch: ``{source: destination}``
        pairs carried by that middle switch.  Within one middle switch
        every ingress and every egress appears at most once — that is
        the conflict-freedom invariant, asserted before returning.
        """
        if len(pi) != self.terminals:
            raise ValueError(
                f"expected a permutation of {self.terminals} terminals"
            )
        # Demand multigraph: one edge (ingress, egress) per word.
        remaining: List[Tuple[int, int, int]] = []  # (ingress, egress, source)
        for source in range(self.terminals):
            destination = pi(source)
            remaining.append(
                (self.ingress_of(source), self.ingress_of(destination), source)
            )
        assignments: List[Dict[int, int]] = []
        for _middle in range(self.m):
            if not remaining:
                assignments.append({})
                continue
            graph = nx.Graph()
            left = {f"i{i}" for i, _e, _s in remaining}
            right = {f"e{e}" for _i, e, _s in remaining}
            graph.add_nodes_from(left, bipartite=0)
            graph.add_nodes_from(right, bipartite=1)
            edge_words: Dict[Tuple[str, str], List[int]] = {}
            for ingress, egress, source in remaining:
                key = (f"i{ingress}", f"e{egress}")
                edge_words.setdefault(key, []).append(source)
                graph.add_edge(*key)
            matching = nx.algorithms.bipartite.maximum_matching(
                graph, top_nodes=left
            )
            chosen: Dict[int, int] = {}
            used_sources = set()
            for node, partner in matching.items():
                if not node.startswith("i"):
                    continue
                source = edge_words[(node, partner)][0]
                chosen[source] = pi(source)
                used_sources.add(source)
            assignments.append(chosen)
            remaining = [
                entry for entry in remaining if entry[2] not in used_sources
            ]
        if remaining:
            raise RoutingError(
                f"{len(remaining)} words unassigned after {self.m} middle "
                f"switches; Slepian-Duguid guarantees this cannot happen "
                f"for m >= n"
            )
        for middle, chosen in enumerate(assignments):
            ingresses = [self.ingress_of(s) for s in chosen]
            egresses = [self.ingress_of(d) for d in chosen.values()]
            if len(set(ingresses)) != len(ingresses) or len(
                set(egresses)
            ) != len(egresses):
                raise RoutingError(
                    f"middle switch {middle} double-booked; matching bug"
                )
        return assignments

    def routes_for(self, pi: Permutation) -> List[ClosRoute]:
        """Full per-word routes realizing *pi*."""
        routes: List[Optional[ClosRoute]] = [None] * self.terminals
        for middle, chosen in enumerate(self.middle_assignments(pi)):
            for source, destination in chosen.items():
                routes[source] = ClosRoute(
                    source=source,
                    destination=destination,
                    ingress_switch=self.ingress_of(source),
                    middle_switch=middle,
                    egress_switch=self.ingress_of(destination),
                )
        assert all(route is not None for route in routes)
        return routes  # type: ignore[return-value]

    def route(self, inputs: Sequence[Any]) -> List[Word]:
        """Route a permutation of addresses; same contract as the BNB."""
        words = [
            item if isinstance(item, Word) else Word(address=int(item))
            for item in inputs
        ]
        addresses = [word.address for word in words]
        if sorted(addresses) != list(range(self.terminals)):
            raise NotAPermutationError(addresses)
        routes = self.routes_for(Permutation(addresses))
        outputs: List[Word] = [None] * self.terminals  # type: ignore[list-item]
        for route in routes:
            outputs[route.destination] = words[route.source]
        return outputs

    def __repr__(self) -> str:
        return (
            f"ClosNetwork(n={self.n}, m={self.m}, r={self.r}, "
            f"terminals={self.terminals})"
        )
