"""A functional model of Koppelman & Oruc's self-routing network (ref. [11]).

The 1989 SRPN derives from a complementary Benes network: each stage
sorts one destination bit using *global* rank information — a
tree-structured **ranking circuit** of adder nodes computes, for every
packet, how many packets of its bit value precede it, and preset
routing rules steer the packet by its rank through a cube-type network.
The paper at hand contrasts this "sort bits with global information"
approach with its own local splitter and credits the SRPN with:

* hardware: ``(N/4) log^3 N`` switch slices, ``(N/2) log^2 N`` function
  slices **plus** ``N log^2 N`` adder slices (Table 1);
* delay: ``(2/3) log^3 N - log^2 N + (1/3) log N + 1`` (Table 2).

The original design is not open source; per DESIGN.md's substitution
rule we reproduce it *functionally*: the same main-network structure as
the BNB model, but each stage's bit sorter is a ranking circuit
(a genuine parallel-prefix popcount tree, so the adder hardware has a
real code counterpart) followed by rank-addressed placement — zeros to
the even outputs in rank order, ones to the odd outputs.  The cost and
delay figures above are taken from the published formulas and exposed
as properties, so comparison benches exercise real routing code while
charging the documented hardware.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from ..bits import address_bit, require_power_of_two, unshuffle_index
from ..core.words import Word
from ..exceptions import NotAPermutationError
from ..permutations.permutation import Permutation

__all__ = ["KoppelmanSRPN", "ranking_circuit_ranks", "prefix_popcounts"]


def prefix_popcounts(bits: Sequence[int]) -> List[int]:
    """Exclusive prefix sums of a bit vector via a Ladner-Fischer tree.

    This mirrors the adder-tree hardware of the ranking circuit: an
    up-sweep computes subtree sums, a down-sweep distributes prefixes.
    ``result[j]`` is the number of 1s strictly before position ``j``.
    """
    n = len(bits)
    require_power_of_two(n, "ranking circuit width")
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"ranking circuit inputs must be bits, got {b!r}")
    # Up-sweep: sums[level][i] is the sum of block i at that level.
    sums: List[List[int]] = [list(bits)]
    while len(sums[-1]) > 1:
        previous = sums[-1]
        sums.append(
            [previous[2 * i] + previous[2 * i + 1] for i in range(len(previous) // 2)]
        )
    # Down-sweep: prefix of each block, root starts at zero.
    prefixes: List[int] = [0]
    for level in range(len(sums) - 2, -1, -1):
        next_prefixes: List[int] = []
        for i, prefix in enumerate(prefixes):
            next_prefixes.append(prefix)
            next_prefixes.append(prefix + sums[level][2 * i])
        prefixes = next_prefixes
    return prefixes


def ranking_circuit_ranks(bits: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Per-line ranks among equal-bit packets: ``(rank_of_zeros, rank_of_ones)``.

    ``rank_of_ones[j]`` counts 1s strictly before line ``j``;
    ``rank_of_zeros[j]`` counts 0s.  Only the entry matching the line's
    own bit is meaningful to the router, but both come out of the same
    prefix tree, as in the original circuit's paired adder outputs.
    """
    ones_before = prefix_popcounts(bits)
    zeros_before = [j - ones_before[j] for j in range(len(bits))]
    return zeros_before, ones_before


class KoppelmanSRPN:
    """Functional Koppelman-Oruc-style self-routing permutation network.

    Routes like the BNB network — ``m`` main stages, stage ``i``
    bit-sorting on address bit ``b^i`` within each block, unshuffle
    between stages — but each block's sorter is the rank-addressed
    placement described in the module docstring.

    Parameters mirror :class:`~repro.core.bnb.BNBNetwork`.
    """

    def __init__(self, m: int, w: int = 0, check_inputs: bool = True) -> None:
        if m < 1:
            raise ValueError(f"need m >= 1, got {m}")
        if w < 0:
            raise ValueError(f"data width must be non-negative, got {w}")
        self.m = m
        self.n = 1 << m
        self.w = w
        self.check_inputs = check_inputs

    # ------------------------------------------------------------------
    # Published complexity figures (Tables 1 and 2 of the paper)
    # ------------------------------------------------------------------
    @property
    def switch_slice_count(self) -> int:
        """Leading term ``(N/4) log^3 N`` from Table 1."""
        return (self.n * self.m**3) // 4

    @property
    def function_slice_count(self) -> int:
        """Leading term ``(N/2) log^2 N`` from Table 1."""
        return (self.n * self.m**2) // 2

    @property
    def adder_slice_count(self) -> int:
        """Leading term ``N log^2 N`` from Table 1 (ranking circuits)."""
        return self.n * self.m**2

    def propagation_delay(self, d_unit: float = 1.0) -> float:
        """Table 2: ``(2/3) log^3 N - log^2 N + (1/3) log N + 1``."""
        m = self.m
        return (2 * m**3 / 3 - m**2 + m / 3 + 1) * d_unit

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @staticmethod
    def _rank_sort_block(
        words: List[Word], bits: List[int]
    ) -> List[Word]:
        """Place zeros on even outputs and ones on odd outputs by rank."""
        zeros_before, ones_before = ranking_circuit_ranks(bits)
        out: List[Word] = [None] * len(words)  # type: ignore[list-item]
        for j, word in enumerate(words):
            if bits[j]:
                destination = 2 * ones_before[j] + 1
            else:
                destination = 2 * zeros_before[j]
            out[destination] = word
        return out

    def route(self, inputs: Sequence[Any]) -> List[Word]:
        """Self-route a permutation of addresses; same contract as BNB."""
        if len(inputs) != self.n:
            raise ValueError(f"expected {self.n} inputs, got {len(inputs)}")
        words = [
            item if isinstance(item, Word) else Word(address=int(item))
            for item in inputs
        ]
        if self.check_inputs:
            addresses = [word.address for word in words]
            if sorted(addresses) != list(range(self.n)):
                raise NotAPermutationError(addresses)
        current = list(words)
        m = self.m
        for i in range(m):
            block = 1 << (m - i)
            routed: List[Word] = [None] * self.n  # type: ignore[list-item]
            for l in range(1 << i):
                lo = l * block
                sub = current[lo : lo + block]
                bits = [address_bit(word.address, i, m) for word in sub]
                routed[lo : lo + block] = self._rank_sort_block(sub, bits)
            if i < m - 1:
                k = m - i
                connected: List[Word] = [None] * self.n  # type: ignore[list-item]
                for j, value in enumerate(routed):
                    connected[unshuffle_index(j, k, m)] = value
                current = connected
            else:
                current = routed
        return current

    def route_permutation(self, pi: Permutation) -> bool:
        """Route *pi* and report whether every word reached its address."""
        outputs = self.route([Word(address=pi(j), payload=j) for j in range(self.n)])
        return all(outputs[a].address == a for a in range(self.n))

    def __repr__(self) -> str:
        return f"KoppelmanSRPN(m={self.m}, n={self.n}, w={self.w})"
