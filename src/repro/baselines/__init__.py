"""Baseline networks the paper compares against (Section 5.3).

* :mod:`~repro.baselines.crossbar` — the ``O(N^2)`` crossbar, used as a
  trivially correct ground truth.
* :mod:`~repro.baselines.batcher` — Batcher's odd-even merge sorting
  network, the main comparator (Eqs. 10-12).
* :mod:`~repro.baselines.bitonic` — Batcher's bitonic sorter (extension;
  same asymptotics, different constants).
* :mod:`~repro.baselines.benes` — the Benes network with Waksman's
  looping algorithm: the *globally routed* rearrangeable network whose
  setup cost motivates self-routing designs.
* :mod:`~repro.baselines.nassimi_sahni` — self-routing on the Benes
  network (reference [7]): succeeds exactly on the restricted BPC-style
  classes, demonstrating why full self-routing needs a sorting fabric.
* :mod:`~repro.baselines.koppelman` — a functional model of Koppelman &
  Oruc's self-routing permutation network (reference [11]) plus its
  published complexity figures.
"""

from .crossbar import Crossbar
from .batcher import (
    BatcherNetwork,
    odd_even_merge_sort_pairs,
    batcher_comparator_count,
    batcher_stage_count,
)
from .bitonic import BitonicNetwork, bitonic_sort_pairs
from .benes import BenesNetwork, benes_switch_count
from .nassimi_sahni import NassimiSahniRouter
from .koppelman import KoppelmanSRPN, ranking_circuit_ranks
from .clos import ClosNetwork, ClosRoute

__all__ = [
    "Crossbar",
    "BatcherNetwork",
    "odd_even_merge_sort_pairs",
    "batcher_comparator_count",
    "batcher_stage_count",
    "BitonicNetwork",
    "bitonic_sort_pairs",
    "BenesNetwork",
    "benes_switch_count",
    "NassimiSahniRouter",
    "KoppelmanSRPN",
    "ranking_circuit_ranks",
    "ClosNetwork",
    "ClosRoute",
]
