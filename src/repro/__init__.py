"""repro: a reproduction of the BNB self-routing permutation network.

Lee & Lu, "BNB Self-Routing Permutation Network", ICDCS 1991.

Quickstart
----------
>>> from repro import BNBNetwork, random_permutation
>>> net = BNBNetwork(m=4)                      # 16-input network
>>> pi = random_permutation(16, rng=0)
>>> outputs, _ = net.route(pi.to_list())
>>> [w.address for w in outputs] == list(range(16))
True

See the package-level docs of :mod:`repro.core`, :mod:`repro.baselines`,
:mod:`repro.hardware`, :mod:`repro.sim` and :mod:`repro.analysis` for
the full tour, and DESIGN.md / EXPERIMENTS.md for the paper mapping.
"""

from ._version import __version__
from .exceptions import (
    ConfigurationError,
    FaultError,
    FaultServiceError,
    InputError,
    LocalizationAmbiguousError,
    NotAPermutationError,
    PathConflictError,
    QuarantineExhaustedError,
    ReproError,
    RetryBudgetExceededError,
    RoutingError,
    SimulationError,
    SizeError,
    UnbalancedInputError,
    UnroutablePermutationError,
)
from .permutations import (
    Permutation,
    PermutationSampler,
    all_permutations,
    random_permutation,
)
from .core import (
    Arbiter,
    BitSorterNetwork,
    BNBNetwork,
    GeneralizedBaselineNetwork,
    Splitter,
    Word,
    words_from_permutation,
)
from .baselines import (
    BatcherNetwork,
    BenesNetwork,
    BitonicNetwork,
    Crossbar,
    KoppelmanSRPN,
    NassimiSahniRouter,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "SizeError",
    "InputError",
    "UnbalancedInputError",
    "NotAPermutationError",
    "RoutingError",
    "PathConflictError",
    "UnroutablePermutationError",
    "SimulationError",
    "FaultError",
    "FaultServiceError",
    "QuarantineExhaustedError",
    "LocalizationAmbiguousError",
    "RetryBudgetExceededError",
    "Permutation",
    "PermutationSampler",
    "random_permutation",
    "all_permutations",
    "Word",
    "words_from_permutation",
    "Arbiter",
    "Splitter",
    "BitSorterNetwork",
    "GeneralizedBaselineNetwork",
    "BNBNetwork",
    "BatcherNetwork",
    "BitonicNetwork",
    "BenesNetwork",
    "NassimiSahniRouter",
    "KoppelmanSRPN",
    "Crossbar",
]
