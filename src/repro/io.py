"""JSON persistence for the library's result objects.

Benchmarks and experiments produce typed results (inventories, stats,
fits, verification reports).  This module gives them a stable JSON
form so runs can be archived and diffed:

>>> from repro.io import to_jsonable, from_jsonable
>>> from repro.permutations import Permutation
>>> blob = to_jsonable(Permutation([2, 0, 1]))
>>> from_jsonable(blob)
Permutation([2, 0, 1])

Every supported type round-trips through ``to_jsonable`` /
``from_jsonable``; :func:`save_json` / :func:`load_json` add the file
plumbing.  Unknown types raise immediately rather than pickling
something unreadable.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Callable, Dict, Tuple, Type, Union

from .analysis.scaling import PolynomialFit
from .analysis.verification import VerificationReport
from .core.words import Word
from .hardware.accounting import HardwareInventory
from .hardware.layout import WiringCost
from .permutations.permutation import Permutation

__all__ = ["to_jsonable", "from_jsonable", "save_json", "load_json"]

_TYPE_KEY = "__repro__"

# Dataclasses that serialize field-by-field.  VerificationReport's
# failures hold Permutations, so it gets explicit handling.
_PLAIN_DATACLASSES: Dict[str, Type] = {
    "HardwareInventory": HardwareInventory,
    "WiringCost": WiringCost,
    "PolynomialFit": PolynomialFit,
}


def to_jsonable(value: Any) -> Any:
    """Convert *value* to JSON-encodable data with type tags."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, Permutation):
        return {_TYPE_KEY: "Permutation", "mapping": list(value.mapping)}
    if isinstance(value, Word):
        return {
            _TYPE_KEY: "Word",
            "address": value.address,
            "payload": to_jsonable(value.payload),
        }
    if isinstance(value, VerificationReport):
        return {
            _TYPE_KEY: "VerificationReport",
            "router": value.router,
            "n": value.n,
            "mode": value.mode,
            "attempted": value.attempted,
            "delivered": value.delivered,
            "failures": [to_jsonable(pi) for pi in value.failures],
        }
    for name, cls in _PLAIN_DATACLASSES.items():
        if isinstance(value, cls):
            blob = {_TYPE_KEY: name}
            for field in dataclasses.fields(cls):
                blob[field.name] = to_jsonable(getattr(value, field.name))
            return blob
    raise TypeError(f"cannot serialize {type(value).__name__} to JSON")


def from_jsonable(blob: Any) -> Any:
    """Inverse of :func:`to_jsonable`."""
    if blob is None or isinstance(blob, (bool, int, float, str)):
        return blob
    if isinstance(blob, list):
        return [from_jsonable(item) for item in blob]
    if isinstance(blob, dict):
        tag = blob.get(_TYPE_KEY)
        if tag is None:
            return {key: from_jsonable(item) for key, item in blob.items()}
        if tag == "Permutation":
            return Permutation(blob["mapping"])
        if tag == "Word":
            return Word(
                address=blob["address"], payload=from_jsonable(blob["payload"])
            )
        if tag == "VerificationReport":
            return VerificationReport(
                router=blob["router"],
                n=blob["n"],
                mode=blob["mode"],
                attempted=blob["attempted"],
                delivered=blob["delivered"],
                failures=[from_jsonable(item) for item in blob["failures"]],
            )
        if tag in _PLAIN_DATACLASSES:
            cls = _PLAIN_DATACLASSES[tag]
            kwargs = {
                field.name: from_jsonable(blob[field.name])
                for field in dataclasses.fields(cls)
            }
            if tag == "PolynomialFit":
                kwargs["coefficients"] = tuple(kwargs["coefficients"])
            return cls(**kwargs)
        raise ValueError(f"unknown type tag {tag!r}")
    raise TypeError(f"cannot deserialize {type(blob).__name__}")


def save_json(value: Any, path: Union[str, pathlib.Path]) -> None:
    """Serialize *value* to *path* (pretty-printed, stable key order)."""
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(to_jsonable(value), indent=2, sort_keys=True) + "\n"
    )


def load_json(path: Union[str, pathlib.Path]) -> Any:
    """Load a value previously written by :func:`save_json`."""
    return from_jsonable(json.loads(pathlib.Path(path).read_text()))
