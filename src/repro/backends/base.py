"""The :class:`RoutingBackend` protocol and the backend registry.

ROADMAP item 1 made live: every permutation-routing engine in the
repository — the BNB dataplane itself and the rival fabrics from
``baselines/`` — plugs in behind one compiled-engine contract so the
serving layer (and the arena calibration in
:mod:`repro.backends.arena`) can treat "which network routes this
plane's frames" as a measured choice instead of a hard-coded one.

The contract has two halves:

* a :class:`BackendSpec` — the registry entry: name, one-line summary,
  capability flags (``supports_fault_mask`` for engines that accept a
  :class:`~repro.core.plan.FaultMask`, ``supports_partial`` for engines
  that can route non-permutation frames) and a ``factory`` that
  compiles the per-``m`` engine;
* a compiled engine (:class:`RoutingBackend`) — built **once per
  (backend, m)** and cached process-wide, exposing ``route_frame`` /
  ``route_frame_batch`` over int64 numpy address arrays.  Both return
  *sources*: ``sources[line]`` is the input line whose word arrives on
  output ``line`` (``sources[b, line]`` for the batch form), the same
  convention as :func:`repro.core.pipeline_fast.route_frame_sources`.

Compilation cost (Benes wiring tables, comparator stage indices, BNB
gather plans) is therefore paid once per process per size — the
:func:`prewarm` hook lets the gateway pay it at boot instead of on the
first served frame.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Callable, Dict, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

__all__ = [
    "BackendSpec",
    "RoutingBackend",
    "backend_names",
    "backend_specs",
    "compile_cache_info",
    "compiled_backend",
    "get_backend_spec",
    "prewarm",
    "register_backend",
]


@runtime_checkable
class RoutingBackend(Protocol):
    """A compiled permutation-routing engine for one network size.

    Implementations carry their compile-once state (index tables,
    network objects) as instance attributes; the route methods must not
    mutate shared tables, so one compiled engine can serve every plane
    of its size concurrently.
    """

    #: Registry name of the backend that compiled this engine.
    name: str
    #: Size exponent; the engine routes frames of ``n = 2**m`` words.
    m: int
    #: Frame width.
    n: int

    def route_frame(self, addresses: np.ndarray) -> np.ndarray:
        """Route one frame; return the per-output source-line array.

        *addresses* is a length-``n`` int64 permutation of
        ``0 .. n-1``; ``result[line]`` is the input line whose word
        arrives on output ``line``.
        """
        ...

    def route_frame_batch(self, addresses: np.ndarray) -> np.ndarray:
        """Route a ``(batch, n)`` stack of independent frames at once."""
        ...


@dataclasses.dataclass(frozen=True)
class BackendSpec:
    """One registry entry: identity, capabilities, and the compiler."""

    name: str
    summary: str
    factory: Callable[[int], RoutingBackend]
    #: The engine accepts a :class:`~repro.core.plan.FaultMask` (a
    #: ``mask=`` keyword on its route methods) and reproduces the
    #: faulty fabric's arrival order.
    supports_fault_mask: bool = False
    #: The engine delivers the active words of a frame whose idle lines
    #: carry no genuine destination.  Every current backend requires a
    #: full permutation (the scheduler's self-addressed filler provides
    #: one), so this stays ``False`` until a partial-capable engine —
    #: e.g. a concentrator front end — registers.
    supports_partial: bool = False

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "summary": self.summary,
            "supports_fault_mask": self.supports_fault_mask,
            "supports_partial": self.supports_partial,
        }


#: name -> spec; populated by the ``register_backend`` calls in the
#: sibling modules, imported by ``repro.backends.__init__``.
_REGISTRY: Dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec) -> BackendSpec:
    """Add *spec* to the registry (idempotent for an identical spec)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise ValueError(f"backend {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def backend_names() -> List[str]:
    """Registered backend names, sorted — the CLI choices source."""
    return sorted(_REGISTRY)


def backend_specs() -> Tuple[BackendSpec, ...]:
    return tuple(_REGISTRY[name] for name in backend_names())


def get_backend_spec(name: str) -> BackendSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None


@functools.lru_cache(maxsize=None)
def compiled_backend(name: str, m: int) -> RoutingBackend:
    """The compile-once engine for ``(backend, m)``, cached per process.

    Every plane, arena pass and CLI invocation of a given size shares
    one compiled engine, exactly like
    :func:`repro.core.plan.compiled_plan` shares its index tables.
    """
    if m < 1:
        raise ValueError(f"a routing backend needs m >= 1, got {m}")
    return get_backend_spec(name).factory(m)


def compile_cache_info():
    """The compiled-engine cache counters (for prewarm tests/stats)."""
    return compiled_backend.cache_info()


def prewarm(m: int, names: Optional[List[str]] = None) -> List[str]:
    """Compile the named backends (default: all) for size *m* now.

    Also warms the shared :func:`~repro.core.plan.compiled_plan` table
    cache, so a server that calls this at boot pays zero compile
    latency on its first frame.  Returns the names compiled.
    """
    from ..core.plan import compiled_plan

    compiled_plan(m)
    chosen = backend_names() if names is None else list(names)
    for name in chosen:
        compiled_backend(name, m)
    return chosen
