"""The BNB engines behind the :class:`RoutingBackend` protocol.

Two registrations:

* ``"bnb"`` — the compiled vector dataplane.  ``route_frame`` is
  :func:`~repro.core.pipeline_fast.route_frame_sources` (one frame, all
  ``m`` main stages as numpy gathers) and ``route_frame_batch`` is
  :func:`~repro.core.pipeline_fast.route_frame_batch` (the frame-axis
  kernel behind :class:`~repro.server.planes.BatchVectorPlane`) — the
  existing vector and batch engines, now one protocol object.  The only
  backend that supports fault masks: both methods take an optional
  ``mask`` and reproduce the faulty fabric's arrival order.
* ``"bnb-object"`` — the reference object model
  (:class:`~repro.core.bnb.BNBNetwork.route`), word objects and all.
  Registered so the arena measures the same engine the paper's object
  pipeline serves with, and so ``repro route --backend bnb-object``
  exercises the protocol against the slowest truthful implementation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.plan import FaultMask, compiled_plan
from ..core.pipeline_fast import route_frame_batch, route_frame_sources
from .base import BackendSpec, register_backend

__all__ = ["BNBObjectBackend", "BNBVectorBackend"]


class BNBVectorBackend:
    """The compiled BNB dataplane as a protocol backend."""

    name = "bnb"

    def __init__(self, m: int) -> None:
        self.m = m
        self.n = 1 << m
        # Compile-once: the per-m gather plan both kernels run on.
        self.plan = compiled_plan(m)

    def route_frame(
        self, addresses: np.ndarray, mask: Optional[FaultMask] = None
    ) -> np.ndarray:
        return route_frame_sources(self.m, addresses, mask=mask)

    def route_frame_batch(
        self, addresses: np.ndarray, mask: Optional[FaultMask] = None
    ) -> np.ndarray:
        return route_frame_batch(self.m, addresses, mask=mask)

    def __repr__(self) -> str:
        return f"BNBVectorBackend(m={self.m}, n={self.n})"


class BNBObjectBackend:
    """The reference object-model BNB network as a protocol backend."""

    name = "bnb-object"

    def __init__(self, m: int) -> None:
        from ..core.bnb import BNBNetwork

        self.m = m
        self.n = 1 << m
        self.network = BNBNetwork(m)

    def route_frame(self, addresses: np.ndarray) -> np.ndarray:
        from ..core.words import Word

        words = [
            Word(address=int(address), payload=line)
            for line, address in enumerate(addresses)
        ]
        outputs, _record = self.network.route(words)
        return np.fromiter(
            (word.payload for word in outputs), dtype=np.int64, count=self.n
        )

    def route_frame_batch(self, addresses: np.ndarray) -> np.ndarray:
        # The object model has no frame axis; a batch is a Python loop.
        return np.stack([self.route_frame(row) for row in addresses])

    def __repr__(self) -> str:
        return f"BNBObjectBackend(m={self.m}, n={self.n})"


register_backend(
    BackendSpec(
        name="bnb",
        summary="compiled BNB vector dataplane (frame-axis batch kernel)",
        factory=BNBVectorBackend,
        supports_fault_mask=True,
    )
)

register_backend(
    BackendSpec(
        name="bnb-object",
        summary="reference BNB object model (per-word Python routing)",
        factory=BNBObjectBackend,
    )
)
