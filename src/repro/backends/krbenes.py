"""KR-Benes backend: Waksman looping on precomputed gather tables.

The control-optimal rearrangeable rival (arxiv cs/0309006 lineage):
routing cost is dominated by *computing* the ``2m - 1`` control columns,
not by moving words, so this backend keeps the repository's existing
Waksman looping algorithm (:meth:`repro.baselines.benes.BenesNetwork
.controls_for`, exercised fabric-level by the baseline tests) and
replaces the object fabric's per-word ``route_with_controls`` walk with
compiled index arithmetic in the style of :mod:`repro.core.plan`:

* the interstage wirings (``U_{m-i}^m`` unshuffles and their mirror
  shuffles) are scatters in the object model (``out[wiring[j]] =
  lines[j]``); compiled once per ``m`` into their **gather** inverses
  (frozen int64 arrays), a column transition is ``lines[inverse]``;
* a column's switch settings become one full-width partner-swap index
  (``identity ^ repeat(controls, 2)``), composed with the wiring gather
  in a single fancy-indexing pass over the frame's source array.

So a routed frame costs one Python-level Waksman pass (inherently
sequential — that is the paper's argument *for* self-routing) plus
``2m - 1`` numpy gathers, with no per-word objects anywhere.
"""

from __future__ import annotations

import numpy as np

from ..baselines.benes import BenesNetwork
from ..permutations.permutation import Permutation
from ..topology.connections import invert_connection
from .base import BackendSpec, register_backend

__all__ = ["KRBenesBackend"]


class KRBenesBackend:
    """Benes fabric + Waksman controls on compiled gather tables."""

    name = "krbenes"

    def __init__(self, m: int) -> None:
        self.m = m
        self.n = 1 << m
        # Compile-once: the Benes network object (reused for its looping
        # algorithm) and the gather form of every interstage wiring.
        self.network = BenesNetwork(m)
        gathers = []
        for wiring in self.network.fabric.wirings:
            inverse = np.asarray(invert_connection(wiring), dtype=np.int64)
            inverse.flags.writeable = False
            gathers.append(inverse)
        self.wiring_gathers = tuple(gathers)
        identity = np.arange(self.n, dtype=np.int64)
        identity.flags.writeable = False
        self.identity = identity

    def _apply_controls(self, controls) -> np.ndarray:
        """Compose every column's exchanges and wirings into sources."""
        sources = self.identity
        gathers = self.wiring_gathers
        for column, column_controls in enumerate(controls):
            exchange = np.repeat(
                np.asarray(column_controls, dtype=np.int64), 2
            )
            # identity ^ exchange sends a line to its pair partner
            # exactly where the switch says exchange (controls are 0/1).
            step = self.identity ^ exchange
            if column < len(gathers):
                step = step[gathers[column]]
            sources = sources[step]
        return sources

    def route_frame(self, addresses: np.ndarray) -> np.ndarray:
        pi = Permutation(int(address) for address in addresses)
        controls = self.network.controls_for(pi)
        return self._apply_controls(controls)

    def route_frame_batch(self, addresses: np.ndarray) -> np.ndarray:
        # Waksman's looping is global per frame; only the gather half
        # of the work vectorizes, so a batch is a loop of frames.
        return np.stack([self.route_frame(row) for row in addresses])

    def __repr__(self) -> str:
        return f"KRBenesBackend(m={self.m}, n={self.n})"


register_backend(
    BackendSpec(
        name="krbenes",
        summary="Benes fabric, Waksman looping controls, compiled gathers",
        factory=KRBenesBackend,
    )
)
