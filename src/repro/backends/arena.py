"""The backend arena: measured auto-select over registered backends.

Turns the paper's Tables 1/2 — an *analytical* comparison of the BNB
network against rival fabrics — into a live, benchmarked one.  A
calibration pass times every registered backend on this machine, per
``(m, workload class)``:

* ``"single"`` — one frame per ``route_frame`` call, the latency-bound
  shape (a plane draining frames one at a time);
* ``"batch"`` — ``batch_window`` frames per ``route_frame_batch`` call,
  the throughput shape behind ``send_batch`` and the batch plane.

Before any timer starts, every candidate is **differentially verified
against the crossbar** (:class:`~repro.baselines.crossbar.Crossbar`,
the trivially-correct direct scatter): the arena routes seeded random
permutations — plus the identity and the reversal — through both and
compares arrival orders word for word.  A backend that disagrees with
the oracle raises :class:`BackendDisagreementError` rather than being
silently timed: a fast wrong answer must never win.

Results are cached per ``(m, workload, backend)`` in-process, so a
gateway booting with ``engine="auto"`` pays the calibration once and
every later plane/size lookup is a dict read.  :func:`select_backend`
returns the measured winner for a cell; ``repro serve --engine auto``
and the gateway's plane factory dispatch on it.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ReproError
from .base import backend_names, compiled_backend, prewarm

__all__ = [
    "ArenaDecision",
    "BackendDisagreementError",
    "WORKLOADS",
    "calibrate",
    "clear_arena_cache",
    "select_backend",
    "verify_backend",
]

#: The workload classes the arena measures.
WORKLOADS: Tuple[str, ...] = ("single", "batch")

#: ``(m, workload, backend) -> seconds_per_frame`` measured on this
#: machine, filled lazily by :func:`calibrate`.
_CACHE: Dict[Tuple[int, str, str], float] = {}


class BackendDisagreementError(ReproError):
    """A backend's arrival order disagreed with the crossbar oracle."""


@dataclasses.dataclass(frozen=True)
class ArenaDecision:
    """Outcome of one auto-select: the winner plus the full table."""

    m: int
    workload: str
    backend: str
    #: ``backend -> seconds per frame`` for every candidate measured.
    table: Dict[str, float]

    @property
    def spread(self) -> float:
        """Slowest over fastest — how much the measured choice matters."""
        fastest = min(self.table.values())
        return max(self.table.values()) / fastest if fastest else 1.0

    def describe(self) -> Dict[str, object]:
        return {
            "m": self.m,
            "workload": self.workload,
            "backend": self.backend,
            "seconds_per_frame": {
                name: self.table[name] for name in sorted(self.table)
            },
            "spread": self.spread,
        }


def _verification_frames(
    n: int, samples: int, seed: int
) -> List[np.ndarray]:
    rng = np.random.default_rng(seed)
    frames = [
        np.arange(n, dtype=np.int64),
        np.arange(n - 1, -1, -1, dtype=np.int64),
    ]
    frames.extend(
        rng.permutation(n).astype(np.int64) for _ in range(samples)
    )
    return frames


def verify_backend(
    name: str, m: int, samples: int = 16, seed: int = 2024
) -> int:
    """Differentially verify one backend against the crossbar oracle.

    Routes the identity, the reversal and *samples* seeded random
    permutations through both the backend (single and batch forms) and
    a :class:`~repro.baselines.crossbar.Crossbar`, comparing arrival
    orders word for word.  Returns the number of frames checked; raises
    :class:`BackendDisagreementError` on the first disagreement.
    """
    from ..baselines.crossbar import Crossbar

    engine = compiled_backend(name, m)
    n = 1 << m
    crossbar = Crossbar(n)
    frames = _verification_frames(n, samples, seed)
    for addresses in frames:
        # The oracle: a direct scatter.  outputs[a] is the Word routed
        # to line a; its payload records the input line it entered on.
        from ..core.words import Word

        outputs = crossbar.route(
            [
                Word(address=int(address), payload=line)
                for line, address in enumerate(addresses)
            ]
        )
        oracle = np.asarray(
            [word.payload for word in outputs], dtype=np.int64
        )
        sources = engine.route_frame(addresses)
        if not np.array_equal(sources, oracle):
            bad = np.flatnonzero(sources != oracle)
            raise BackendDisagreementError(
                f"backend {name!r} (m={m}) disagrees with the crossbar "
                f"on outputs {bad[:8].tolist()}"
            )
    # The batch form must agree row for row with the single form.
    stacked = np.stack(frames)
    batched = engine.route_frame_batch(stacked)
    for row, addresses in zip(batched, frames):
        if not np.array_equal(row, engine.route_frame(addresses)):
            raise BackendDisagreementError(
                f"backend {name!r} (m={m}) batch form disagrees with its "
                f"single-frame form"
            )
    return len(frames)


def _time_single(engine, frames: List[np.ndarray], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for addresses in frames:
            engine.route_frame(addresses)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / len(frames))
    return best


def _time_batch(engine, stacked: np.ndarray, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        engine.route_frame_batch(stacked)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / stacked.shape[0])
    return best


def calibrate(
    m: int,
    workloads: Sequence[str] = WORKLOADS,
    backends: Optional[Sequence[str]] = None,
    frames: int = 16,
    batch_window: int = 32,
    repeats: int = 3,
    verify_samples: int = 8,
    seed: int = 7,
    use_cache: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Measure seconds/frame for every backend per workload class.

    Returns ``{workload: {backend: seconds_per_frame}}``.  Every
    candidate passes :func:`verify_backend` before it is timed; a
    disagreeing backend raises instead of competing.  Measured cells
    land in the in-process cache, so repeated calls (every plane of an
    ``engine="auto"`` gateway, the CLI, the benchmark) are dict reads.
    """
    names = list(backends) if backends is not None else backend_names()
    for workload in workloads:
        if workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {workload!r}; choose from {WORKLOADS}"
            )
    prewarm(m, names)
    missing = [
        (workload, name)
        for workload in workloads
        for name in names
        if not (use_cache and (m, workload, name) in _CACHE)
    ]
    if missing:
        for name in {name for _w, name in missing}:
            verify_backend(name, m, samples=verify_samples, seed=seed)
        rng = np.random.default_rng(seed)
        n = 1 << m
        single_frames = [
            rng.permutation(n).astype(np.int64) for _ in range(frames)
        ]
        batch_frames = np.stack(
            [
                rng.permutation(n).astype(np.int64)
                for _ in range(batch_window)
            ]
        )
        for workload, name in missing:
            engine = compiled_backend(name, m)
            if workload == "single":
                cost = _time_single(engine, single_frames, repeats)
            else:
                cost = _time_batch(engine, batch_frames, repeats)
            _CACHE[(m, workload, name)] = cost
    return {
        workload: {name: _CACHE[(m, workload, name)] for name in names}
        for workload in workloads
    }


def select_backend(
    m: int,
    workload: str = "batch",
    backends: Optional[Sequence[str]] = None,
    **calibrate_kwargs,
) -> ArenaDecision:
    """The measured-fastest backend for ``(m, workload)``.

    Runs (or reuses) the calibration for just that cell and returns an
    :class:`ArenaDecision` carrying the winner and the full cost table,
    so callers can report *why* the choice fell the way it did.
    """
    table = calibrate(
        m, workloads=(workload,), backends=backends, **calibrate_kwargs
    )[workload]
    winner = min(table, key=table.__getitem__)
    return ArenaDecision(m=m, workload=workload, backend=winner, table=table)


def clear_arena_cache() -> None:
    """Drop every measured cell (tests and benchmark re-runs)."""
    _CACHE.clear()
