"""Pluggable compiled routing backends with measured auto-select.

One :class:`~repro.backends.base.RoutingBackend` protocol over the BNB
dataplane and the rival fabrics (KR-Benes, multiway sorter), a registry
of compiled-once-per-``m`` engines, and the arena
(:mod:`repro.backends.arena`) that benchmarks every registered backend
per ``(m, workload class)`` — with crossbar differential verification —
so the gateway's ``engine="auto"`` dispatches each plane to the
measured winner.  See ``docs/backends.md``.
"""

from .base import (
    BackendSpec,
    RoutingBackend,
    backend_names,
    backend_specs,
    compile_cache_info,
    compiled_backend,
    get_backend_spec,
    prewarm,
    register_backend,
)

# Importing the implementation modules registers the built-in backends.
from . import bnb as _bnb  # noqa: F401  (registration side effect)
from . import krbenes as _krbenes  # noqa: F401
from . import msorter as _msorter  # noqa: F401

from .arena import (
    ArenaDecision,
    BackendDisagreementError,
    WORKLOADS,
    calibrate,
    clear_arena_cache,
    select_backend,
    verify_backend,
)

__all__ = [
    "ArenaDecision",
    "BackendDisagreementError",
    "BackendSpec",
    "RoutingBackend",
    "WORKLOADS",
    "backend_names",
    "backend_specs",
    "calibrate",
    "clear_arena_cache",
    "compile_cache_info",
    "compiled_backend",
    "get_backend_spec",
    "prewarm",
    "register_backend",
    "select_backend",
    "verify_backend",
]
