"""Multiway-sorter backend: wide leaf sorters + odd-even merge tree.

The sorting-network rival, in the spirit of the multiway n-sorter
construction (arxiv 1407.0961): instead of building the whole network
from 2-sorters like :class:`~repro.baselines.batcher.BatcherNetwork`,
the input is first cut into blocks of ``2**LEAF_EXP`` lines, each block
sorted by one *n-sorter* (here: a single vectorized ``argsort`` over
all blocks at once — the software analogue of a wide sorter element),
and the sorted runs are then combined by Batcher's odd-even **merge**
tree only.  Replacing the bottom ``LEAF_EXP * (LEAF_EXP + 1) / 2``
comparator stages with one leaf pass is exactly where the multiway
construction saves depth over a pure 2-sorter network.

The merge tree reuses the repository's comparator generator
(:func:`repro.baselines.batcher._odd_even_merge`) and ASAP levelizer
(:meth:`~repro.baselines.batcher.BatcherNetwork._levelize`), compiled
once per ``m`` into frozen per-stage index-pair arrays; a comparator
stage is then two fancy-indexed ``where`` passes — and the same arrays
route a whole ``(batch, n)`` stack by indexing the line axis, the
frame-axis vectorization the batch dataplane introduced.

Sorting on the destination address delivers address ``a`` to output
``a`` (the paper's own sorter-as-router argument), so ``sources`` is
simply the argsorted line index carried through every exchange.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..baselines.batcher import BatcherNetwork, _odd_even_merge
from .base import BackendSpec, register_backend

__all__ = ["LEAF_EXP", "MultiwaySorterBackend"]

#: Leaf sorter width exponent: blocks of ``2**LEAF_EXP`` lines are
#: sorted by one vectorized argsort before the merge tree runs.
LEAF_EXP = 3


def _merge_tree_pairs(m: int, leaf_exp: int) -> List[Tuple[int, int]]:
    """All merge-tree comparators above the leaf sorters, in dependency
    order: runs of ``2**leaf_exp`` merge pairwise up to ``2**m``."""
    n = 1 << m
    pairs: List[Tuple[int, int]] = []
    for run_exp in range(leaf_exp, m):
        run = 1 << run_exp
        for lo in range(0, n, 2 * run):
            pairs.extend(_odd_even_merge(lo, lo + 2 * run - 1, 1))
    return pairs


class MultiwaySorterBackend:
    """Argsort leaf sorters feeding a compiled odd-even merge tree."""

    name = "msorter"

    def __init__(self, m: int) -> None:
        self.m = m
        self.n = 1 << m
        self.leaf_exp = min(m, LEAF_EXP)
        self.leaf_width = 1 << self.leaf_exp
        self.leaf_count = self.n >> self.leaf_exp
        # Compile-once: per-stage comparator endpoint arrays.  Stages
        # come from the same ASAP levelization the Batcher baseline
        # uses, so the merge tree's depth accounting matches it.
        stages = BatcherNetwork._levelize(
            _merge_tree_pairs(m, self.leaf_exp)
        )
        compiled = []
        for stage in stages:
            low = np.asarray([i for i, _j in stage], dtype=np.int64)
            high = np.asarray([j for _i, j in stage], dtype=np.int64)
            low.flags.writeable = False
            high.flags.writeable = False
            compiled.append((low, high))
        self.stages = tuple(compiled)
        # Within-frame line base of every leaf block, for source tracking.
        leaf_bases = (
            np.arange(self.leaf_count, dtype=np.int64) * self.leaf_width
        )[:, None]
        leaf_bases.flags.writeable = False
        self.leaf_bases = leaf_bases

    @property
    def stage_count(self) -> int:
        """Merge-tree comparator stages after the single leaf pass."""
        return len(self.stages)

    def _leaf_sort(
        self, keys: np.ndarray, blocks: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sort every leaf block of *keys*; return (keys, sources).

        *keys* arrives shaped ``(blocks, leaf_width)`` with the frame
        axis (if any) folded into *blocks*; sources are within-frame
        line indices.
        """
        order = np.argsort(keys, axis=1, kind="stable")
        sorted_keys = np.take_along_axis(keys, order, axis=1)
        bases = self.leaf_bases
        if blocks != self.leaf_count:
            bases = np.tile(bases, (blocks // self.leaf_count, 1))
        return sorted_keys, order + bases

    def route_frame(self, addresses: np.ndarray) -> np.ndarray:
        keys, sources = self._leaf_sort(
            np.asarray(addresses, dtype=np.int64).reshape(
                self.leaf_count, self.leaf_width
            ),
            self.leaf_count,
        )
        keys = keys.reshape(self.n)
        sources = sources.reshape(self.n)
        for low, high in self.stages:
            a, b = keys[low], keys[high]
            swap = a > b
            keys[low] = np.where(swap, b, a)
            keys[high] = np.where(swap, a, b)
            sa, sb = sources[low], sources[high]
            sources[low] = np.where(swap, sb, sa)
            sources[high] = np.where(swap, sa, sb)
        return sources

    def route_frame_batch(self, addresses: np.ndarray) -> np.ndarray:
        batch = addresses.shape[0]
        keys, sources = self._leaf_sort(
            np.asarray(addresses, dtype=np.int64).reshape(
                batch * self.leaf_count, self.leaf_width
            ),
            batch * self.leaf_count,
        )
        keys = keys.reshape(batch, self.n)
        sources = sources.reshape(batch, self.n)
        for low, high in self.stages:
            a, b = keys[:, low], keys[:, high]
            swap = a > b
            keys[:, low] = np.where(swap, b, a)
            keys[:, high] = np.where(swap, a, b)
            sa, sb = sources[:, low], sources[:, high]
            sources[:, low] = np.where(swap, sb, sa)
            sources[:, high] = np.where(swap, sa, sb)
        return sources

    def __repr__(self) -> str:
        return (
            f"MultiwaySorterBackend(m={self.m}, n={self.n}, "
            f"leaf_width={self.leaf_width}, stages={self.stage_count})"
        )


register_backend(
    BackendSpec(
        name="msorter",
        summary="multiway sorter: argsort leaves + odd-even merge tree",
        factory=MultiwaySorterBackend,
    )
)
