"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``route``    route a (seeded) random permutation through a chosen network
``verify``   run the Theorem-2 verification harness
``tables``   print the paper's Table 1 and Table 2 at a given size
``figures``  print the ASCII renderings of Figs. 1-5
``report``   print the full paper-vs-measured experiments report
``faults``   BIST schedule, fault localization and the resilient service
``serve``    host the async traffic gateway (TCP JSON-lines, or --demo)
``cluster``  run a sharded multi-node gateway cluster with failover
``stats``    scrape a running gateway, or one-shot an in-process snapshot
``replay``   replay a traffic scenario or recorded trace, gate on SLOs

Every command writes plain text to stdout and exits non-zero on
failure, so the CLI is scriptable; ``route``/``verify``/``serve`` take
``--json`` for machine-readable output (all JSON surfaces share the
:func:`repro.obs.snapshot.dump_json` serializer, so numeric formatting
and NaN handling are identical everywhere).  Library failures
(:class:`~repro.exceptions.ReproError`) exit with code 2 and a
one-line ``error:`` message on stderr — never a traceback; Ctrl-C
exits 130 cleanly; anything else escaping is a genuine bug and is
allowed to crash loudly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis.tables import render_table1, render_table2
from .analysis.verification import ROUTERS, verify_router
from .bits import require_power_of_two
from .exceptions import FaultError, ReproError
from .permutations.generators import random_permutation

__all__ = ["main", "build_parser"]


def _backend_choices() -> List[str]:
    """Registered backend names plus ``auto`` — the single source the
    ``route --backend`` / ``serve --engine`` choices derive from, so the
    argparse surface can never drift from the backend registry."""
    from .backends import backend_names

    return backend_names() + ["auto"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BNB self-routing permutation network (Lee & Lu, ICDCS 1991)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    route = sub.add_parser("route", help="route one random permutation")
    route.add_argument("n", type=int, help="network size (power of two)")
    route.add_argument("--seed", type=int, default=0)
    route.add_argument(
        "--network", choices=sorted(ROUTERS), default="bnb"
    )
    route.add_argument(
        "--fast",
        action="store_true",
        help="route on the compiled vectorized numpy path (BNB only)",
    )
    route.add_argument(
        "--backend",
        choices=_backend_choices(),
        default=None,
        help="route through a registered compiled backend instead of "
        "--network ('auto' runs the arena calibration and picks the "
        "measured-fastest; see docs/backends.md)",
    )
    route.add_argument(
        "--json", action="store_true", help="emit a JSON object, not prose"
    )

    verify = sub.add_parser("verify", help="verify permutation delivery")
    verify.add_argument("n", type=int)
    verify.add_argument("--network", choices=sorted(ROUTERS), default="bnb")
    verify.add_argument(
        "--mode", choices=["auto", "exhaustive", "sampled"], default="auto"
    )
    verify.add_argument("--samples", type=int, default=200)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--json", action="store_true", help="emit a JSON object, not prose"
    )

    tables = sub.add_parser("tables", help="print Tables 1 and 2")
    tables.add_argument("n", type=int)
    tables.add_argument("--data-width", type=int, default=0, dest="w")

    figures = sub.add_parser("figures", help="print Figs. 1-5 renderings")
    figures.add_argument("--m", type=int, default=3)

    sub.add_parser("report", help="print the experiments report")

    faults = sub.add_parser(
        "faults",
        help="run the resilient fabric: BIST probes, localization, failover",
    )
    faults.add_argument(
        "n",
        type=int,
        nargs="?",
        default=None,
        help="network size (power of two; omit when using --connect)",
    )
    faults.add_argument(
        "--stuck",
        metavar="I,L,J,BOX,SW",
        default=None,
        help="inject a stuck switch at this coordinate "
        "(main stage, nested, nested stage, box, switch)",
    )
    faults.add_argument(
        "--stuck-value", type=int, choices=(0, 1), default=1
    )
    faults.add_argument("--batches", type=int, default=3)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument(
        "--engine",
        choices=("object", "vector"),
        default="object",
        help="run the resilient service on the reference object fabric "
        "or the compiled vector fabric (ResilientVectorFabric)",
    )
    faults.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="smoke-test a running 'repro serve --resilient' gateway: "
        "inject the fault over the wire, drive traffic, and verify the "
        "plane quarantines while delivery continues",
    )
    faults.add_argument(
        "--plane",
        type=int,
        default=0,
        help="gateway plane to inject into (with --connect)",
    )
    faults.add_argument(
        "--words",
        type=int,
        default=256,
        help="traffic words to drive through the gateway (with --connect)",
    )
    faults.add_argument(
        "--report",
        action="store_true",
        help="print the fault-tolerance markdown report instead",
    )

    serve = sub.add_parser(
        "serve",
        help="host the async traffic gateway over the pipelined fabric",
    )
    serve.add_argument("n", type=int, help="network size (power of two)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    serve.add_argument(
        "--planes", type=int, default=1, help="fabric planes in the pool"
    )
    serve.add_argument(
        "--capacity", type=int, default=32, help="per-destination queue bound"
    )
    serve.add_argument(
        "--resilient",
        action="store_true",
        help="wrap each plane in the fault-tolerant resilient service "
        "(composes with --engine: object or vector fabrics)",
    )
    serve.add_argument(
        "--engine",
        choices=("object", "vector", "batch") + tuple(_backend_choices()),
        default="object",
        help="plane dataplane engine: reference object model, the "
        "compiled vectorized numpy pipeline, the frame-axis batch "
        "plane (routes whole windows of frames per gather; pairs with "
        "the binary wire framing's send_batch), 'auto' to calibrate "
        "the backend arena at boot and serve the measured-fastest "
        "registered backend, or a backend name to pin one",
    )
    serve.add_argument(
        "--pool-workers",
        type=int,
        default=0,
        metavar="W",
        help="shard W vector planes across W worker processes with "
        "shared-memory frame buffers (overrides --planes/--engine)",
    )
    serve.add_argument(
        "--demo",
        type=int,
        metavar="WORDS",
        default=None,
        help="skip the socket: serve WORDS synthetic words in-process, "
        "print the stats and exit",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--json", action="store_true", help="emit stats as JSON (with --demo)"
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help="instrument the gateway: enables the 'metrics' wire op, "
        "GET /metrics scrapes, and frame tracing",
    )
    serve.add_argument(
        "--trace-sample",
        type=int,
        default=16,
        metavar="K",
        help="trace every K-th frame (with --metrics; 1 traces all)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for SECONDS, then print a final snapshot and exit "
        "instead of running until Ctrl-C",
    )
    serve.add_argument(
        "--node-id",
        default=None,
        metavar="ID",
        help="stable identity reported in stats and on exported metrics "
        "(defaults to gw-<pid>; the cluster supervisor sets node-K names)",
    )
    serve.add_argument(
        "--tenants",
        metavar="SPEC",
        default=None,
        help="QoS classes as 'name:weight,...' (e.g. gold:8,bronze:1); "
        "enables the deficit-weighted per-tenant scheduler in the "
        "admission path (see docs/traffic.md)",
    )
    serve.add_argument(
        "--starvation-cycles",
        type=int,
        default=1024,
        metavar="C",
        help="with --tenants: serve a queue head that is older than the "
        "scheduler's weighted pick by more than C cycles first",
    )

    replay = sub.add_parser(
        "replay",
        help="replay a traffic scenario or recorded trace through a "
        "gateway and gate on per-tenant latency SLOs",
    )
    replay.add_argument(
        "n",
        type=int,
        nargs="?",
        default=None,
        help="network size (power of two) for the in-process gateway "
        "(omit when using --connect)",
    )
    replay.add_argument(
        "--scenario",
        default="mixed",
        metavar="NAME",
        help="built-in scenario to synthesize (uniform, hotspot, "
        "multicast, tenants, mixed; see docs/traffic.md)",
    )
    replay.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="replay a recorded trace document instead of synthesizing "
        "--scenario",
    )
    replay.add_argument(
        "--events",
        type=int,
        default=1024,
        help="events to synthesize (ignored with --trace)",
    )
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument(
        "--engine",
        choices=("object", "vector", "batch") + tuple(_backend_choices()),
        default="vector",
        help="plane engine for the in-process gateway",
    )
    replay.add_argument(
        "--planes", type=int, default=1, help="fabric planes in the pool"
    )
    replay.add_argument(
        "--capacity", type=int, default=64,
        help="per-destination queue bound",
    )
    replay.add_argument(
        "--burst",
        type=int,
        default=32,
        help="words per send_batch burst; small bursts interleave the "
        "tenant classes within each queue (see docs/traffic.md)",
    )
    replay.add_argument(
        "--retry",
        type=int,
        default=64,
        metavar="ATTEMPTS",
        help="re-admission rounds per burst under backpressure",
    )
    replay.add_argument(
        "--starvation-cycles",
        type=int,
        default=1024,
        metavar="C",
        help="starvation-rescue age bound for the tenant scheduler",
    )
    replay.add_argument(
        "--save-trace",
        metavar="FILE",
        default=None,
        help="save the replayed trace document for later exact replays",
    )
    replay.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="replay against a running 'repro serve' gateway over the "
        "wire instead of an in-process fabric",
    )
    replay.add_argument(
        "--slo-p50",
        type=int,
        default=None,
        metavar="CYCLES",
        help="fail (exit 1) if any tenant's p50 latency exceeds CYCLES",
    )
    replay.add_argument(
        "--slo-p99",
        type=int,
        default=None,
        metavar="CYCLES",
        help="fail (exit 1) if any tenant's p99 latency exceeds CYCLES",
    )
    replay.add_argument(
        "--require-delivery",
        action="store_true",
        help="fail (exit 1) if any admitted word went undelivered "
        "(the no-tenant-starves gate)",
    )
    replay.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    cluster = sub.add_parser(
        "cluster",
        help="run a sharded multi-node gateway cluster with failover",
    )
    cluster.add_argument(
        "n",
        type=int,
        help="per-node network size (power of two); the cluster serves "
        "a global destination space of nodes*n lines",
    )
    cluster.add_argument(
        "--nodes", type=int, default=3, metavar="K",
        help="gateway nodes in the cluster",
    )
    cluster.add_argument(
        "--engine",
        choices=("object", "vector", "batch"),
        default="batch",
        help="plane engine for every node",
    )
    cluster.add_argument(
        "--capacity", type=int, default=256,
        help="per-destination queue bound on every node",
    )
    cluster.add_argument(
        "--smoke",
        type=int,
        metavar="WORDS",
        default=None,
        help="skip serving: soak WORDS through an in-process cluster, "
        "verify full delivery, print the accounting and exit",
    )
    cluster.add_argument(
        "--kill",
        type=int,
        choices=(0, 1),
        default=0,
        help="with --smoke: kill one node mid-run and require the "
        "cluster to reshard and still deliver every word",
    )
    cluster.add_argument(
        "--burst", type=int, default=4096,
        help="words per send_batch burst (with --smoke)",
    )
    cluster.add_argument(
        "--in-flight", type=int, default=4, metavar="W",
        help="concurrent burst senders (with --smoke)",
    )
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serving mode: run the cluster for SECONDS then exit "
        "instead of running until Ctrl-C",
    )
    cluster.add_argument(
        "--json", action="store_true",
        help="emit the smoke accounting (or cluster state) as JSON",
    )

    stats = sub.add_parser(
        "stats",
        help="telemetry snapshot: scrape a running gateway or run one-shot",
    )
    stats.add_argument(
        "n",
        type=int,
        nargs="?",
        default=None,
        help="network size for a one-shot in-process snapshot "
        "(omit when using --connect)",
    )
    stats.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="scrape a running 'repro serve --metrics' gateway over TCP",
    )
    stats.add_argument(
        "--words",
        type=int,
        default=256,
        help="synthetic words to drive in one-shot mode",
    )
    stats.add_argument(
        "--engine",
        choices=("object", "vector", "batch") + tuple(_backend_choices()),
        default="object",
        help="plane engine for one-shot mode ('auto' or a registered "
        "backend name serves the arena path; see docs/backends.md)",
    )
    stats.add_argument(
        "--trace-sample", type=int, default=16, metavar="K",
        help="trace every K-th frame in one-shot mode (1 traces all)",
    )
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--format",
        choices=("json", "prometheus"),
        default="json",
        help="json: the combined snapshot; prometheus: the text exposition",
    )
    return parser


def _command_route(args: argparse.Namespace) -> int:
    require_power_of_two(args.n, "network size")
    pi = random_permutation(args.n, rng=args.seed)
    m = args.n.bit_length() - 1
    backend_used = None
    if args.backend is not None:
        # The registered-backend path: --backend overrides --network,
        # and 'auto' asks the arena for the measured-fastest engine.
        if args.fast:
            from .exceptions import InputError

            raise InputError(
                "--fast is shorthand for the compiled BNB path; it does "
                "not compose with --backend (use --backend bnb)"
            )
        import numpy as np

        from .backends import compiled_backend, select_backend

        backend_used = args.backend
        if backend_used == "auto":
            backend_used = select_backend(m, workload="single").backend
        engine = compiled_backend(backend_used, m)
        request = np.array(pi.to_list(), dtype=np.int64)
        sources = engine.route_frame(request)
        arrived = request[sources].tolist()
    elif args.fast:
        # The compiled vectorized path; same verification (route_fast
        # raises on bad inputs and misdelivery exactly like route) and
        # the same exit codes as the object path.
        if args.network != "bnb":
            from .exceptions import InputError

            raise InputError(
                f"--fast is the vectorized BNB path; it cannot route "
                f"the {args.network!r} network"
            )
        import numpy as np

        from .core import BNBNetwork

        arrived = BNBNetwork(m).route_fast(
            np.array(pi.to_list(), dtype=np.int64)
        ).tolist()
    else:
        route = ROUTERS[args.network](m)
        arrived = [word.address for word in route(pi.to_list())]
    delivered = arrived == list(range(args.n))
    if args.json:
        from .obs.snapshot import dump_json

        print(
            dump_json(
                {
                    "network": args.network,
                    "engine": (
                        "backend"
                        if backend_used is not None
                        else ("fast" if args.fast else "object")
                    ),
                    "backend": backend_used,
                    "n": args.n,
                    "seed": args.seed,
                    "request": pi.to_list(),
                    "arrived": arrived,
                    "delivered": delivered,
                },
                indent=None,
            )
        )
    else:
        if backend_used is not None:
            label = f"backend {backend_used}"
            if args.backend == "auto":
                label += " (arena winner)"
        else:
            label = f"{args.network}{' [fast]' if args.fast else ''}"
        print(f"network : {label} (N={args.n})")
        print(f"request : {pi.to_list()}")
        print(f"arrived : {arrived}")
        print(f"delivered: {delivered}")
    return 0 if delivered else 1


def _command_verify(args: argparse.Namespace) -> int:
    report = verify_router(
        args.network, args.n, mode=args.mode, samples=args.samples, seed=args.seed
    )
    if args.json:
        print(
            json.dumps(
                {
                    "router": report.router,
                    "n": report.n,
                    "mode": report.mode,
                    "attempted": report.attempted,
                    "delivered": report.delivered,
                    "all_delivered": report.all_delivered,
                    "failures": [
                        failure.to_list() for failure in report.failures
                    ],
                }
            )
        )
    else:
        print(report.summary())
    return 0 if report.all_delivered else 1


def _command_tables(args: argparse.Namespace) -> int:
    print(render_table1(args.n, w=args.w))
    print()
    print(render_table2(args.n))
    return 0


def _command_figures(args: argparse.Namespace) -> int:
    from .viz import (
        render_bnb_profile,
        render_function_node,
        render_gbn,
        render_splitter,
    )

    print(render_gbn(args.m))
    print()
    print(render_bnb_profile(args.m))
    print()
    print(render_splitter(min(args.m, 3)))
    print()
    print(render_function_node())
    return 0


def _command_report(_args: argparse.Namespace) -> int:
    from .viz import experiments_report

    print(experiments_report())
    return 0


def _parse_coordinate(text: str):
    from .faults import SwitchCoordinate

    parts = text.split(",")
    if len(parts) != 5:
        raise FaultError(
            f"--stuck takes five comma-separated integers "
            f"(main stage, nested, nested stage, box, switch), got {text!r}"
        )
    try:
        fields = [int(part) for part in parts]
    except ValueError:
        raise FaultError(f"--stuck fields must be integers, got {text!r}")
    return SwitchCoordinate(*fields)


def _faults_connect(args: argparse.Namespace) -> int:
    """Live smoke against a running ``repro serve --resilient`` gateway.

    Injects one stuck control bit over the wire, drives traffic at the
    gateway, and succeeds (exit 0) only when the faulty plane walks the
    whole lifecycle — at least one non-clean delivery (``degraded`` or
    ``failover``) followed by ``service_state == "quarantined"`` — with
    every driven word still delivered.  Speaks the binary framing
    through :class:`repro.client.GatewayClient`.
    """
    import asyncio

    from .client import GatewayClient
    from .exceptions import GatewayRequestError, InputError

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        raise InputError(f"--connect takes HOST:PORT, got {args.connect!r}")

    async def drill() -> int:
        try:
            client = await GatewayClient(host, int(port_text)).connect()
        except (OSError, ConnectionError) as error:
            raise InputError(
                f"cannot reach {args.connect}: {error}"
            ) from error
        try:
            try:
                stats = await client.stats()
            except GatewayRequestError as error:
                print(
                    f"error: stats failed: {error.response}", file=sys.stderr
                )
                return 2
            n = stats["stats"]["n"]
            m = n.bit_length() - 1
            planes = stats["stats"]["planes"]
            if not (0 <= args.plane < len(planes)):
                raise InputError(
                    f"--plane {args.plane} out of range; the gateway has "
                    f"{len(planes)} plane(s)"
                )
            if "service_state" not in planes[args.plane]:
                print(
                    f"error: plane {args.plane} is not resilient "
                    "(start the server with 'repro serve N --resilient')",
                    file=sys.stderr,
                )
                return 2
            if args.stuck is not None:
                coordinate = _parse_coordinate(args.stuck)
            else:
                from .faults import SwitchCoordinate

                coordinate = SwitchCoordinate(m, 0, 0, 0, 0)
            try:
                injected = await client.inject(
                    args.plane,
                    [
                        coordinate.main_stage,
                        coordinate.nested,
                        coordinate.nested_stage,
                        coordinate.box,
                        coordinate.switch,
                    ],
                    args.stuck_value,
                )
            except GatewayRequestError as error:
                print(
                    f"error: injection failed: {error.response}",
                    file=sys.stderr,
                )
                return 2
            print(
                f"injected : stuck-at-{args.stuck_value} at ({coordinate}) "
                f"into plane {args.plane} of {args.connect} "
                f"(engine {injected['plane']['engine']})"
            )
            modes: dict = {}
            delivered = 0
            for index in range(args.words):
                try:
                    receipt = await client.send(
                        index % n, payload=index, server_retry=True
                    )
                except GatewayRequestError as error:
                    print(
                        f"error: send {index} failed: {error.response}",
                        file=sys.stderr,
                    )
                    return 1
                delivered += 1
                modes[receipt["mode"]] = modes.get(receipt["mode"], 0) + 1
            stats = await client.stats()
            state = stats["stats"]["planes"][args.plane].get("service_state")
            mode_note = ", ".join(
                f"{mode}={count}" for mode, count in sorted(modes.items())
            )
            print(
                f"traffic  : {delivered}/{args.words} delivered ({mode_note})"
            )
            print(f"plane {args.plane}  : service_state={state}")
            degraded = sum(
                count for mode, count in modes.items() if mode != "clean"
            )
            if delivered < args.words:
                return 1
            if degraded == 0:
                print(
                    "error: the injected fault never degraded a delivery; "
                    "drive more --words or pick a --stuck the traffic "
                    "exercises",
                    file=sys.stderr,
                )
                return 1
            if state != "quarantined":
                print(
                    "error: the faulty plane never reached quarantine; "
                    f"it is still {state!r}",
                    file=sys.stderr,
                )
                return 1
            print(
                "verdict  : degraded, quarantined, and still delivering — ok"
            )
            return 0
        finally:
            await client.aclose()

    return asyncio.run(drill())


def _command_faults(args: argparse.Namespace) -> int:
    if args.connect is not None:
        return _faults_connect(args)
    if args.n is None:
        from .exceptions import InputError

        raise InputError(
            "faults needs a network size, or --connect HOST:PORT to "
            "smoke-test a running gateway"
        )
    require_power_of_two(args.n, "network size")
    m = args.n.bit_length() - 1
    if args.report:
        from .viz import fault_tolerance_report

        print(fault_tolerance_report(m))
        return 0

    from .core.pipeline import PipelinedBNBFabric, stuck_control_override
    from .faults import (
        enumerate_switch_coordinates,
        fault_mask_for,
        shared_bist_schedule,
    )
    from .service import HealthMonitor, ResilientFabric, ResilientVectorFabric

    schedule = shared_bist_schedule(m)
    pipeline = None
    fault_mask = None
    coordinate = None
    if args.stuck is not None:
        coordinate = _parse_coordinate(args.stuck)
        if coordinate not in enumerate_switch_coordinates(m):
            raise FaultError(
                f"{coordinate} is not a switch of the N={args.n} BNB network"
            )
        if args.engine == "vector":
            fault_mask = fault_mask_for(m, [(coordinate, args.stuck_value)])
        else:
            pipeline = PipelinedBNBFabric(
                m,
                control_override=stuck_control_override(
                    coordinate.main_stage,
                    coordinate.nested,
                    coordinate.nested_stage,
                    coordinate.box,
                    coordinate.switch,
                    args.stuck_value,
                ),
            )
        print(
            f"injected : stuck-at-{args.stuck_value} at "
            f"({args.stuck}) in the primary plane"
        )
    if args.engine == "vector":
        fabric = ResilientVectorFabric(
            m, fault_mask=fault_mask, schedule=schedule
        )
    else:
        fabric = ResilientFabric(m, pipeline=pipeline, schedule=schedule)
    monitor = HealthMonitor(fabric.registry)
    for index in range(args.batches):
        pi = random_permutation(args.n, rng=args.seed + index)
        result = fabric.submit(pi.to_list(), tag=f"batch-{index}")
        print(
            f"batch {index}  : mode={result.mode} retries={result.retries}"
        )
        if index == 0 and not fabric.registry.is_quarantined:
            fabric.check(tag="scheduled-bist")
    print()
    print(fabric.summary())
    print()
    print("event log:")
    print(monitor.render())
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import random

    require_power_of_two(args.n, "network size")
    m = args.n.bit_length() - 1

    from .server import AsyncGateway, GatewayConfig, GatewayServer

    pool = None
    plane_factory = None
    planes = args.planes
    engine = args.engine
    if args.pool_workers:
        from .server import ProcessPlanePool

        # A multi-process pool shards one vector plane per worker core;
        # the in-process engine flag is moot for the pooled planes.
        pool = ProcessPlanePool(m, workers=args.pool_workers)
        plane_factory = pool.plane_factory
        planes = args.pool_workers
        engine = "object"  # config engine unused under an explicit factory
    tenants = None
    if args.tenants:
        from .traffic import parse_tenant_spec

        tenants = parse_tenant_spec(args.tenants)
    config = GatewayConfig(
        m=m,
        planes=planes,
        queue_capacity=args.capacity,
        resilient=args.resilient,
        engine=engine,
        node_id=args.node_id,
        tenants=tenants,
        starvation_cycles=args.starvation_cycles,
    )

    def _instrument(gateway):
        """Attach telemetry when asked; ``None`` keeps the hot path bare."""
        if not args.metrics:
            return None
        from .obs import GatewayInstrumentation, Registry

        return GatewayInstrumentation(
            gateway,
            registry=Registry(),
            trace_sample_every=args.trace_sample,
        ).attach()

    async def _demo(words: int) -> dict:
        rng = random.Random(args.seed)
        async with AsyncGateway(config, plane_factory=plane_factory) as gateway:
            instrumentation = _instrument(gateway)
            receipts = await asyncio.gather(
                *(
                    gateway.send_with_retry(
                        rng.randrange(args.n), payload=index
                    )
                    for index in range(words)
                )
            )
            assert all(
                receipt.payload == index
                for index, receipt in enumerate(receipts)
            )
            if instrumentation is not None:
                return instrumentation.snapshot()
            # Metrics off: the bare stats dict, exactly as before the
            # observability layer existed.
            return gateway.stats()

    async def _serve() -> None:
        async with AsyncGateway(config, plane_factory=plane_factory) as gateway:
            instrumentation = _instrument(gateway)
            async with GatewayServer(
                gateway,
                host=args.host,
                port=args.port,
                instrumentation=instrumentation,
            ) as server:
                pool_note = (
                    f", {args.pool_workers} worker process(es)"
                    if pool is not None
                    else f", engine {config.engine}"
                )
                metrics_note = ", metrics on" if instrumentation else ""
                stop_note = (
                    f"{args.duration:g}s run"
                    if args.duration is not None
                    else "Ctrl-C stops"
                )
                print(
                    f"serving N={args.n} on {args.host}:{server.port} "
                    f"({planes} plane(s), capacity {args.capacity}"
                    f"{', resilient' if args.resilient else ''}"
                    f"{pool_note}{metrics_note}) — {stop_note}"
                )
                sys.stdout.flush()
                if args.duration is None:
                    await server.serve_forever()
                else:
                    try:
                        await asyncio.wait_for(
                            server.serve_forever(), timeout=args.duration
                        )
                    except asyncio.TimeoutError:
                        pass
                    _print_snapshot(
                        instrumentation.snapshot()
                        if instrumentation is not None
                        else gateway.stats(),
                        as_json=True,
                    )

    def _print_snapshot(snapshot: dict, as_json: bool) -> None:
        from .obs.snapshot import dump_json

        if as_json:
            print(dump_json(snapshot))
            return
        # With --metrics the snapshot nests the plain stats under
        # "gateway"; without, it *is* the plain stats.
        stats = snapshot.get("gateway", snapshot)
        queues = stats["queues"]
        latency = stats["latency_cycles"]
        print(f"gateway  : N={stats['n']} planes={len(stats['planes'])}")
        print(
            f"traffic  : {queues['offered']} offered, "
            f"{queues['accepted']} accepted, "
            f"{queues['rejected']} rejected"
        )
        print(
            f"frames   : {stats['delivered_frames']} delivered, "
            f"mean fill {stats['scheduler']['mean_fill']:.3f}"
        )
        print(
            f"latency  : p50={latency['p50']} p99={latency['p99']} "
            f"cycles (over {latency['samples']} words)"
        )
        if "traces" in snapshot:
            traces = snapshot["traces"]
            print(
                f"traces   : {traces['completed_frames']} frames traced "
                f"(1 in {traces['sample_every']}), "
                f"{len(traces['records'])} retained"
            )

    try:
        if args.demo is not None:
            snapshot = asyncio.run(_demo(args.demo))
            _print_snapshot(snapshot, as_json=args.json)
            return 0
        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            print("\ninterrupted — gateway drained and closed", file=sys.stderr)
            return 130
        return 0
    finally:
        if pool is not None:
            pool.close()


def _command_cluster(args: argparse.Namespace) -> int:
    """``repro cluster``: a sharded multi-node gateway deployment.

    Two modes: ``--smoke WORDS`` runs the in-process soak harness
    (optionally killing one node mid-run with ``--kill 1``) and exits
    non-zero unless every word was delivered with zero misdeliveries;
    without it, the command spawns ``--nodes`` real ``repro serve``
    processes, pushes the shard map, and runs the health loop until
    Ctrl-C or ``--duration``.
    """
    import asyncio

    from .exceptions import InputError

    require_power_of_two(args.n, "per-node network size")
    m = args.n.bit_length() - 1
    if args.nodes < 2:
        raise InputError(
            f"a cluster needs at least 2 nodes, got {args.nodes}"
        )

    if args.smoke is not None:
        from .cluster import run_soak
        from .cluster.soak import render_report

        report = asyncio.run(
            run_soak(
                nodes=args.nodes,
                m=m,
                words=args.smoke,
                kill=bool(args.kill),
                burst=args.burst,
                in_flight=args.in_flight,
                engine=args.engine,
                queue_capacity=args.capacity,
                seed=args.seed,
            )
        )
        if args.json:
            from .obs.snapshot import dump_json

            print(dump_json(report))
        else:
            print("\n".join(render_report(report)))
        return 0

    from .cluster import (
        ClusterRouter,
        NodeSpec,
        NodeSupervisor,
        SubprocessNode,
    )
    from .obs.snapshot import dump_json

    specs = [
        NodeSpec(
            node_id=f"node-{index}",
            m=m,
            engine=args.engine,
            queue_capacity=args.capacity,
        )
        for index in range(args.nodes)
    ]
    supervisor = NodeSupervisor(
        [SubprocessNode(spec) for spec in specs]
    )
    router = ClusterRouter(supervisor)

    async def _run() -> None:
        async with router:
            assert router.map is not None
            for node_id, (host, port) in sorted(
                supervisor.addresses.items()
            ):
                print(f"node {node_id}: {host}:{port}")
            stop_note = (
                f"{args.duration:g}s run"
                if args.duration is not None
                else "Ctrl-C stops"
            )
            print(
                f"cluster serving global N={router.map.n_global} "
                f"({args.nodes} node(s) x N={args.n}, engine "
                f"{args.engine}, map v{router.map.version}) — {stop_note}"
            )
            sys.stdout.flush()
            if args.duration is None:
                while True:
                    await asyncio.sleep(3600)
            await asyncio.sleep(args.duration)
            if args.json:
                print(dump_json(router.describe()))

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\ninterrupted — cluster stopped", file=sys.stderr)
        return 130
    return 0


def _stats_connect(args: argparse.Namespace) -> int:
    """Scrape a running ``repro serve --metrics`` gateway over TCP.

    One :class:`repro.client.GatewayClient` ``metrics`` request over
    the binary framing; ``--format prometheus`` passes the exposition
    text through verbatim.
    """
    import asyncio

    from .client import GatewayClient
    from .exceptions import GatewayRequestError, InputError
    from .obs.snapshot import dump_json

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        raise InputError(
            f"--connect takes HOST:PORT, got {args.connect!r}"
        )

    async def scrape() -> int:
        try:
            client = await GatewayClient(host, int(port_text)).connect()
        except (OSError, ConnectionError) as error:
            raise InputError(
                f"cannot scrape {args.connect}: {error}"
            ) from error
        try:
            response = await client.metrics(format=args.format)
        except GatewayRequestError as error:
            detail = error.response.get("detail", "")
            hint = (
                " (start the server with 'repro serve N --metrics')"
                if error.slug == "metrics-disabled"
                else ""
            )
            print(f"error: {error.slug}: {detail}{hint}", file=sys.stderr)
            return 2
        finally:
            await client.aclose()
        if args.format == "prometheus":
            sys.stdout.write(response["body"])
        else:
            print(dump_json(response["metrics"]))
        return 0

    return asyncio.run(scrape())


def _command_stats(args: argparse.Namespace) -> int:
    """``repro stats``: scrape a live gateway, or run a one-shot snapshot."""
    if args.connect is not None:
        return _stats_connect(args)
    from .exceptions import InputError

    if args.n is None:
        raise InputError(
            "stats needs a network size for one-shot mode, "
            "or --connect HOST:PORT to scrape a running gateway"
        )
    import asyncio
    import random

    require_power_of_two(args.n, "network size")
    m = args.n.bit_length() - 1

    from .obs import GatewayInstrumentation, Registry
    from .obs.snapshot import dump_json
    from .server import AsyncGateway, GatewayConfig

    config = GatewayConfig(m=m, engine=args.engine)

    async def _one_shot() -> dict:
        rng = random.Random(args.seed)
        async with AsyncGateway(config) as gateway:
            instrumentation = GatewayInstrumentation(
                gateway,
                registry=Registry(),
                trace_sample_every=args.trace_sample,
            ).attach()
            await asyncio.gather(
                *(
                    gateway.send_with_retry(
                        rng.randrange(args.n), payload=index
                    )
                    for index in range(args.words)
                )
            )
            if args.format == "prometheus":
                return {"body": instrumentation.render_prometheus()}
            return instrumentation.snapshot()

    result = asyncio.run(_one_shot())
    if args.format == "prometheus":
        sys.stdout.write(result["body"])
    else:
        print(dump_json(result))
    return 0


def _print_replay_report(report, violations: List[str]) -> None:
    """Human-readable ``repro replay`` summary (violations to stderr)."""
    print(
        f"scenario : {report.scenario} "
        f"(N={report.n}, {report.events} events)"
    )
    print(
        f"words    : {report.words_offered} offered, "
        f"{report.words_delivered} delivered, "
        f"{report.words_rejected} rejected"
    )
    if report.multicast_requests:
        print(
            f"multicast: {report.multicast_requests} requests -> "
            f"{report.multicast_copies} copies in "
            f"{report.multicast_rounds} round(s), "
            f"{report.multicast_delivered} delivered"
        )
    if report.cycles is not None:
        load_note = (
            f", offered load {report.offered_load:.2f}"
            if report.offered_load is not None
            else ""
        )
        print(
            f"fabric   : {report.cycles} cycles{load_note}, "
            f"{report.starvation_rescues} starvation rescue(s)"
        )
    for tenant, row in sorted(report.per_tenant.items()):
        latency = row.to_document()["latency_cycles"]
        print(
            f"tenant   : {tenant} (weight {row.weight}) — "
            f"{row.offered} offered, {row.delivered} delivered, "
            f"p50={latency['p50']} p99={latency['p99']} cycles"
        )
    for violation in violations:
        print(f"SLO violation: {violation}", file=sys.stderr)


def _command_replay(args: argparse.Namespace) -> int:
    """``repro replay``: drive a gateway with a scenario or trace.

    Exit code 0 when every SLO gate passes, 1 on any violation — so a
    replay line drops straight into CI next to the benchmark gates.
    """
    import asyncio

    from .exceptions import InputError
    from .obs.snapshot import dump_json
    from .traffic import SCENARIOS, load_trace, replay_trace, synthesize

    trace = load_trace(args.trace) if args.trace is not None else None
    if trace is None and args.scenario not in SCENARIOS:
        raise InputError(
            f"unknown scenario {args.scenario!r}; choose one of "
            f"{sorted(SCENARIOS)} or pass --trace FILE"
        )

    async def _run(target, n: int):
        nonlocal trace
        if trace is None:
            trace = synthesize(
                SCENARIOS[args.scenario], n, args.events, args.seed
            )
        elif trace.n != n:
            raise InputError(
                f"trace was recorded for N={trace.n} but the gateway "
                f"serves N={n}"
            )
        if args.save_trace:
            trace.save(args.save_trace)
        return await replay_trace(
            target, trace, burst=args.burst, retry_attempts=args.retry
        )

    if args.connect is not None:
        from .client import GatewayClient

        host, _, port_text = args.connect.rpartition(":")
        if not host or not port_text.isdigit():
            raise InputError(
                f"--connect takes HOST:PORT, got {args.connect!r}"
            )

        async def _connected():
            try:
                client = await GatewayClient(host, int(port_text)).connect()
            except (OSError, ConnectionError) as error:
                raise InputError(
                    f"cannot reach {args.connect}: {error}"
                ) from error
            try:
                return await _run(client, client.n)
            finally:
                await client.aclose()

        report = asyncio.run(_connected())
    else:
        n = args.n if args.n is not None else (trace.n if trace else None)
        if n is None:
            raise InputError(
                "replay needs a network size (or a --trace, which "
                "records one), or --connect HOST:PORT for a running "
                "gateway"
            )
        require_power_of_two(n, "network size")
        m = n.bit_length() - 1

        from .server import AsyncGateway, GatewayConfig

        weights = (
            dict(trace.tenants)
            if trace is not None
            else SCENARIOS[args.scenario].tenant_weights
        )
        if len(weights) == 1 and all(w == 1 for w in weights.values()):
            weights = None  # one unweighted class: keep the bare hot path
        config = GatewayConfig(
            m=m,
            planes=args.planes,
            queue_capacity=args.capacity,
            engine=args.engine,
            tenants=weights,
            starvation_cycles=args.starvation_cycles,
        )

        async def _in_process():
            async with AsyncGateway(config) as gateway:
                return await _run(gateway, n)

        report = asyncio.run(_in_process())

    violations = report.check_slos(
        args.slo_p50, args.slo_p99, require_delivery=args.require_delivery
    )
    if args.json:
        document = report.to_document()
        document["slo_violations"] = violations
        print(dump_json(document))
        for violation in violations:
            print(f"SLO violation: {violation}", file=sys.stderr)
    else:
        _print_replay_report(report, violations)
    return 1 if violations else 0


_HANDLERS = {
    "route": _command_route,
    "verify": _command_verify,
    "tables": _command_tables,
    "figures": _command_figures,
    "report": _command_report,
    "faults": _command_faults,
    "serve": _command_serve,
    "cluster": _command_cluster,
    "stats": _command_stats,
    "replay": _command_replay,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except KeyboardInterrupt:
        # POSIX convention: 128 + SIGINT.  A clean line, never a traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except ReproError as error:  # one-line message, never a traceback
        print(f"error: {error}", file=sys.stderr)
        return 2
