"""Named permutation families from the interconnection-network literature.

These are the structured communication patterns that motivated
permutation networks in the first place (Lawrie 1975; Feng 1981): array
access patterns such as matrix transpose, FFT butterflies, perfect
shuffles and bit reversals.  Every family is expressed on ``N = 2**m``
points and returned as a :class:`~repro.permutations.permutation.Permutation`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..bits import bit_reverse, require_power_of_two, rotate_left, rotate_right
from .permutation import Permutation

__all__ = [
    "identity",
    "reversal",
    "bit_reversal",
    "perfect_shuffle",
    "inverse_shuffle",
    "exchange",
    "butterfly",
    "bpc",
    "transposition",
    "cyclic_shift",
    "matrix_transpose",
    "vector_reversal_family",
    "FAMILY_BUILDERS",
    "family",
]


def identity(m: int) -> Permutation:
    """The identity on ``2**m`` points."""
    return Permutation.identity(1 << m)


def reversal(m: int) -> Permutation:
    """``j -> N-1-j``: full vector reversal (complements every bit)."""
    n = 1 << m
    return Permutation(n - 1 - j for j in range(n))


def bit_reversal(m: int) -> Permutation:
    """``j -> reverse of j's m-bit representation`` (the FFT permutation)."""
    n = 1 << m
    return Permutation(bit_reverse(j, m) for j in range(n))


def perfect_shuffle(m: int) -> Permutation:
    """``j -> rotate-left(j)``: the perfect shuffle of a deck of ``2**m`` cards."""
    n = 1 << m
    return Permutation(rotate_left(j, m) for j in range(n))


def inverse_shuffle(m: int) -> Permutation:
    """``j -> rotate-right(j)``: the inverse perfect shuffle (unshuffle)."""
    n = 1 << m
    return Permutation(rotate_right(j, m) for j in range(n))


def exchange(m: int) -> Permutation:
    """``j -> j XOR 1``: the exchange permutation of the shuffle-exchange net."""
    n = 1 << m
    return Permutation(j ^ 1 for j in range(n))


def butterfly(m: int, k: int | None = None) -> Permutation:
    """Swap bit ``k`` with bit 0 of every index (default: the MSB).

    ``butterfly(m, k)`` is the ``k``-th butterfly used by FFT data flow
    and by indirect-binary-cube networks.
    """
    if k is None:
        k = m - 1
    n = 1 << m
    from ..bits import butterfly_index

    return Permutation(butterfly_index(j, k, m) for j in range(n))


def bpc(m: int, sigma: Sequence[int], complement: int = 0) -> Permutation:
    """A bit-permute-complement permutation.

    Destination bit ``k`` equals source bit ``sigma[k]`` XOR bit ``k``
    of *complement*.  ``sigma`` must be a permutation of
    ``0 .. m-1`` (LSB-first positions).
    """
    if sorted(sigma) != list(range(m)):
        raise ValueError(f"sigma must be a permutation of 0..{m - 1}, got {sigma!r}")
    if not 0 <= complement < (1 << m):
        raise ValueError(f"complement {complement} does not fit in {m} bits")
    n = 1 << m
    mapping: List[int] = []
    for j in range(n):
        dest = 0
        for k in range(m):
            source_bit = (j >> sigma[k]) & 1
            dest |= (source_bit ^ ((complement >> k) & 1)) << k
        mapping.append(dest)
    return Permutation(mapping)


def transposition(m: int, a: int, b: int) -> Permutation:
    """Swap points *a* and *b*, fixing everything else."""
    n = 1 << m
    mapping = list(range(n))
    mapping[a], mapping[b] = mapping[b], mapping[a]
    return Permutation(mapping)


def cyclic_shift(m: int, amount: int = 1) -> Permutation:
    """``j -> (j + amount) mod N``: uniform shift (nearest-neighbour traffic)."""
    n = 1 << m
    return Permutation((j + amount) % n for j in range(n))


def matrix_transpose(m: int) -> Permutation:
    """Transpose of a ``2**(m/2) x 2**(m/2)`` matrix stored row-major.

    Requires even *m*.  As a BPC permutation this swaps the high and low
    halves of the index bits; it is the canonical "hard" pattern for
    blocking networks.
    """
    if m % 2:
        raise ValueError(f"matrix transpose needs an even number of bits, got {m}")
    half = m // 2
    sigma = [(k + half) % m for k in range(m)]
    return bpc(m, sigma)


def vector_reversal_family(m: int) -> List[Permutation]:
    """The sub-block reversals ``j -> j XOR (2**k - 1)`` for ``k = 1..m``.

    Lawrie's access patterns include these; they are all BPC with the
    identity bit permutation and a low-ones complement mask.
    """
    return [bpc(m, list(range(m)), (1 << k) - 1) for k in range(1, m + 1)]


FAMILY_BUILDERS: Dict[str, Callable[[int], Permutation]] = {
    "identity": identity,
    "reversal": reversal,
    "bit_reversal": bit_reversal,
    "perfect_shuffle": perfect_shuffle,
    "inverse_shuffle": inverse_shuffle,
    "exchange": exchange,
    "butterfly": butterfly,
    "matrix_transpose": matrix_transpose,
    "cyclic_shift": cyclic_shift,
}


def family(name: str, m: int) -> Permutation:
    """Build the named family on ``2**m`` points.

    ``matrix_transpose`` requires even *m*; everything else accepts any
    positive *m*.
    """
    try:
        builder = FAMILY_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown family {name!r}; choose one of {sorted(FAMILY_BUILDERS)}"
        ) from None
    return builder(m)
