"""Permutation substrate: the workload objects every network routes.

A permutation network's job is to realize an arbitrary permutation of
its inputs; this package provides the :class:`~repro.permutations.permutation.Permutation`
value type, random and structured generators used as benchmark
workloads, the named families from the interconnection-network
literature (bit-reversal, perfect shuffle, BPC, ...) and predicates that
classify which restricted routers can realize a given permutation.
"""

from .permutation import Permutation
from .generators import (
    PermutationSampler,
    TrafficSampler,
    random_permutation,
    random_derangement,
    random_involution,
    random_bpc,
    all_permutations,
    sampled_permutations,
    zipf_weights,
    zipf_destinations,
    hotspot_destinations,
    partial_fill_destinations,
)
from .families import (
    identity,
    reversal,
    bit_reversal,
    perfect_shuffle,
    inverse_shuffle,
    exchange,
    butterfly,
    bpc,
    transposition,
    cyclic_shift,
    matrix_transpose,
    vector_reversal_family,
    FAMILY_BUILDERS,
    family,
)
from .properties import (
    is_identity,
    is_involution,
    is_derangement,
    is_bpc,
    infer_bpc,
    cycle_structure,
    fixed_points,
    omega_passable,
    baseline_passable,
)

__all__ = [
    "Permutation",
    "PermutationSampler",
    "TrafficSampler",
    "zipf_weights",
    "zipf_destinations",
    "hotspot_destinations",
    "partial_fill_destinations",
    "random_permutation",
    "random_derangement",
    "random_involution",
    "random_bpc",
    "all_permutations",
    "sampled_permutations",
    "identity",
    "reversal",
    "bit_reversal",
    "perfect_shuffle",
    "inverse_shuffle",
    "exchange",
    "butterfly",
    "bpc",
    "transposition",
    "cyclic_shift",
    "matrix_transpose",
    "vector_reversal_family",
    "FAMILY_BUILDERS",
    "family",
    "is_identity",
    "is_involution",
    "is_derangement",
    "is_bpc",
    "infer_bpc",
    "cycle_structure",
    "fixed_points",
    "omega_passable",
    "baseline_passable",
]
