"""Predicates and classifiers over permutations.

Besides generic structure queries (cycle structure, involution, ...)
this module answers the two questions that motivate the paper:

* :func:`is_bpc` / :func:`infer_bpc` — is the permutation in the
  bit-permute-complement class that restricted self-routing networks
  (Nassimi & Sahni) can realize?
* :func:`omega_passable` / :func:`baseline_passable` — can a single
  ``log N``-stage destination-tag network realize it without conflict?
  Almost all permutations fail these, which is exactly why the BNB
  network spends ``O(log^3 N)`` hardware to route *all* of them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bits import ilog2, is_power_of_two, require_power_of_two
from .permutation import Permutation

__all__ = [
    "is_identity",
    "is_involution",
    "is_derangement",
    "is_bpc",
    "infer_bpc",
    "cycle_structure",
    "fixed_points",
    "omega_passable",
    "baseline_passable",
]


def is_identity(pi: Permutation) -> bool:
    """``True`` when every point is fixed."""
    return all(pi(j) == j for j in range(len(pi)))


def is_involution(pi: Permutation) -> bool:
    """``True`` when applying the permutation twice fixes every point."""
    return all(pi(pi(j)) == j for j in range(len(pi)))


def is_derangement(pi: Permutation) -> bool:
    """``True`` when no point is fixed."""
    return all(pi(j) != j for j in range(len(pi)))


def fixed_points(pi: Permutation) -> List[int]:
    """Return the sorted list of fixed points."""
    return [j for j in range(len(pi)) if pi(j) == j]


def cycle_structure(pi: Permutation) -> Dict[int, int]:
    """Map cycle length to the number of cycles of that length."""
    structure: Dict[int, int] = {}
    for cycle in pi.cycles():
        structure[len(cycle)] = structure.get(len(cycle), 0) + 1
    return structure


def infer_bpc(pi: Permutation) -> Optional[Tuple[List[int], int]]:
    """Recover ``(sigma, complement)`` if *pi* is bit-permute-complement.

    Returns ``None`` when *pi* is not BPC.  The reconstruction uses
    two observations: the image of source 0 is exactly the complement
    mask, and the image of source ``2**p`` XOR the mask must be a
    single destination bit, identifying ``sigma^{-1}(p)``.
    """
    n = len(pi)
    if not is_power_of_two(n):
        return None
    m = ilog2(n)
    complement = pi(0)
    sigma_inverse: List[Optional[int]] = [None] * m
    for p in range(m):
        difference = pi(1 << p) ^ complement
        if not is_power_of_two(difference):
            return None
        position = ilog2(difference)
        if sigma_inverse[p] is not None:
            return None
        sigma_inverse[p] = position
    if sorted(sigma_inverse) != list(range(m)):  # type: ignore[arg-type]
        return None
    sigma: List[int] = [0] * m
    for p, k in enumerate(sigma_inverse):
        sigma[k] = p  # type: ignore[index]
    # Verify against the whole mapping, not just the probe points.
    from .families import bpc as build_bpc

    candidate = build_bpc(m, sigma, complement)
    if candidate != pi:
        return None
    return sigma, complement


def is_bpc(pi: Permutation) -> bool:
    """``True`` when *pi* is a bit-permute-complement permutation."""
    return infer_bpc(pi) is not None


def _destination_tag_conflicts(
    pi: Permutation, stage_positions: str
) -> bool:
    """Simulate destination-tag routing on a log N-stage 2x2 network.

    ``stage_positions`` selects the topology: ``"omega"`` applies a
    perfect shuffle before every switch column; ``"baseline"`` applies
    the baseline network's unshuffle connections *after* each column.
    Returns ``True`` when the permutation passes with no conflicts.
    """
    n = len(pi)
    m = require_power_of_two(n, "permutation size")
    from ..bits import rotate_left, unshuffle_index

    # Each line carries the destination of the packet currently on it.
    lines: List[Optional[int]] = list(pi.mapping)
    for stage in range(m):
        if stage_positions == "omega":
            shuffled: List[Optional[int]] = [None] * n
            for j, dest in enumerate(lines):
                shuffled[rotate_left(j, m)] = dest
            lines = shuffled
        # Switch column: route by destination bit, MSB first.
        bit_index = m - 1 - stage
        switched: List[Optional[int]] = [None] * n
        for t in range(0, n, 2):
            a, b = lines[t], lines[t + 1]
            want_a = (a >> bit_index) & 1  # type: ignore[operator]
            want_b = (b >> bit_index) & 1  # type: ignore[operator]
            if want_a == want_b:
                return False  # both packets need the same output port
            switched[t + want_a] = a
            switched[t + want_b] = b
        lines = switched
        if stage_positions == "baseline" and stage < m - 1:
            # 2**(m-stage)-unshuffle connection of the baseline network.
            connected: List[Optional[int]] = [None] * n
            for j, dest in enumerate(lines):
                connected[unshuffle_index(j, m - stage, m)] = dest
            lines = connected
    return all(lines[j] == j for j in range(n))


def omega_passable(pi: Permutation) -> bool:
    """``True`` when the omega network self-routes *pi* without conflict."""
    return _destination_tag_conflicts(pi, "omega")


def baseline_passable(pi: Permutation) -> bool:
    """``True`` when the baseline network self-routes *pi* without conflict.

    The plain baseline network (one ``2 x 2`` switch column per stage)
    blocks on most permutations; the BNB network exists precisely to
    remove that restriction by replacing each column with a nested
    sorting network.
    """
    return _destination_tag_conflicts(pi, "baseline")
