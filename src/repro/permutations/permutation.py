"""An immutable permutation value type.

Throughout the library a permutation ``pi`` is understood as a routing
request: the input at line ``j`` wants to reach output ``pi(j)``.
Equivalently, feeding the word list ``[pi(0), pi(1), ...]`` into a
self-routing network must deliver address ``a`` to output line ``a``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from ..exceptions import NotAPermutationError

__all__ = ["Permutation"]


class Permutation:
    """An immutable permutation of ``{0, 1, ..., n-1}``.

    Instances behave like functions (``pi(j)``), sequences
    (``pi[j]``, ``len(pi)``, iteration) and algebraic objects
    (``pi * sigma`` composes, ``pi.inverse()`` inverts).

    Parameters
    ----------
    mapping:
        ``mapping[j]`` is the image of ``j``.  Must contain each of
        ``0 .. n-1`` exactly once.
    """

    __slots__ = ("_mapping", "_hash")

    def __init__(self, mapping: Iterable[int]) -> None:
        values = tuple(int(v) for v in mapping)
        n = len(values)
        seen = [False] * n
        for v in values:
            if not 0 <= v < n or seen[v]:
                raise NotAPermutationError(values)
            seen[v] = True
        self._mapping: Tuple[int, ...] = values
        self._hash = hash(values)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "Permutation":
        """The identity permutation on *n* points."""
        if n < 0:
            raise ValueError(f"size must be non-negative, got {n}")
        return cls(range(n))

    @classmethod
    def from_cycles(cls, n: int, cycles: Sequence[Sequence[int]]) -> "Permutation":
        """Build a permutation on *n* points from disjoint cycles.

        Each cycle ``(a, b, c)`` sends ``a -> b -> c -> a``.  Points not
        mentioned are fixed.
        """
        mapping = list(range(n))
        seen = set()
        for cycle in cycles:
            for point in cycle:
                if not 0 <= point < n:
                    raise ValueError(f"cycle point {point} out of range for n={n}")
                if point in seen:
                    raise ValueError(f"point {point} appears in two cycles")
                seen.add(point)
            for i, point in enumerate(cycle):
                mapping[point] = cycle[(i + 1) % len(cycle)]
        return cls(mapping)

    @classmethod
    def from_word_list(cls, words: Sequence[int]) -> "Permutation":
        """Interpret a list of destination addresses as a permutation."""
        return cls(words)

    # ------------------------------------------------------------------
    # Sequence / mapping protocol
    # ------------------------------------------------------------------
    def __call__(self, j: int) -> int:
        return self._mapping[j]

    def __getitem__(self, j: int) -> int:
        return self._mapping[j]

    def __len__(self) -> int:
        return len(self._mapping)

    def __iter__(self) -> Iterator[int]:
        return iter(self._mapping)

    @property
    def mapping(self) -> Tuple[int, ...]:
        """The underlying tuple; ``mapping[j]`` is the image of ``j``."""
        return self._mapping

    def to_list(self) -> List[int]:
        """A fresh mutable copy of the mapping."""
        return list(self._mapping)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def inverse(self) -> "Permutation":
        """Return ``pi^{-1}`` with ``pi^{-1}(pi(j)) == j``."""
        inv = [0] * len(self._mapping)
        for j, v in enumerate(self._mapping):
            inv[v] = j
        return Permutation(inv)

    def compose(self, other: "Permutation") -> "Permutation":
        """Return ``self after other``: ``(self * other)(j) = self(other(j))``."""
        if len(other) != len(self):
            raise ValueError(
                f"cannot compose permutations of sizes {len(self)} and {len(other)}"
            )
        return Permutation(self._mapping[v] for v in other._mapping)

    def __mul__(self, other: "Permutation") -> "Permutation":
        return self.compose(other)

    def __pow__(self, exponent: int) -> "Permutation":
        n = len(self._mapping)
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = Permutation.identity(n)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def apply(self, items: Sequence) -> List:
        """Route *items* by this permutation: output ``pi(j)`` gets ``items[j]``.

        This is the semantics of a physical permutation network: the
        value entering input ``j`` leaves at output ``pi(j)``.
        """
        if len(items) != len(self._mapping):
            raise ValueError(
                f"expected {len(self._mapping)} items, got {len(items)}"
            )
        result: List = [None] * len(items)
        for j, item in enumerate(items):
            result[self._mapping[j]] = item
        return result

    def permute_positions(self, items: Sequence) -> List:
        """Gather semantics: ``result[j] = items[pi(j)]``."""
        if len(items) != len(self._mapping):
            raise ValueError(
                f"expected {len(self._mapping)} items, got {len(items)}"
            )
        return [items[v] for v in self._mapping]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def cycles(self) -> List[Tuple[int, ...]]:
        """Return the cycle decomposition, each cycle led by its minimum."""
        n = len(self._mapping)
        seen = [False] * n
        out: List[Tuple[int, ...]] = []
        for start in range(n):
            if seen[start]:
                continue
            cycle = [start]
            seen[start] = True
            point = self._mapping[start]
            while point != start:
                cycle.append(point)
                seen[point] = True
                point = self._mapping[point]
            out.append(tuple(cycle))
        return out

    def order(self) -> int:
        """The order of the permutation in the symmetric group."""
        from math import lcm

        result = 1
        for cycle in self.cycles():
            result = lcm(result, len(cycle))
        return result

    def sign(self) -> int:
        """+1 for an even permutation, -1 for an odd one."""
        swaps = sum(len(c) - 1 for c in self.cycles())
        return -1 if swaps % 2 else 1

    def inversions(self) -> int:
        """The number of inverted pairs (a sortedness measure for workloads)."""
        count = 0
        mapping = self._mapping
        for a in range(len(mapping)):
            for b in range(a + 1, len(mapping)):
                if mapping[a] > mapping[b]:
                    count += 1
        return count

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Permutation):
            return self._mapping == other._mapping
        if isinstance(other, (tuple, list)):
            return self._mapping == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if len(self._mapping) <= 16:
            return f"Permutation({list(self._mapping)!r})"
        head = ", ".join(str(v) for v in self._mapping[:8])
        return f"Permutation([{head}, ...], n={len(self._mapping)})"
