"""Random and exhaustive permutation workload generators.

Benchmarks and property tests draw their workloads from here so that
every experiment is reproducible from a seed.  All generators accept an
explicit :class:`random.Random` instance or a seed; none touch the
global random state.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Optional, Sequence, Union

from ..bits import require_power_of_two
from .permutation import Permutation

__all__ = [
    "PermutationSampler",
    "random_permutation",
    "random_derangement",
    "random_involution",
    "random_bpc",
    "all_permutations",
    "sampled_permutations",
]

RandomLike = Union[int, random.Random, None]


def _resolve_rng(rng: RandomLike) -> random.Random:
    """Return a :class:`random.Random`, treating ints as seeds."""
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def random_permutation(n: int, rng: RandomLike = None) -> Permutation:
    """A uniformly random permutation of ``n`` points (Fisher-Yates)."""
    r = _resolve_rng(rng)
    mapping = list(range(n))
    r.shuffle(mapping)
    return Permutation(mapping)


def random_derangement(n: int, rng: RandomLike = None) -> Permutation:
    """A uniformly random derangement (no fixed points).

    Uses rejection sampling; the acceptance probability converges to
    ``1/e`` so the expected number of attempts is small and independent
    of *n*.
    """
    if n == 1:
        raise ValueError("no derangement exists on a single point")
    r = _resolve_rng(rng)
    while True:
        mapping = list(range(n))
        r.shuffle(mapping)
        if all(mapping[j] != j for j in range(n)):
            return Permutation(mapping)


def random_involution(n: int, rng: RandomLike = None) -> Permutation:
    """A random involution (``pi * pi == identity``).

    Built by repeatedly either fixing the smallest unmatched point or
    pairing it with a random other unmatched point.  This is not the
    uniform distribution over involutions but covers the space well,
    which is all the test workloads need.
    """
    r = _resolve_rng(rng)
    mapping = list(range(n))
    unmatched = list(range(n))
    while len(unmatched) >= 2:
        a = unmatched.pop(0)
        if r.random() < 0.5:
            continue  # leave a fixed
        partner_index = r.randrange(len(unmatched))
        b = unmatched.pop(partner_index)
        mapping[a], mapping[b] = b, a
    return Permutation(mapping)


def random_bpc(n: int, rng: RandomLike = None) -> Permutation:
    """A random bit-permute-complement (BPC) permutation of ``n = 2**m`` points.

    A BPC permutation maps the source whose binary representation is
    ``(b_{m-1} .. b_0)`` to the destination whose bit ``k`` equals
    ``b_{sigma(k)} XOR c_k`` for a bit-position permutation ``sigma``
    and complement mask ``c``.  This is exactly the class Nassimi and
    Sahni showed to be self-routable on the Benes network, so the
    generators here feed both the restricted router's positive tests
    and the BNB network's "everything routes" comparisons.
    """
    m = require_power_of_two(n)
    r = _resolve_rng(rng)
    sigma = list(range(m))
    r.shuffle(sigma)
    complement = r.randrange(1 << m) if m else 0
    from .families import bpc

    return bpc(m, sigma, complement)


def all_permutations(n: int) -> Iterator[Permutation]:
    """Yield every permutation of ``n`` points (use only for tiny *n*)."""
    for mapping in itertools.permutations(range(n)):
        yield Permutation(mapping)


def sampled_permutations(
    n: int, count: int, rng: RandomLike = None
) -> Iterator[Permutation]:
    """Yield *count* independent uniform random permutations of ``n`` points."""
    r = _resolve_rng(rng)
    for _ in range(count):
        yield random_permutation(n, r)


class PermutationSampler:
    """A seedable source of benchmark workloads over several distributions.

    Parameters
    ----------
    n:
        Number of network lines; must be a power of two for the
        ``"bpc"`` distribution, unrestricted otherwise.
    seed:
        Seed for the private RNG; identical seeds reproduce identical
        workload streams.
    """

    DISTRIBUTIONS = ("uniform", "derangement", "involution", "bpc", "identity")

    def __init__(self, n: int, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError(f"size must be positive, got {n}")
        self.n = n
        self._rng = random.Random(seed)

    def draw(self, distribution: str = "uniform") -> Permutation:
        """Draw one permutation from the named distribution."""
        if distribution == "uniform":
            return random_permutation(self.n, self._rng)
        if distribution == "derangement":
            return random_derangement(self.n, self._rng)
        if distribution == "involution":
            return random_involution(self.n, self._rng)
        if distribution == "bpc":
            return random_bpc(self.n, self._rng)
        if distribution == "identity":
            return Permutation.identity(self.n)
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"choose one of {self.DISTRIBUTIONS}"
        )

    def batch(self, count: int, distribution: str = "uniform") -> List[Permutation]:
        """Draw *count* permutations from the named distribution."""
        return [self.draw(distribution) for _ in range(count)]

    def word_lists(self, count: int, distribution: str = "uniform") -> List[List[int]]:
        """Draw workloads already in the word-list form networks consume."""
        return [p.to_list() for p in self.batch(count, distribution)]
