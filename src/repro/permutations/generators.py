"""Random and exhaustive permutation workload generators.

Benchmarks and property tests draw their workloads from here so that
every experiment is reproducible from a seed.  All generators accept an
explicit :class:`random.Random` instance or a seed; none touch the
global random state.

Two families live here:

* **Permutation generators** (`random_permutation` & co.,
  :class:`PermutationSampler`) — the paper's native workload: one full
  conflict-free frame per draw.
* **Contended destination generators** (`zipf_destinations`,
  `hotspot_destinations`, `partial_fill_destinations`,
  :class:`TrafficSampler`) — the realistic-traffic workloads of
  ``docs/traffic.md``: destination *multisets* with per-destination
  contention knobs (Zipf skew exponent, hot-output fraction/weight,
  fill factor) that the multipass planner and the gateway's VOQs must
  decompose into conflict-free rounds.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Optional, Sequence, Union

from ..bits import require_power_of_two
from .permutation import Permutation

__all__ = [
    "PermutationSampler",
    "TrafficSampler",
    "random_permutation",
    "random_derangement",
    "random_involution",
    "random_bpc",
    "all_permutations",
    "sampled_permutations",
    "zipf_weights",
    "zipf_destinations",
    "hotspot_destinations",
    "partial_fill_destinations",
]

RandomLike = Union[int, random.Random, None]


def _resolve_rng(rng: RandomLike) -> random.Random:
    """Return a :class:`random.Random`, treating ints as seeds."""
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def random_permutation(n: int, rng: RandomLike = None) -> Permutation:
    """A uniformly random permutation of ``n`` points (Fisher-Yates)."""
    r = _resolve_rng(rng)
    mapping = list(range(n))
    r.shuffle(mapping)
    return Permutation(mapping)


def random_derangement(n: int, rng: RandomLike = None) -> Permutation:
    """A uniformly random derangement (no fixed points).

    Uses rejection sampling; the acceptance probability converges to
    ``1/e`` so the expected number of attempts is small and independent
    of *n*.
    """
    if n == 1:
        raise ValueError("no derangement exists on a single point")
    r = _resolve_rng(rng)
    while True:
        mapping = list(range(n))
        r.shuffle(mapping)
        if all(mapping[j] != j for j in range(n)):
            return Permutation(mapping)


def random_involution(n: int, rng: RandomLike = None) -> Permutation:
    """A random involution (``pi * pi == identity``).

    Built by repeatedly either fixing the smallest unmatched point or
    pairing it with a random other unmatched point.  This is not the
    uniform distribution over involutions but covers the space well,
    which is all the test workloads need.
    """
    r = _resolve_rng(rng)
    mapping = list(range(n))
    unmatched = list(range(n))
    while len(unmatched) >= 2:
        a = unmatched.pop(0)
        if r.random() < 0.5:
            continue  # leave a fixed
        partner_index = r.randrange(len(unmatched))
        b = unmatched.pop(partner_index)
        mapping[a], mapping[b] = b, a
    return Permutation(mapping)


def random_bpc(n: int, rng: RandomLike = None) -> Permutation:
    """A random bit-permute-complement (BPC) permutation of ``n = 2**m`` points.

    A BPC permutation maps the source whose binary representation is
    ``(b_{m-1} .. b_0)`` to the destination whose bit ``k`` equals
    ``b_{sigma(k)} XOR c_k`` for a bit-position permutation ``sigma``
    and complement mask ``c``.  This is exactly the class Nassimi and
    Sahni showed to be self-routable on the Benes network, so the
    generators here feed both the restricted router's positive tests
    and the BNB network's "everything routes" comparisons.
    """
    m = require_power_of_two(n)
    r = _resolve_rng(rng)
    sigma = list(range(m))
    r.shuffle(sigma)
    complement = r.randrange(1 << m) if m else 0
    from .families import bpc

    return bpc(m, sigma, complement)


def all_permutations(n: int) -> Iterator[Permutation]:
    """Yield every permutation of ``n`` points (use only for tiny *n*)."""
    for mapping in itertools.permutations(range(n)):
        yield Permutation(mapping)


def sampled_permutations(
    n: int, count: int, rng: RandomLike = None
) -> Iterator[Permutation]:
    """Yield *count* independent uniform random permutations of ``n`` points."""
    r = _resolve_rng(rng)
    for _ in range(count):
        yield random_permutation(n, r)


def zipf_weights(n: int, alpha: float) -> List[float]:
    """Unnormalized Zipf(*alpha*) weights over *n* ranked destinations.

    ``weights[r] = (r + 1) ** -alpha``: rank 0 is the hottest output.
    ``alpha = 0`` degenerates to uniform; web-style skews sit around
    ``alpha ~ 1``.
    """
    if n < 1:
        raise ValueError(f"need at least one destination, got n={n}")
    if alpha < 0:
        raise ValueError(f"zipf alpha must be >= 0, got {alpha}")
    return [(rank + 1) ** -alpha for rank in range(n)]


def zipf_destinations(
    n: int, count: int, alpha: float = 1.1, rng: RandomLike = None
) -> List[int]:
    """Draw *count* destinations (with repeats) Zipf-skewed over rank.

    Destination ``d``'s popularity rank is its index — deterministic on
    purpose, so a seeded experiment knows output 0 is the hottest.
    Returns a destination *multiset*: feeding it straight to
    ``complete_partial_permutation`` will (rightly) raise on the
    duplicates; the multipass planner or the gateway VOQs are the
    consumers that can absorb contention.
    """
    r = _resolve_rng(rng)
    weights = zipf_weights(n, alpha)
    return r.choices(range(n), weights=weights, k=count)


def hotspot_destinations(
    n: int,
    count: int,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.9,
    rng: RandomLike = None,
) -> List[int]:
    """Draw *count* destinations with a two-tier hotspot distribution.

    A ``hot_weight`` fraction of the draws lands uniformly inside the
    hot set (the first ``max(1, round(hot_fraction * n))`` outputs);
    the rest land uniformly across all *n* outputs.  ``hot_fraction=1``
    or ``hot_weight=0`` degenerate to uniform traffic.
    """
    if not 0 < hot_fraction <= 1:
        raise ValueError(
            f"hot_fraction must be in (0, 1], got {hot_fraction}"
        )
    if not 0 <= hot_weight <= 1:
        raise ValueError(f"hot_weight must be in [0, 1], got {hot_weight}")
    r = _resolve_rng(rng)
    hot = max(1, round(hot_fraction * n))
    return [
        r.randrange(hot) if r.random() < hot_weight else r.randrange(n)
        for _ in range(count)
    ]


def partial_fill_destinations(
    n: int, fill: float, rng: RandomLike = None
) -> List[Optional[int]]:
    """A partial request vector at the given *fill* factor.

    Returns a length-*n* list with ``round(fill * n)`` distinct random
    destinations on random input lines and ``None`` elsewhere — the
    idle-capable input :func:`~repro.core.traffic.route_partial` and
    ``complete_partial_permutation`` consume directly.
    """
    if not 0 <= fill <= 1:
        raise ValueError(f"fill must be in [0, 1], got {fill}")
    r = _resolve_rng(rng)
    active = round(fill * n)
    lines = r.sample(range(n), active)
    dests = r.sample(range(n), active)
    vector: List[Optional[int]] = [None] * n
    for line, dest in zip(lines, dests):
        vector[line] = dest
    return vector


class TrafficSampler:
    """A seedable source of *contended* destination workloads.

    The non-permutation counterpart of :class:`PermutationSampler`:
    draws destination multisets from the named distribution with its
    contention knobs, for the multipass/hotspot benchmarks and the
    traffic scenario suite (``docs/traffic.md``).
    """

    DISTRIBUTIONS = ("uniform", "zipf", "hotspot")

    def __init__(
        self,
        n: int,
        distribution: str = "uniform",
        *,
        zipf_alpha: float = 1.1,
        hot_fraction: float = 0.1,
        hot_weight: float = 0.9,
        rng: RandomLike = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"size must be positive, got {n}")
        if distribution not in self.DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {distribution!r}; "
                f"choose one of {self.DISTRIBUTIONS}"
            )
        self.n = n
        self.distribution = distribution
        self.zipf_alpha = zipf_alpha
        self.hot_fraction = hot_fraction
        self.hot_weight = hot_weight
        self._rng = _resolve_rng(rng)
        # Hoisted cumulative weights make a zipf draw one rng.choices
        # call instead of a per-draw weight rebuild.
        self._zipf_cum: Optional[List[float]] = None
        if distribution == "zipf":
            total = 0.0
            cum = []
            for weight in zipf_weights(n, zipf_alpha):
                total += weight
                cum.append(total)
            self._zipf_cum = cum

    def destinations(self, count: int) -> List[int]:
        """Draw *count* destinations (a multiset — repeats expected)."""
        if self.distribution == "uniform":
            r = self._rng
            n = self.n
            return [r.randrange(n) for _ in range(count)]
        if self.distribution == "zipf":
            return self._rng.choices(
                range(self.n), cum_weights=self._zipf_cum, k=count
            )
        return hotspot_destinations(
            self.n,
            count,
            hot_fraction=self.hot_fraction,
            hot_weight=self.hot_weight,
            rng=self._rng,
        )

    def distinct(self, count: int) -> List[int]:
        """Draw *count* pairwise-distinct destinations, skew-biased.

        Draws from the distribution and keeps first occurrences, so the
        hot outputs are still over-represented in the result; tops up
        uniformly once the skewed draws stop producing new outputs
        (bounded work even for extreme skews).
        """
        if count > self.n:
            raise ValueError(
                f"cannot draw {count} distinct destinations from "
                f"{self.n} outputs"
            )
        seen: List[int] = []
        members = set()
        for _ in range(8):
            if len(seen) >= count:
                break
            for dest in self.destinations(count * 2):
                if dest not in members:
                    members.add(dest)
                    seen.append(dest)
                    if len(seen) >= count:
                        break
        if len(seen) < count:
            cold = [d for d in range(self.n) if d not in members]
            seen.extend(self._rng.sample(cold, count - len(seen)))
        return seen

    def partial(self, fill: float) -> List[Optional[int]]:
        """A partial request vector at *fill* (uniform placements)."""
        return partial_fill_destinations(self.n, fill, self._rng)


class PermutationSampler:
    """A seedable source of benchmark workloads over several distributions.

    Parameters
    ----------
    n:
        Number of network lines; must be a power of two for the
        ``"bpc"`` distribution, unrestricted otherwise.
    seed:
        Seed for the private RNG; identical seeds reproduce identical
        workload streams.
    """

    DISTRIBUTIONS = ("uniform", "derangement", "involution", "bpc", "identity")

    def __init__(self, n: int, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError(f"size must be positive, got {n}")
        self.n = n
        self._rng = random.Random(seed)

    def draw(self, distribution: str = "uniform") -> Permutation:
        """Draw one permutation from the named distribution."""
        if distribution == "uniform":
            return random_permutation(self.n, self._rng)
        if distribution == "derangement":
            return random_derangement(self.n, self._rng)
        if distribution == "involution":
            return random_involution(self.n, self._rng)
        if distribution == "bpc":
            return random_bpc(self.n, self._rng)
        if distribution == "identity":
            return Permutation.identity(self.n)
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"choose one of {self.DISTRIBUTIONS}"
        )

    def batch(self, count: int, distribution: str = "uniform") -> List[Permutation]:
        """Draw *count* permutations from the named distribution."""
        return [self.draw(distribution) for _ in range(count)]

    def word_lists(self, count: int, distribution: str = "uniform") -> List[List[int]]:
        """Draw workloads already in the word-list form networks consume."""
        return [p.to_list() for p in self.batch(count, distribution)]
