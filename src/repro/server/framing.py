"""Length-prefixed binary wire framing for the gateway protocol.

The JSON-lines protocol spends most of its wire budget (and most of the
server's CPU) serializing one small object per *word*.  The paper's
fabric accepts a full frame per cycle; the binary framing lets the wire
speak the same language: one frame carries an **op** plus a bulk
``int64`` array sidecar, so a ``send_batch`` of 4096 words is one
20-byte header, a few dozen bytes of JSON metadata and one 32 KiB
array — not 4096 request lines.

Frame layout (all integers big-endian)::

    offset  size  field
    0       4     magic  b"BNB1"
    4       1     protocol major version
    5       1     protocol minor version
    6       2     opcode  (see repro.server.ops; 0 in responses = error)
    8       4     request id (echoed verbatim in the response)
    12      4     meta length in bytes   (UTF-8 JSON object)
    16      4     payload length in bytes (packed int64 arrays)
    20      ...   meta bytes, then payload bytes

The **meta** object is ordinary JSON — every field of the op request or
response that is not a bulk array.  The **payload** is the
concatenation of the frame's ``int64`` arrays in little-endian byte
order; the meta's reserved ``"_arrays"`` key maps field name to array
shape, in payload order, so the decoder can rebuild each field as a
zero-copy :func:`numpy.frombuffer` view over the received buffer.
Decoding a frame therefore yields **exactly** the dict the JSON
framing would have carried (arrays in place of lists) — the two
framings are interchangeable transports for the same op registry, and
the differential tests pin that.

Oversize protection mirrors the JSON side's ``MAX_LINE_BYTES``: a
header advertising more than :data:`MAX_FRAME_BYTES` of body is
refused before any allocation.  A client that sends garbage where the
magic should be was never speaking this framing — the server falls
back to the JSON-lines path, which answers a clean ``bad-request``.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Mapping, Tuple

import numpy as np

from ..exceptions import WireFormatError

__all__ = [
    "FrameHeader",
    "HEADER",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "decode_body",
    "encode_frame",
    "jsonable",
    "unpack_header",
]

#: Four bytes no JSON request can start with (JSON-lines requests open
#: with ``{``; the HTTP shim with ``GET``), so one ``recv`` of the first
#: bytes of a connection decides the framing.
MAGIC = b"BNB1"

#: The protocol spoken by this build.  Major bumps break framing or op
#: semantics (the server refuses a client hello with a newer major);
#: minor bumps only ever *add* ops, fields or features (unknown request
#: fields are ignored, so older servers keep working).
PROTOCOL_VERSION: Tuple[int, int] = (2, 0)

#: magic, major, minor, opcode, request id, meta bytes, payload bytes.
HEADER = struct.Struct("!4sBBHIII")

#: Refuse absurd frames before allocating for them — the binary
#: equivalent of the JSON side's ``MAX_LINE_BYTES``, sized for the
#: biggest sane batch (a million-word ``send_batch`` is ~8 MiB).
MAX_FRAME_BYTES = 1 << 24

#: Payload arrays travel as little-endian int64 regardless of host.
_ARRAY_DTYPE = np.dtype("<i8")


class FrameHeader:
    """One decoded binary frame header."""

    __slots__ = ("major", "minor", "opcode", "request_id", "meta_len", "payload_len")

    def __init__(
        self,
        major: int,
        minor: int,
        opcode: int,
        request_id: int,
        meta_len: int,
        payload_len: int,
    ) -> None:
        self.major = major
        self.minor = minor
        self.opcode = opcode
        self.request_id = request_id
        self.meta_len = meta_len
        self.payload_len = payload_len

    @property
    def body_len(self) -> int:
        return self.meta_len + self.payload_len

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"FrameHeader(v{self.major}.{self.minor}, opcode={self.opcode}, "
            f"id={self.request_id}, meta={self.meta_len}B, "
            f"payload={self.payload_len}B)"
        )


def unpack_header(raw: bytes) -> FrameHeader:
    """Decode and sanity-check one frame header.

    Raises :class:`~repro.exceptions.WireFormatError` on a bad magic,
    a short buffer, or a body length beyond :data:`MAX_FRAME_BYTES`.
    """
    if len(raw) < HEADER.size:
        raise WireFormatError(
            f"frame header needs {HEADER.size} bytes, got {len(raw)}"
        )
    magic, major, minor, opcode, request_id, meta_len, payload_len = (
        HEADER.unpack(raw[: HEADER.size])
    )
    if magic != MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r}")
    if meta_len + payload_len > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame body of {meta_len + payload_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    if payload_len % _ARRAY_DTYPE.itemsize:
        raise WireFormatError(
            f"payload of {payload_len} bytes is not a whole number of "
            f"int64 words"
        )
    return FrameHeader(major, minor, opcode, request_id, meta_len, payload_len)


def encode_frame(
    opcode: int,
    body: Mapping[str, Any],
    request_id: int = 0,
    version: Tuple[int, int] = PROTOCOL_VERSION,
) -> bytes:
    """Encode one op request or response as a binary frame.

    Top-level :class:`numpy.ndarray` values of *body* ride the payload
    (as little-endian int64, shapes recorded in the meta's
    ``"_arrays"`` manifest); everything else rides the JSON meta.
    """
    meta: Dict[str, Any] = {}
    manifest: Dict[str, Any] = {}
    chunks = []
    for key, value in body.items():
        if isinstance(value, np.ndarray):
            array = np.ascontiguousarray(value, dtype=_ARRAY_DTYPE)
            manifest[key] = list(array.shape)
            chunks.append(array.tobytes())
        else:
            meta[key] = value
    if manifest:
        meta["_arrays"] = manifest
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    payload = b"".join(chunks)
    if len(meta_bytes) + len(payload) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame body of {len(meta_bytes) + len(payload)} bytes exceeds "
            f"the {MAX_FRAME_BYTES}-byte cap"
        )
    header = HEADER.pack(
        MAGIC,
        version[0],
        version[1],
        opcode,
        request_id & 0xFFFFFFFF,
        len(meta_bytes),
        len(payload),
    )
    return header + meta_bytes + payload


def decode_body(header: FrameHeader, body: bytes) -> Dict[str, Any]:
    """Rebuild the op dict from a frame's meta + payload bytes.

    Array fields come back as numpy views over *body* (zero copy): the
    caller that wants plain lists runs the result through
    :func:`jsonable`.
    """
    if len(body) != header.body_len:
        raise WireFormatError(
            f"frame body needs {header.body_len} bytes, got {len(body)}"
        )
    meta_bytes = body[: header.meta_len]
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireFormatError(f"malformed frame meta: {error}") from error
    if not isinstance(meta, dict):
        raise WireFormatError("frame meta must be a JSON object")
    manifest = meta.pop("_arrays", {})
    if not isinstance(manifest, dict):
        raise WireFormatError("'_arrays' manifest must be an object")
    view = memoryview(body)[header.meta_len :]
    offset = 0
    for key, shape in manifest.items():
        if not isinstance(shape, list) or not all(
            isinstance(axis, int) and axis >= 0 for axis in shape
        ):
            raise WireFormatError(
                f"array {key!r} has a malformed shape {shape!r}"
            )
        count = 1
        for axis in shape:
            count *= axis
        nbytes = count * _ARRAY_DTYPE.itemsize
        if offset + nbytes > len(view):
            raise WireFormatError(
                f"array {key!r} overruns the payload "
                f"({offset + nbytes} > {len(view)} bytes)"
            )
        array = np.frombuffer(
            view, dtype=_ARRAY_DTYPE, count=count, offset=offset
        )
        meta[key] = array.reshape(shape)
        offset += nbytes
    if offset != len(view):
        raise WireFormatError(
            f"{len(view) - offset} payload byte(s) left over after the "
            f"'_arrays' manifest"
        )
    return meta


def jsonable(value: Any) -> Any:
    """Recursively turn numpy arrays/scalars into plain JSON values.

    Applied to op results before JSON-lines serialization, and useful
    in tests to compare what the two framings delivered.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {key: jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    return value
