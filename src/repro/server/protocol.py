"""Dual-framing TCP wire protocol in front of :class:`AsyncGateway`.

One serving port speaks two framings over the same op registry
(:mod:`repro.server.ops`), auto-detected from the first bytes of each
connection:

* **JSON lines** — one UTF-8 JSON object per line, one response per
  line.  A request opens with ``{``; nothing that is not valid JSON
  can collide with the binary magic, so a JSON client never needs to
  announce itself.
* **Binary frames** — length-prefixed frames
  (:mod:`repro.server.framing`) opening with the 4-byte magic
  ``BNB1``: a fixed header, a JSON meta section, and a packed ``int64``
  array payload, so a ``send_batch`` of thousands of words crosses the
  wire as one header plus one contiguous array instead of thousands of
  JSON numbers.
* **HTTP shim** — when the server is instrumented, a line starting
  ``GET `` receives one ``/metrics`` (Prometheus text) or
  ``/metrics.json`` response and the connection closes; enough for a
  scraper or ``curl``.

Both framings carry the same requests to :func:`repro.server.ops.dispatch`
and the same responses back; ``op``s, error slugs, field names and
semantics are identical, which the differential tests pin.  Requests on
one connection are handled concurrently — a slow ``send`` does not
block a ``stats`` probe on the same socket; responses are *not*
guaranteed to arrive in request order, which is what the ``id`` field
(JSON) / header request id (binary) are for.

Error responses always have ``ok: false`` and a stable ``error`` slug:
``admission-rejected`` (transient; honour ``retry_after_cycles``),
``bad-request`` (malformed JSON or binary frame / unknown op / bad
destination), ``unsupported-version``, ``gateway-closed``,
``plane-unavailable``, ``metrics-disabled``, ``internal``.  Garbage
that starts with neither the magic nor parseable JSON lands on the
JSON path and earns a clean ``bad-request``, never a hung socket.

The full wire specification lives in ``docs/serving.md``; the cluster
op family (``drain`` / ``rejoin`` / ``shard_map``, advertised by the
``cluster`` hello feature flag) is specified in ``docs/clustering.md``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Set

from ..exceptions import GatewayClosedError, WireFormatError
from . import ops
from .framing import (
    HEADER,
    MAGIC,
    PROTOCOL_VERSION,
    decode_body,
    encode_frame,
    jsonable,
    unpack_header,
)
from .gateway import AsyncGateway

__all__ = ["GatewayServer"]

#: Refuse absurd lines before json.loads chews on them.
MAX_LINE_BYTES = 1 << 16


class GatewayServer:
    """Host an :class:`AsyncGateway` on a TCP socket, both framings."""

    def __init__(
        self,
        gateway: AsyncGateway,
        host: str = "127.0.0.1",
        port: int = 0,
        instrumentation: Optional[Any] = None,
    ) -> None:
        self.gateway = gateway
        self.host = host
        self.port = port
        #: A :class:`~repro.obs.instrument.GatewayInstrumentation` (or
        #: anything with ``render_prometheus``/``snapshot``); enables
        #: the ``metrics`` op and the ``GET /metrics`` HTTP shim.
        self.instrumentation = instrumentation
        #: The latest cluster shard-map document installed by a
        #: :class:`repro.cluster.ClusterRouter` via the ``shard_map``
        #: op (``None`` on a standalone node).  Served back to any
        #: client asking, so every node doubles as a map bootstrap
        #: point; see ``docs/clustering.md``.
        self.cluster_map: Optional[Dict[str, Any]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._request_tasks: Set[asyncio.Task] = set()
        self._connections: Set[asyncio.StreamWriter] = set()
        self._connection_tasks: Set[asyncio.Task] = set()
        self.connections_served = 0
        self.requests_served = 0
        self.binary_connections = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "GatewayServer":
        if self._server is not None:
            raise GatewayClosedError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        # Close established connections too (a killed cluster node must
        # drop its clients, not just stop listening); the handlers see
        # EOF and return on their own — no cancellation, no loose tasks.
        for writer in list(self._connections):
            try:
                writer.close()
            except (ConnectionResetError, OSError):
                pass
        if self._connection_tasks:
            await asyncio.gather(
                *self._connection_tasks, return_exceptions=True
            )
        for task in list(self._request_tasks):
            task.cancel()
        if self._request_tasks:
            await asyncio.gather(*self._request_tasks, return_exceptions=True)

    async def __aenter__(self) -> "GatewayServer":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Sniff the framing from the first bytes, then serve the loop.

        The binary magic's first byte cannot open a JSON value, so one
        byte usually decides; when it matches, the remaining magic
        bytes confirm.  A mismatch falls through to the JSON-lines loop
        with the sniffed bytes prepended, so even garbage gets the JSON
        path's clean ``bad-request`` answer.
        """
        self.connections_served += 1
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        self._connections.add(writer)
        try:
            try:
                first = await reader.read(1)
            except (ConnectionResetError, OSError):
                return
            if not first:
                return
            prefix = first
            if first == MAGIC[:1]:
                try:
                    rest = await reader.readexactly(len(MAGIC) - 1)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    OSError,
                ):
                    return
                prefix = first + rest
                if prefix == MAGIC:
                    self.binary_connections += 1
                    await self._serve_binary(prefix, reader, writer)
                    return
            await self._serve_json(prefix, reader, writer)
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._connection_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    # ------------------------------------------------------------------
    # Binary framing loop
    # ------------------------------------------------------------------
    async def _serve_binary(
        self,
        magic: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve length-prefixed binary frames until EOF or desync.

        A frame that violates the framing invariants (oversize body,
        ragged payload) earns one error frame and closes the
        connection — after a desync there is no trustworthy frame
        boundary left to resynchronize on.
        """
        write_lock = asyncio.Lock()
        raw_header = magic + await self._read_exactly(
            reader, HEADER.size - len(magic)
        )
        while len(raw_header) == HEADER.size:
            try:
                header = unpack_header(raw_header)
            except WireFormatError as error:
                await self._write_binary(
                    writer,
                    write_lock,
                    0,
                    ops.error_response("bad-request", detail=str(error)),
                )
                return
            body = await self._read_exactly(reader, header.body_len)
            if len(body) != header.body_len:
                return  # connection died mid-frame
            task = asyncio.ensure_future(
                self._serve_binary_request(header, body, writer, write_lock)
            )
            self._request_tasks.add(task)
            task.add_done_callback(self._request_tasks.discard)
            raw_header = await self._read_exactly(reader, HEADER.size)

    @staticmethod
    async def _read_exactly(reader: asyncio.StreamReader, count: int) -> bytes:
        """``readexactly`` that returns what it got instead of raising."""
        if count == 0:
            return b""
        try:
            return await reader.readexactly(count)
        except asyncio.IncompleteReadError as error:
            return error.partial
        except (ConnectionResetError, OSError):
            return b""

    async def _serve_binary_request(
        self,
        header,
        body: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self.requests_served += 1
        if header.major > PROTOCOL_VERSION[0]:
            response = ops.error_response(
                "unsupported-version",
                header.request_id,
                detail=(
                    f"frame version {header.major}.{header.minor} is newer "
                    f"than the supported "
                    f"{PROTOCOL_VERSION[0]}.{PROTOCOL_VERSION[1]}"
                ),
                protocol_version=list(PROTOCOL_VERSION),
            )
            await self._write_binary(writer, write_lock, 0, response)
            return
        spec = ops.BY_CODE.get(header.opcode)
        if spec is None:
            response = ops.error_response(
                "bad-request",
                header.request_id,
                detail=f"unknown opcode {header.opcode}",
            )
            await self._write_binary(writer, write_lock, 0, response)
            return
        try:
            request = decode_body(header, body)
        except WireFormatError as error:
            response = ops.error_response(
                "bad-request", header.request_id, detail=str(error)
            )
            await self._write_binary(writer, write_lock, 0, response)
            return
        request["op"] = spec.name
        request.setdefault("id", header.request_id)
        response = await ops.dispatch(self, request)
        opcode = spec.code if response.get("ok") else 0
        await self._write_binary(writer, write_lock, opcode, response)

    async def _write_binary(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        opcode: int,
        response: Dict[str, Any],
    ) -> None:
        request_id = response.get("id", 0)
        if not isinstance(request_id, int) or isinstance(request_id, bool):
            request_id = 0
        try:
            payload = encode_frame(opcode, response, request_id=request_id)
        except WireFormatError as error:
            payload = encode_frame(
                0,
                ops.error_response(
                    "internal", request_id, detail=str(error)
                ),
                request_id=request_id,
            )
        try:
            async with write_lock:
                writer.write(payload)
                await writer.drain()
        except (ConnectionResetError, OSError):
            pass  # client went away; the words (if any) were still delivered

    # ------------------------------------------------------------------
    # JSON-lines loop (plus the HTTP shim)
    # ------------------------------------------------------------------
    async def _serve_json(
        self,
        prefix: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        write_lock = asyncio.Lock()
        while True:
            try:
                line = await reader.readline()
            except (ConnectionResetError, asyncio.LimitOverrunError, OSError):
                break
            if prefix:
                line, prefix = prefix + line, b""
            if not line:
                break
            stripped = line.strip()
            if not stripped:
                continue
            if (
                self.instrumentation is not None
                and stripped.startswith(b"GET ")
            ):
                # The HTTP shim: answer one scrape and hang up.
                await self._serve_http(stripped, writer)
                break
            task = asyncio.ensure_future(
                self._serve_request(stripped, writer, write_lock)
            )
            self._request_tasks.add(task)
            task.add_done_callback(self._request_tasks.discard)

    async def _serve_http(
        self, request_line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one ``GET``-style request line with an HTTP response.

        Only ``/metrics`` (Prometheus text) and ``/metrics.json`` (the
        combined JSON snapshot) exist; anything else is a 404.  The
        response always closes the connection — the shim is for
        scrapers, not browsers.
        """
        self.requests_served += 1
        parts = request_line.decode("utf-8", "replace").split()
        path = parts[1] if len(parts) > 1 else ""
        path = path.split("?", 1)[0]
        if path == "/metrics":
            body = self.instrumentation.render_prometheus()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
            status = "200 OK"
        elif path == "/metrics.json":
            from ..obs.snapshot import dump_json

            body = dump_json(self.instrumentation.snapshot()) + "\n"
            content_type = "application/json; charset=utf-8"
            status = "200 OK"
        else:
            body = "only /metrics and /metrics.json live here\n"
            content_type = "text/plain; charset=utf-8"
            status = "404 Not Found"
        encoded = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(encoded)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + encoded)
            await writer.drain()
        except (ConnectionResetError, OSError):
            pass

    async def _serve_request(
        self,
        raw: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        response = await self._dispatch(raw)
        self.requests_served += 1
        payload = (json.dumps(response) + "\n").encode("utf-8")
        try:
            async with write_lock:
                writer.write(payload)
                await writer.drain()
        except (ConnectionResetError, OSError):
            pass  # client went away; the word (if any) was still delivered

    async def _dispatch(self, raw: bytes) -> Dict[str, Any]:
        """Decode one JSON request line and run it through the registry.

        Always returns a JSON-safe response object (op results may
        contain numpy arrays — ``send_batch`` statuses — which are
        flattened to lists here; the binary framing ships them packed
        instead).
        """
        if len(raw) > MAX_LINE_BYTES:
            return ops.error_response(
                "bad-request", detail="request line too long"
            )
        try:
            request = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return ops.error_response(
                "bad-request", detail=f"malformed JSON: {error}"
            )
        return jsonable(await ops.dispatch(self, request))
