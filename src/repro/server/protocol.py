"""JSON-lines TCP wire protocol in front of :class:`AsyncGateway`.

One request per line, one response per line, both UTF-8 JSON objects.
Requests carry an ``op`` (``send`` | ``stats`` | ``metrics`` |
``inject`` | ``ping``) and an optional ``id`` echoed verbatim in the response, so
clients may correlate.  Requests on one connection are handled
concurrently — a slow ``send`` (waiting for a frame) does not block a
``stats`` probe on the same socket; responses are therefore *not*
guaranteed to arrive in request order, which is what ``id`` is for.

::

    -> {"op": "send", "dest": 3, "payload": "hello", "id": 1}
    <- {"ok": true, "op": "send", "dest": 3, "latency_cycles": 5,
        "plane": 0, "mode": "clean", "id": 1}
    -> {"op": "send", "dest": 3, "id": 2}          # queue full
    <- {"ok": false, "error": "admission-rejected",
        "retry_after_cycles": 32, "id": 2}
    -> {"op": "stats"}
    <- {"ok": true, "op": "stats", "stats": {...}}
    -> {"op": "inject", "plane": 0, "coordinate": [2, 0, 0, 0, 0],
        "value": 1}                                # needs --resilient
    <- {"ok": true, "op": "inject", "plane": {...}}
    -> {"op": "metrics", "format": "prometheus"}   # needs --metrics
    <- {"ok": true, "op": "metrics", "format": "prometheus",
        "body": "# HELP repro_gateway_cycle ...\\n..."}

When the server is built with a
:class:`~repro.obs.instrument.GatewayInstrumentation`, two extra
surfaces open up: the ``metrics`` op above (``format`` ``"json"`` —
the default — or ``"prometheus"``), and a minimal HTTP shim — a
connection whose first line is ``GET /metrics`` (as an HTTP/1.x
request line) receives one ``text/plain`` HTTP response with the
Prometheus text body and is closed, which is exactly enough for a
scraper or ``curl`` pointed at the serving port.  Without
instrumentation, ``metrics`` returns the ``metrics-disabled`` error
slug and HTTP lines are malformed JSON like any other garbage.

Error responses always have ``ok: false`` and a stable ``error`` slug:
``admission-rejected`` (transient; honour ``retry_after_cycles``),
``bad-request`` (malformed JSON / unknown op / bad destination),
``gateway-closed``, ``plane-unavailable``, ``metrics-disabled``,
``internal``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Set

from ..exceptions import (
    AdmissionRejectedError,
    FaultError,
    GatewayClosedError,
    InputError,
    PlaneUnavailableError,
)
from .gateway import AsyncGateway

__all__ = ["GatewayServer"]

#: Refuse absurd lines before json.loads chews on them.
MAX_LINE_BYTES = 1 << 16


class GatewayServer:
    """Host an :class:`AsyncGateway` on a TCP socket, JSON-lines framed."""

    def __init__(
        self,
        gateway: AsyncGateway,
        host: str = "127.0.0.1",
        port: int = 0,
        instrumentation: Optional[Any] = None,
    ) -> None:
        self.gateway = gateway
        self.host = host
        self.port = port
        #: A :class:`~repro.obs.instrument.GatewayInstrumentation` (or
        #: anything with ``render_prometheus``/``snapshot``); enables
        #: the ``metrics`` op and the ``GET /metrics`` HTTP shim.
        self.instrumentation = instrumentation
        self._server: Optional[asyncio.AbstractServer] = None
        self._request_tasks: Set[asyncio.Task] = set()
        self.connections_served = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "GatewayServer":
        if self._server is not None:
            raise GatewayClosedError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for task in list(self._request_tasks):
            task.cancel()
        if self._request_tasks:
            await asyncio.gather(*self._request_tasks, return_exceptions=True)

    async def __aenter__(self) -> "GatewayServer":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    ConnectionResetError,
                    asyncio.LimitOverrunError,
                ):
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                if (
                    self.instrumentation is not None
                    and stripped.startswith(b"GET ")
                ):
                    # The HTTP shim: answer one scrape and hang up.
                    await self._serve_http(stripped, writer)
                    break
                task = asyncio.ensure_future(
                    self._serve_request(stripped, writer, write_lock)
                )
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _serve_http(
        self, request_line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one ``GET``-style request line with an HTTP response.

        Only ``/metrics`` (Prometheus text) and ``/metrics.json`` (the
        combined JSON snapshot) exist; anything else is a 404.  The
        response always closes the connection — the shim is for
        scrapers, not browsers.
        """
        self.requests_served += 1
        parts = request_line.decode("utf-8", "replace").split()
        path = parts[1] if len(parts) > 1 else ""
        path = path.split("?", 1)[0]
        if path == "/metrics":
            body = self.instrumentation.render_prometheus()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
            status = "200 OK"
        elif path == "/metrics.json":
            from ..obs.snapshot import dump_json

            body = dump_json(self.instrumentation.snapshot()) + "\n"
            content_type = "application/json; charset=utf-8"
            status = "200 OK"
        else:
            body = "only /metrics and /metrics.json live here\n"
            content_type = "text/plain; charset=utf-8"
            status = "404 Not Found"
        encoded = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(encoded)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + encoded)
            await writer.drain()
        except (ConnectionResetError, OSError):
            pass

    async def _serve_request(
        self,
        raw: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        response = await self._dispatch(raw)
        self.requests_served += 1
        payload = (json.dumps(response) + "\n").encode("utf-8")
        try:
            async with write_lock:
                writer.write(payload)
                await writer.drain()
        except (ConnectionResetError, OSError):
            pass  # client went away; the word (if any) was still delivered

    async def _dispatch(self, raw: bytes) -> Dict[str, Any]:
        if len(raw) > MAX_LINE_BYTES:
            return _error("bad-request", detail="request line too long")
        try:
            request = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return _error("bad-request", detail=f"malformed JSON: {error}")
        if not isinstance(request, dict):
            return _error("bad-request", detail="request must be an object")
        request_id = request.get("id")
        op = request.get("op")
        try:
            if op == "ping":
                return _ok({"op": "ping"}, request_id)
            if op == "stats":
                return _ok(
                    {"op": "stats", "stats": self.gateway.stats()}, request_id
                )
            if op == "metrics":
                return self._op_metrics(request, request_id)
            if op == "send":
                return await self._op_send(request, request_id)
            if op == "inject":
                return self._op_inject(request, request_id)
            return _error(
                "bad-request", request_id, detail=f"unknown op {op!r}"
            )
        except AdmissionRejectedError as error:
            return _error(
                "admission-rejected",
                request_id,
                dest=error.destination,
                retry_after_cycles=error.retry_after_cycles,
            )
        except GatewayClosedError as error:
            return _error("gateway-closed", request_id, detail=str(error))
        except PlaneUnavailableError as error:
            return _error("plane-unavailable", request_id, detail=str(error))
        except (InputError, FaultError) as error:
            return _error("bad-request", request_id, detail=str(error))
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 — protocol boundary
            return _error("internal", request_id, detail=repr(error))

    def _op_metrics(
        self, request: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        if self.instrumentation is None:
            return _error(
                "metrics-disabled",
                request_id,
                detail="the server was started without instrumentation",
            )
        fmt = request.get("format", "json")
        if fmt == "prometheus":
            return _ok(
                {
                    "op": "metrics",
                    "format": "prometheus",
                    "body": self.instrumentation.render_prometheus(),
                },
                request_id,
            )
        if fmt == "json":
            from ..obs.snapshot import sanitize

            return _ok(
                {
                    "op": "metrics",
                    "format": "json",
                    "metrics": sanitize(self.instrumentation.snapshot()),
                },
                request_id,
            )
        return _error(
            "bad-request",
            request_id,
            detail=f"metrics format must be 'json' or 'prometheus', got {fmt!r}",
        )

    def _op_inject(
        self, request: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        plane = request.get("plane", 0)
        if not isinstance(plane, int) or isinstance(plane, bool):
            return _error(
                "bad-request",
                request_id,
                detail="'plane' must be an integer plane id",
            )
        coordinate = request.get("coordinate")
        if (
            not isinstance(coordinate, (list, tuple))
            or len(coordinate) != 5
            or not all(
                isinstance(axis, int) and not isinstance(axis, bool)
                for axis in coordinate
            )
        ):
            return _error(
                "bad-request",
                request_id,
                detail=(
                    "'coordinate' must be 5 integers: [main_stage, "
                    "nested, nested_stage, box, switch]"
                ),
            )
        value = request.get("value", 1)
        if value not in (0, 1) or isinstance(value, bool):
            return _error(
                "bad-request",
                request_id,
                detail="'value' must be the stuck control bit, 0 or 1",
            )
        described = self.gateway.inject_fault(plane, tuple(coordinate), value)
        return _ok({"op": "inject", "plane": described}, request_id)

    async def _op_send(
        self, request: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        destination = request.get("dest")
        if not isinstance(destination, int) or isinstance(destination, bool):
            return _error(
                "bad-request",
                request_id,
                detail="'dest' must be an integer output line",
            )
        retry = bool(request.get("retry", False))
        send = (
            self.gateway.send_with_retry if retry else self.gateway.send
        )
        receipt = await send(destination, request.get("payload"))
        return _ok(
            {
                "op": "send",
                "dest": receipt.destination,
                "plane": receipt.plane_id,
                "frame": receipt.frame_tag,
                "latency_cycles": receipt.latency_cycles,
                "mode": receipt.mode,
            },
            request_id,
        )


def _ok(body: Dict[str, Any], request_id: Any = None) -> Dict[str, Any]:
    response = {"ok": True, **body}
    if request_id is not None:
        response["id"] = request_id
    return response


def _error(slug: str, request_id: Any = None, **fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": False, "error": slug, **fields}
    if request_id is not None:
        response["id"] = request_id
    return response
