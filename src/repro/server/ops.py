"""The declarative op registry shared by both wire framings.

Every protocol operation is one :class:`OpSpec`: a name (the JSON
``op`` field), a stable binary opcode, and an async handler that takes
``(server, request)`` and returns the success body.  The JSON-lines
and binary framings are pure transports — both decode to the same
request dict, call :func:`dispatch`, and encode the same response
dict — so an op added here is immediately speakable in either framing
and the two can be differentially tested against each other.

:func:`dispatch` also owns the error envelope: every gateway exception
maps to a stable ``error`` slug (``admission-rejected``,
``bad-request``, ``unsupported-version``, ``gateway-closed``,
``plane-unavailable``, ``metrics-disabled``, ``internal``), and the
request's ``id`` is echoed on success and failure alike.  Handlers
read request fields with ``.get`` and ignore anything they don't know
— the forward-compatibility half of the version contract
(:data:`~repro.server.framing.PROTOCOL_VERSION` documents the other
half: the server refuses a ``hello`` with a newer *major*).
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Any, Awaitable, Callable, Dict, List, Optional

import numpy as np

from ..exceptions import (
    AdmissionRejectedError,
    FaultError,
    GatewayClosedError,
    InputError,
    PlaneUnavailableError,
    UnsupportedVersionError,
    WireFormatError,
)
from .framing import PROTOCOL_VERSION

__all__ = [
    "OpSpec",
    "REGISTRY",
    "BY_CODE",
    "dispatch",
    "error_response",
    "features",
    "ok_response",
]

#: name -> spec, filled by the ``@_op`` registrations below.
REGISTRY: Dict[str, "OpSpec"] = {}
#: binary opcode -> spec (the codes are wire ABI: never renumber).
BY_CODE: Dict[int, "OpSpec"] = {}

Handler = Callable[[Any, Dict[str, Any]], Awaitable[Dict[str, Any]]]


@dataclasses.dataclass(frozen=True)
class OpSpec:
    """One protocol operation: name, binary opcode, handler."""

    name: str
    code: int
    handler: Handler
    summary: str


def _op(name: str, code: int, summary: str):
    """Register an async handler as the op *name* / opcode *code*."""

    def register(handler: Handler) -> Handler:
        if name in REGISTRY or code in BY_CODE:
            raise ValueError(f"op {name!r}/{code} registered twice")
        spec = OpSpec(name=name, code=code, handler=handler, summary=summary)
        REGISTRY[name] = spec
        BY_CODE[code] = spec
        return handler

    return register


def features(server: Any) -> List[str]:
    """The capability flags a ``hello`` advertises for *server*."""
    # "cluster": the drain/rejoin/shard_map op family — a cluster
    # router can manage this node and a cluster client can bootstrap
    # its shard map from it.
    flags = ["batch", "binary", "cluster", "json"]
    if server.instrumentation is not None:
        flags.append("metrics")
    gateway = server.gateway
    if getattr(gateway.config, "resilient", False):
        flags.append("resilient")
    if getattr(gateway.config, "tenants", None):
        flags.append("tenants")
    return sorted(flags)


def ok_response(body: Dict[str, Any], request_id: Any = None) -> Dict[str, Any]:
    response = {"ok": True, **body}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(
    slug: str, request_id: Any = None, **fields: Any
) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": False, "error": slug, **fields}
    if request_id is not None:
        response["id"] = request_id
    return response


async def dispatch(server: Any, request: Dict[str, Any]) -> Dict[str, Any]:
    """Run one decoded request through the registry; never raises.

    The single choke point both framings call: resolves the op, runs
    its handler, and maps every failure to the stable error envelope.
    """
    if not isinstance(request, dict):
        return error_response("bad-request", detail="request must be an object")
    request_id = request.get("id")
    op = request.get("op")
    spec = REGISTRY.get(op)
    if spec is None:
        return error_response(
            "bad-request", request_id, detail=f"unknown op {op!r}"
        )
    try:
        return ok_response(await spec.handler(server, request), request_id)
    except AdmissionRejectedError as error:
        return error_response(
            "admission-rejected",
            request_id,
            dest=error.destination,
            retry_after_cycles=error.retry_after_cycles,
        )
    except UnsupportedVersionError as error:
        return error_response(
            "unsupported-version",
            request_id,
            detail=str(error),
            protocol_version=list(PROTOCOL_VERSION),
        )
    except GatewayClosedError as error:
        return error_response("gateway-closed", request_id, detail=str(error))
    except PlaneUnavailableError as error:
        return error_response("plane-unavailable", request_id, detail=str(error))
    except _MetricsDisabled as error:
        return error_response("metrics-disabled", request_id, detail=str(error))
    except (InputError, FaultError, WireFormatError) as error:
        return error_response("bad-request", request_id, detail=str(error))
    except asyncio.CancelledError:
        raise
    except Exception as error:  # noqa: BLE001 — protocol boundary
        return error_response("internal", request_id, detail=repr(error))


class _MetricsDisabled(Exception):
    """Internal marker: the metrics op on an uninstrumented server."""


# ----------------------------------------------------------------------
# The ops
# ----------------------------------------------------------------------
@_op("ping", 1, "liveness probe")
async def _op_ping(server: Any, request: Dict[str, Any]) -> Dict[str, Any]:
    return {"op": "ping"}


@_op("hello", 2, "version and feature negotiation")
async def _op_hello(server: Any, request: Dict[str, Any]) -> Dict[str, Any]:
    requested = request.get("version")
    if requested is not None:
        if (
            not isinstance(requested, (list, tuple))
            or not requested
            or not all(
                isinstance(part, int) and not isinstance(part, bool)
                for part in requested
            )
        ):
            raise InputError(
                f"'version' must be [major] or [major, minor] integers, "
                f"got {requested!r}"
            )
        if requested[0] > PROTOCOL_VERSION[0]:
            raise UnsupportedVersionError(
                list(requested), list(PROTOCOL_VERSION)
            )
    return {
        "op": "hello",
        "protocol_version": list(PROTOCOL_VERSION),
        "features": features(server),
        "ops": {
            spec.name: spec.code for spec in sorted(
                REGISTRY.values(), key=lambda spec: spec.code
            )
        },
        "n": server.gateway.n,
    }


@_op("stats", 3, "gateway counters snapshot")
async def _op_stats(server: Any, request: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "op": "stats",
        "protocol_version": list(PROTOCOL_VERSION),
        "stats": server.gateway.stats(),
    }


@_op("metrics", 4, "telemetry exposition (json or prometheus)")
async def _op_metrics(server: Any, request: Dict[str, Any]) -> Dict[str, Any]:
    if server.instrumentation is None:
        raise _MetricsDisabled(
            "the server was started without instrumentation"
        )
    fmt = request.get("format", "json")
    if fmt == "prometheus":
        return {
            "op": "metrics",
            "format": "prometheus",
            "body": server.instrumentation.render_prometheus(),
        }
    if fmt == "json":
        from ..obs.snapshot import sanitize

        return {
            "op": "metrics",
            "format": "json",
            "metrics": sanitize(server.instrumentation.snapshot()),
        }
    raise InputError(
        f"metrics format must be 'json' or 'prometheus', got {fmt!r}"
    )


def _tenant_field(request: Dict[str, Any]) -> Optional[str]:
    """The optional ``tenant`` QoS-class field of a send-style request.

    Additive minor-version field: absent or ``None`` means the default
    class, anything else must be a non-empty string.
    """
    tenant = request.get("tenant")
    if tenant is None:
        return None
    if not isinstance(tenant, str) or not tenant:
        raise InputError(
            f"'tenant' must be a non-empty class name, got {tenant!r}"
        )
    return tenant


@_op("send", 5, "admit one word, await its delivery receipt")
async def _op_send(server: Any, request: Dict[str, Any]) -> Dict[str, Any]:
    destination = request.get("dest")
    if not isinstance(destination, int) or isinstance(destination, bool):
        raise InputError("'dest' must be an integer output line")
    retry = bool(request.get("retry", False))
    tenant = _tenant_field(request)
    if retry:
        receipt = await server.gateway.send_with_retry(
            destination, request.get("payload"), tenant=tenant
        )
    else:
        receipt = await server.gateway.send(
            destination, request.get("payload"), tenant=tenant
        )
    return {
        "op": "send",
        "dest": receipt.destination,
        "plane": receipt.plane_id,
        "frame": receipt.frame_tag,
        "latency_cycles": receipt.latency_cycles,
        "mode": receipt.mode,
    }


@_op("send_batch", 6, "admit a batch of words, await all deliveries")
async def _op_send_batch(server: Any, request: Dict[str, Any]) -> Dict[str, Any]:
    dests = request.get("dests")
    if dests is None:
        raise InputError("'dests' must be a list (or int64 array) of outputs")
    if isinstance(dests, np.ndarray):
        if dests.ndim != 1:
            raise InputError(
                f"'dests' must be one-dimensional, got shape {dests.shape}"
            )
        destinations = dests
    elif isinstance(dests, (list, tuple)):
        if not all(
            isinstance(dest, int) and not isinstance(dest, bool)
            for dest in dests
        ):
            raise InputError("every 'dests' element must be an integer")
        destinations = np.asarray(dests, dtype=np.int64)
    else:
        raise InputError(
            f"'dests' must be a list (or int64 array) of outputs, "
            f"got {type(dests).__name__}"
        )
    payloads = request.get("payloads")
    if payloads is not None and (
        not isinstance(payloads, (list, tuple))
        or len(payloads) != len(destinations)
    ):
        raise InputError(
            "'payloads' must be a list as long as 'dests' when present"
        )
    attempts = request.get("retry", 0)
    if attempts is True:
        attempts = 16
    if not isinstance(attempts, int) or attempts < 0:
        raise InputError(
            f"'retry' must be false/true or a non-negative attempt "
            f"count, got {attempts!r}"
        )
    result = await server.gateway.send_batch(
        destinations,
        payloads,
        retry_attempts=attempts,
        tenant=_tenant_field(request),
    )
    return {
        "op": "send_batch",
        "count": result.count,
        "delivered": result.delivered,
        "rejected": result.rejected,
        "mode_table": list(result.mode_table),
        "statuses": result.statuses,
        "planes": result.planes,
        "latencies": result.latencies,
        "frames": result.frames,
        "retry_after": result.retry_after,
        "modes": result.modes,
    }


@_op("drain", 8, "stop admitting new words; keep serving the backlog")
async def _op_drain(server: Any, request: Dict[str, Any]) -> Dict[str, Any]:
    backlog = server.gateway.drain()
    return {
        "op": "drain",
        "draining": True,
        "node_id": server.gateway.node_id,
        **backlog,
    }


@_op("rejoin", 9, "resume admission after a drain")
async def _op_rejoin(server: Any, request: Dict[str, Any]) -> Dict[str, Any]:
    server.gateway.rejoin()
    return {
        "op": "rejoin",
        "draining": False,
        "node_id": server.gateway.node_id,
    }


@_op("shard_map", 10, "get, or install, the cluster shard map")
async def _op_shard_map(server: Any, request: Dict[str, Any]) -> Dict[str, Any]:
    """One op, two uses: the router *installs* the map (a ``map``
    field with a newer version wins), clients *fetch* it (no ``map``
    field).  Every node carries the latest map it has seen, so a
    cluster client can bootstrap or refresh from whichever node it can
    still reach — no separate coordination service.
    """
    doc = request.get("map")
    installed = False
    if doc is not None:
        if not isinstance(doc, dict):
            raise InputError("'map' must be a shard-map object")
        version = doc.get("version")
        if not isinstance(version, int) or isinstance(version, bool):
            raise InputError("'map' must carry an integer 'version'")
        current = server.cluster_map
        if current is None or version >= current.get("version", 0):
            server.cluster_map = doc
            installed = True
    return {
        "op": "shard_map",
        "installed": installed,
        "node_id": server.gateway.node_id,
        "map": server.cluster_map,
    }


@_op("inject", 7, "fault drill: stuck a live resilient plane's switch")
async def _op_inject(server: Any, request: Dict[str, Any]) -> Dict[str, Any]:
    plane = request.get("plane", 0)
    if not isinstance(plane, int) or isinstance(plane, bool):
        raise InputError("'plane' must be an integer plane id")
    coordinate = request.get("coordinate")
    if (
        not isinstance(coordinate, (list, tuple))
        or len(coordinate) != 5
        or not all(
            isinstance(axis, int) and not isinstance(axis, bool)
            for axis in coordinate
        )
    ):
        raise InputError(
            "'coordinate' must be 5 integers: [main_stage, nested, "
            "nested_stage, box, switch]"
        )
    value = request.get("value", 1)
    if value not in (0, 1) or isinstance(value, bool):
        raise InputError("'value' must be the stuck control bit, 0 or 1")
    described = server.gateway.inject_fault(plane, tuple(coordinate), value)
    return {"op": "inject", "plane": described}
