"""Async traffic gateway: serving live traffic over the BNB fabric.

Where :mod:`repro.core.traffic` answers "how does messy traffic map
onto the permutation contract" for one offline batch, this package
keeps answering it forever, online, for concurrent clients:

* :mod:`repro.server.voq` — per-destination **virtual output queues**
  with bounded-depth admission control (reject-with-retry-after, never
  unbounded buffering);
* :mod:`repro.server.scheduler` — the **frame scheduler** that each
  cycle coalesces queued words into a conflict-free full permutation
  (one head-of-line word per destination, idle-filled via
  :func:`~repro.core.traffic.complete_partial_permutation`);
* :mod:`repro.server.planes` — **fabric planes**: pipelined BNB planes
  for back-to-back throughput, compiled-numpy
  :class:`~repro.server.planes.VectorPlane` planes with sampled
  boundary verification for hardware-speed serving, or
  :class:`~repro.service.ResilientFabric`-wrapped planes that survive
  physical faults; a faulty plane drains, its words requeue, and the
  pool serves on;
* :mod:`repro.server.pool` — the **multi-process plane pool** sharding
  vector planes across CPU cores with shared-memory frame buffers;
* :mod:`repro.server.gateway` — the **asyncio dataplane** tying them
  together: ``await gateway.send(dest, payload)`` returns a delivery
  receipt; a clock task schedules frames onto the least-loaded plane;
* :mod:`repro.server.protocol` — the **JSON-lines TCP** wire protocol
  (``repro serve`` hosts it).

See ``docs/serving.md`` for the architecture and the backpressure
contract.
"""

from .gateway import AsyncGateway, GatewayConfig, Receipt
from .planes import PipelinedPlane, ResilientPlane, VectorPlane
from .pool import ProcessPlane, ProcessPlanePool
from .protocol import GatewayServer
from .scheduler import FrameScheduler, ScheduledFrame
from .voq import QueueEntry, VirtualOutputQueues

__all__ = [
    "AsyncGateway",
    "GatewayConfig",
    "GatewayServer",
    "FrameScheduler",
    "PipelinedPlane",
    "ProcessPlane",
    "ProcessPlanePool",
    "QueueEntry",
    "Receipt",
    "ResilientPlane",
    "ScheduledFrame",
    "VectorPlane",
    "VirtualOutputQueues",
]
