"""Async traffic gateway: serving live traffic over the BNB fabric.

Where :mod:`repro.core.traffic` answers "how does messy traffic map
onto the permutation contract" for one offline batch, this package
keeps answering it forever, online, for concurrent clients:

* :mod:`repro.server.voq` — per-destination **virtual output queues**
  with bounded-depth admission control (reject-with-retry-after, never
  unbounded buffering);
* :mod:`repro.server.scheduler` — the **frame scheduler** that each
  cycle coalesces queued words into a conflict-free full permutation
  (one head-of-line word per destination, idle-filled via
  :func:`~repro.core.traffic.complete_partial_permutation`);
* :mod:`repro.server.planes` — **fabric planes**: pipelined BNB planes
  for back-to-back throughput, compiled-numpy
  :class:`~repro.server.planes.VectorPlane` planes with sampled
  boundary verification for hardware-speed serving, or
  :class:`~repro.service.ResilientFabric`-wrapped planes that survive
  physical faults; a faulty plane drains, its words requeue, and the
  pool serves on;
* :mod:`repro.server.pool` — the **multi-process plane pool** sharding
  vector planes across CPU cores with shared-memory frame buffers;
* :mod:`repro.server.gateway` — the **asyncio dataplane** tying them
  together: ``await gateway.send(dest, payload)`` returns a delivery
  receipt, ``await gateway.send_batch(dests)`` a per-word
  :class:`~repro.server.gateway.BatchResult`; a clock task schedules
  frames onto the least-loaded plane;
* :mod:`repro.server.ops` — the **declarative op registry** every wire
  framing dispatches through (one :class:`~repro.server.ops.OpSpec`
  per protocol operation, stable error-slug mapping);
* :mod:`repro.server.framing` — the **binary wire framing**
  (length-prefixed header + JSON meta + packed ``int64`` array
  payload) and the protocol version;
* :mod:`repro.server.protocol` — the **TCP server** hosting both the
  JSON-lines and the binary framing on one auto-detecting port
  (``repro serve`` hosts it; :class:`repro.client.GatewayClient`
  speaks it).

See ``docs/serving.md`` for the architecture, the backpressure
contract and the full wire specification.
"""

from .framing import MAGIC, PROTOCOL_VERSION
from .gateway import AsyncGateway, BatchResult, GatewayConfig, Receipt
from .ops import REGISTRY, OpSpec
from .planes import (
    BackendPlane,
    BatchVectorPlane,
    PipelinedPlane,
    ResilientPlane,
    VectorPlane,
)
from .pool import ProcessPlane, ProcessPlanePool
from .protocol import GatewayServer
from .scheduler import FrameScheduler, ScheduledFrame
from .voq import DEFAULT_TENANT, QueueEntry, VirtualOutputQueues

__all__ = [
    "AsyncGateway",
    "DEFAULT_TENANT",
    "BatchResult",
    "BackendPlane",
    "BatchVectorPlane",
    "GatewayConfig",
    "GatewayServer",
    "FrameScheduler",
    "MAGIC",
    "OpSpec",
    "PROTOCOL_VERSION",
    "PipelinedPlane",
    "ProcessPlane",
    "ProcessPlanePool",
    "QueueEntry",
    "REGISTRY",
    "Receipt",
    "ResilientPlane",
    "ScheduledFrame",
    "VectorPlane",
    "VirtualOutputQueues",
]
