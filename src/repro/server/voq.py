"""Virtual output queues with bounded-depth admission control.

One FIFO per destination (the classic VOQ arrangement that defeats
head-of-line blocking: a burst for output 3 never delays a word for
output 5).  Depth is bounded — an arrival to a full queue is **rejected
at admission** with a retry-after hint instead of buffered, so offered
load beyond capacity degrades into client-visible backpressure rather
than unbounded memory growth.

With ``tenants`` configured, each destination's FIFO splits into one
sub-FIFO per tenant class and the head pick becomes smoothed weighted
round-robin over the backlogged classes (:class:`_TenantQueue`) — the
deficit-style scheduler that gives a weight-8 tenant 8× the service of
a weight-1 tenant sharing the same hot output, plus an age override so
no class can be starved past ``starvation_cycles`` of relative delay.
The default (``tenants=None``) keeps the original plain-deque hot path
untouched.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from ..exceptions import AdmissionRejectedError

__all__ = ["DEFAULT_TENANT", "QueueEntry", "VirtualOutputQueues"]

#: Tenant class words belong to when the sender names none.
DEFAULT_TENANT = "default"


@dataclasses.dataclass(slots=True)
class QueueEntry:
    """One admitted word waiting for (or riding) a frame.

    ``future`` is set by the asyncio gateway so the submitting client
    can await the delivery receipt; the synchronous benchmark harness
    leaves it ``None``.  Words admitted through the batch path carry
    their batch tracker in ``batch`` and their position in the batch in
    ``batch_index`` instead of a per-word future — delivery fills the
    tracker's preallocated result arrays at ``batch_index`` and the
    tracker's single future fires when the whole batch has landed.
    (Two plain fields, not a tuple: the admission loop builds one entry
    per word, so even a tuple allocation shows up at full load.)
    """

    destination: int
    payload: Any
    enqueued_cycle: int
    future: Any = None
    requeues: int = 0
    batch: Any = None
    batch_index: int = 0
    tenant: str = DEFAULT_TENANT


class _TenantState:
    """Tenant registry shared by every destination's :class:`_TenantQueue`.

    Weights are global (a tenant has one weight, not one per output);
    the service/rescue counters feed the fairness accounting surfaced
    in ``stats`` and the ``repro_tenant_*`` metrics.  Tenants unknown at
    construction auto-register with weight 1 on their first word, so a
    misconfigured client degrades to best-effort instead of erroring.
    """

    __slots__ = ("weights", "starvation_cycles", "served", "rescues")

    def __init__(
        self, weights: Mapping[str, int], starvation_cycles: int
    ) -> None:
        self.weights: Dict[str, int] = dict(weights)
        self.starvation_cycles = starvation_cycles
        self.served: Dict[str, int] = {name: 0 for name in self.weights}
        self.rescues: Dict[str, int] = {name: 0 for name in self.weights}

    def ensure(self, tenant: str) -> None:
        if tenant not in self.weights:
            self.weights[tenant] = 1
            self.served[tenant] = 0
            self.rescues[tenant] = 0


class _TenantQueue:
    """One destination's queue in tenant mode: per-tenant FIFOs drained
    by smoothed weighted round-robin with a starvation age override.

    Mimics exactly the slice of the ``deque`` interface the VOQ uses
    (``append``/``appendleft``/``popleft``/``clear``/``len``/iteration)
    so every other code path — head picking, requeue, drain, depth
    accounting — is identical between the two modes.

    The pick is nginx-style smoothed weighted round-robin over the
    *backlogged* tenants: each pick credits every backlogged tenant its
    weight, serves the largest credit, and debits the winner by the
    total — interleaving service proportionally to weight instead of
    bursting.  Credits reset when a tenant's FIFO empties (plain DRR
    semantics: an idle tenant banks nothing).  Before committing to the
    weighted pick, the oldest head across tenants is checked: if it has
    waited ``starvation_cycles`` longer than the pick's head, it is
    served instead and the rescue is counted — a hard bound on relative
    delay even under pathological weight ratios.
    """

    __slots__ = ("_state", "_fifos", "_credit", "_len")

    def __init__(self, state: _TenantState) -> None:
        self._state = state
        self._fifos: Dict[str, Deque[QueueEntry]] = {}
        self._credit: Dict[str, int] = {}
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __iter__(self):
        for tenant in self._fifos:
            yield from self._fifos[tenant]

    def _fifo(self, tenant: str) -> Deque[QueueEntry]:
        fifo = self._fifos.get(tenant)
        if fifo is None:
            self._state.ensure(tenant)
            fifo = self._fifos[tenant] = deque()
            self._credit[tenant] = 0
        return fifo

    def append(self, entry: QueueEntry) -> None:
        self._fifo(entry.tenant).append(entry)
        self._len += 1

    def appendleft(self, entry: QueueEntry) -> None:
        self._fifo(entry.tenant).appendleft(entry)
        self._len += 1

    def clear(self) -> None:
        for fifo in self._fifos.values():
            fifo.clear()
        self._len = 0

    def tenant_depths(self) -> Dict[str, int]:
        return {
            tenant: len(fifo)
            for tenant, fifo in self._fifos.items()
            if fifo
        }

    def popleft(self) -> QueueEntry:
        if not self._len:
            raise IndexError("pop from an empty tenant queue")
        state = self._state
        fifos = self._fifos
        backlogged = [tenant for tenant, fifo in fifos.items() if fifo]
        if len(backlogged) == 1:
            pick = backlogged[0]
        else:
            weights = state.weights
            credit = self._credit
            total = 0
            pick = backlogged[0]
            best: Optional[int] = None
            for tenant in backlogged:
                weight = weights[tenant]
                total += weight
                value = credit[tenant] + weight
                credit[tenant] = value
                if best is None or value > best:
                    best = value
                    pick = tenant
            oldest = min(
                backlogged,
                key=lambda tenant: fifos[tenant][0].enqueued_cycle,
            )
            if (
                oldest != pick
                and fifos[oldest][0].enqueued_cycle + state.starvation_cycles
                < fifos[pick][0].enqueued_cycle
            ):
                state.rescues[oldest] += 1
                pick = oldest
            credit[pick] -= total
        fifo = fifos[pick]
        entry = fifo.popleft()
        if not fifo:
            self._credit[pick] = 0
        self._len -= 1
        state.served[pick] += 1
        return entry


class VirtualOutputQueues:
    """``n`` bounded FIFOs, one per output, with round-robin head pick.

    The round-robin start pointer makes :meth:`pop_heads` fair: when
    more than ``limit`` destinations have backlog, successive frames
    rotate which destinations ride first instead of always favouring
    low-numbered outputs.
    """

    def __init__(
        self,
        n: int,
        capacity: int,
        tenants: Optional[Mapping[str, int]] = None,
        starvation_cycles: int = 1024,
    ) -> None:
        if n < 1:
            raise ValueError(f"need at least one output queue, got n={n}")
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.n = n
        self.capacity = capacity
        if tenants is None:
            self._tenant_state: Optional[_TenantState] = None
            self._tenant_admission: Optional[Dict[str, Dict[str, int]]] = None
            self._queues: List[Deque[QueueEntry]] = [
                deque() for _ in range(n)
            ]
        else:
            if not tenants:
                raise ValueError("tenants must name at least one class")
            for name, weight in tenants.items():
                if not isinstance(name, str) or not name:
                    raise ValueError(
                        f"tenant names must be non-empty strings, got {name!r}"
                    )
                if (
                    not isinstance(weight, int)
                    or isinstance(weight, bool)
                    or weight < 1
                ):
                    raise ValueError(
                        f"tenant {name!r} needs an integer weight >= 1, "
                        f"got {weight!r}"
                    )
            if starvation_cycles < 1:
                raise ValueError(
                    f"starvation_cycles must be >= 1, got {starvation_cycles}"
                )
            self._tenant_state = _TenantState(tenants, starvation_cycles)
            self._tenant_admission = {
                name: {"offered": 0, "accepted": 0, "rejected": 0,
                       "requeued": 0}
                for name in tenants
            }
            self._queues = [
                _TenantQueue(self._tenant_state) for _ in range(n)
            ]
        self._rr_start = 0
        self._queued = 0  # maintained so ``total`` is O(1) on the hot path
        # Admission counters (offered = accepted + rejected).
        self.offered = 0
        self.accepted = 0
        self.rejected = 0
        self.requeued = 0
        self.max_depth = 0

    @property
    def tenants(self) -> Optional[Dict[str, int]]:
        """Live tenant weights (including auto-registered ones), or
        ``None`` when tenant scheduling is off."""
        if self._tenant_state is None:
            return None
        return dict(self._tenant_state.weights)

    def _tenant_row(self, tenant: str) -> Dict[str, int]:
        assert self._tenant_admission is not None
        row = self._tenant_admission.get(tenant)
        if row is None:
            row = self._tenant_admission[tenant] = {
                "offered": 0, "accepted": 0, "rejected": 0, "requeued": 0
            }
        return row

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, entry: QueueEntry) -> None:
        """Enqueue *entry* or raise :class:`AdmissionRejectedError`.

        The retry-after hint is the queue's current depth: the fabric
        drains at most one word per destination per frame, so a full
        queue needs at least ``depth`` cycles before a slot frees.
        """
        rejection = self.try_admit(entry)
        if rejection is not None:
            raise rejection

    def try_admit(self, entry: QueueEntry) -> Optional[AdmissionRejectedError]:
        """Enqueue *entry*; return the rejection instead of raising.

        The batch admission loop calls this once per word — building
        and unwinding an exception per rejected word would dominate an
        overloaded batch's cost, so rejections come back as values.
        """
        self.offered += 1
        row = (
            self._tenant_row(entry.tenant)
            if self._tenant_admission is not None
            else None
        )
        if row is not None:
            row["offered"] += 1
        if not 0 <= entry.destination < self.n:
            self.rejected += 1
            if row is not None:
                row["rejected"] += 1
            return AdmissionRejectedError(entry.destination, 0, 0)
        queue = self._queues[entry.destination]
        depth = len(queue)
        if depth >= self.capacity:
            self.rejected += 1
            if row is not None:
                row["rejected"] += 1
            return AdmissionRejectedError(entry.destination, depth, depth)
        queue.append(entry)
        self.accepted += 1
        if row is not None:
            row["accepted"] += 1
        self._queued += 1
        if depth + 1 > self.max_depth:
            self.max_depth = depth + 1
        return None

    def admit_batch(
        self,
        dests: List[int],
        payloads: Optional[List[Any]],
        cycle: int,
        tracker: Any,
        retry_after: Any,
        indices: Any,
        tenant: str = DEFAULT_TENANT,
    ) -> Tuple[int, List[int]]:
        """Admit the batch words at *indices*; return ``(admitted, rejected)``.

        The whole admission loop lives here so the per-word cost is a
        capacity check and a deque append with every lookup hoisted —
        no per-word method call, no per-word exception.  Rejected
        indices get their depth written into the *retry_after* array
        (the same hint :meth:`admit` raises); accepted indices are
        **not** cleared — the caller zeroes the hints of any indices it
        re-offers (a fresh batch's array starts zeroed), keeping the
        accept path free of per-word numpy stores.  The caller owns
        observer notification and any retry rounds.  Destinations must
        already be range-checked (the gateway validates the whole array
        in one vectorized pass).
        """
        queues = self._queues
        capacity = self.capacity
        max_depth = self.max_depth
        entry_cls = QueueEntry
        admitted = 0
        rejected: List[int] = []
        rejected_append = rejected.append
        if payloads is None:
            for index in indices:
                dest = dests[index]
                queue = queues[dest]
                depth = len(queue)
                if depth < capacity:
                    queue.append(
                        entry_cls(
                            dest, None, cycle, None, 0, tracker, index,
                            tenant,
                        )
                    )
                    admitted += 1
                    if depth >= max_depth:
                        max_depth = depth + 1
                else:
                    retry_after[index] = depth
                    rejected_append(index)
        else:
            for index in indices:
                dest = dests[index]
                queue = queues[dest]
                depth = len(queue)
                if depth < capacity:
                    queue.append(
                        entry_cls(
                            dest, payloads[index], cycle, None, 0,
                            tracker, index, tenant,
                        )
                    )
                    admitted += 1
                    if depth >= max_depth:
                        max_depth = depth + 1
                else:
                    retry_after[index] = depth
                    rejected_append(index)
        self.max_depth = max_depth
        offered = admitted + len(rejected)
        self.offered += offered
        self.accepted += admitted
        self.rejected += len(rejected)
        self._queued += admitted
        if self._tenant_admission is not None:
            row = self._tenant_row(tenant)
            row["offered"] += offered
            row["accepted"] += admitted
            row["rejected"] += len(rejected)
        return admitted, rejected

    def requeue_front(self, entries: List[QueueEntry]) -> None:
        """Put already-admitted entries back at the head of their queues.

        Used when a plane dies with frames in flight: the words were
        admitted once and must not be re-rejected, so this may push a
        queue transiently above capacity (new admissions still bounce
        until it drains).
        """
        for entry in reversed(entries):
            entry.requeues += 1
            self._queues[entry.destination].appendleft(entry)
            self.requeued += 1
            self._queued += 1
            if self._tenant_admission is not None:
                self._tenant_row(entry.tenant)["requeued"] += 1
            self.max_depth = max(
                self.max_depth, len(self._queues[entry.destination])
            )

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pop_heads(self, limit: Optional[int] = None) -> List[QueueEntry]:
        """Pop the head word of up to *limit* distinct non-empty queues.

        By construction the result has pairwise-distinct destinations —
        exactly the conflict-free partial traffic one frame can carry.
        """
        if limit is None:
            limit = self.n
        picked: List[QueueEntry] = []
        if limit > 0:
            append = picked.append
            queues = self._queues
            start = self._rr_start
            # Two straight slices instead of a modulo per destination.
            for queue in queues[start:]:
                if queue:
                    append(queue.popleft())
                    if len(picked) >= limit:
                        break
            else:
                for queue in queues[:start]:
                    if queue:
                        append(queue.popleft())
                        if len(picked) >= limit:
                            break
        self._rr_start = (self._rr_start + 1) % self.n
        self._queued -= len(picked)
        return picked

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def depth(self, destination: int) -> int:
        return len(self._queues[destination])

    @property
    def total(self) -> int:
        return self._queued

    def depths(self) -> List[int]:
        return [len(queue) for queue in self._queues]

    def drain_all(self) -> List[QueueEntry]:
        """Remove and return every queued entry (gateway shutdown)."""
        stranded: List[QueueEntry] = []
        for queue in self._queues:
            stranded.extend(queue)
            queue.clear()
        self._queued = 0
        return stranded

    def tenant_snapshot(self) -> Optional[Dict[str, Dict[str, Any]]]:
        """Per-tenant fairness accounting, or ``None`` when tenants are off.

        ``served`` counts scheduler pops (words placed onto frames) and
        ``rescues`` counts starvation-override picks — a non-zero rescue
        count is the signal that one class was held off long enough for
        the age guard to intervene.
        """
        state = self._tenant_state
        if state is None or self._tenant_admission is None:
            return None
        queued: Dict[str, int] = {name: 0 for name in state.weights}
        for queue in self._queues:
            for tenant, depth in queue.tenant_depths().items():  # type: ignore[union-attr]
                queued[tenant] = queued.get(tenant, 0) + depth
        rows: Dict[str, Dict[str, Any]] = {}
        for tenant in state.weights:
            admission = self._tenant_row(tenant)
            rows[tenant] = {
                "weight": state.weights[tenant],
                "queued": queued.get(tenant, 0),
                "served": state.served[tenant],
                "starvation_rescues": state.rescues[tenant],
                **admission,
            }
        return rows

    def snapshot(self) -> Dict[str, Any]:
        depths = self.depths()
        snap = {
            "capacity": self.capacity,
            "queued": sum(depths),
            "depths": depths,
            "max_depth": self.max_depth,
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "requeued": self.requeued,
        }
        tenants = self.tenant_snapshot()
        if tenants is not None:
            snap["tenants"] = tenants
        return snap

    def __repr__(self) -> str:
        return (
            f"VirtualOutputQueues(n={self.n}, capacity={self.capacity}, "
            f"queued={self.total})"
        )
