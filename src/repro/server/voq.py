"""Virtual output queues with bounded-depth admission control.

One FIFO per destination (the classic VOQ arrangement that defeats
head-of-line blocking: a burst for output 3 never delays a word for
output 5).  Depth is bounded — an arrival to a full queue is **rejected
at admission** with a retry-after hint instead of buffered, so offered
load beyond capacity degrades into client-visible backpressure rather
than unbounded memory growth.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..exceptions import AdmissionRejectedError

__all__ = ["QueueEntry", "VirtualOutputQueues"]


@dataclasses.dataclass
class QueueEntry:
    """One admitted word waiting for (or riding) a frame.

    ``future`` is set by the asyncio gateway so the submitting client
    can await the delivery receipt; the synchronous benchmark harness
    leaves it ``None``.
    """

    destination: int
    payload: Any
    enqueued_cycle: int
    future: Any = None
    requeues: int = 0


class VirtualOutputQueues:
    """``n`` bounded FIFOs, one per output, with round-robin head pick.

    The round-robin start pointer makes :meth:`pop_heads` fair: when
    more than ``limit`` destinations have backlog, successive frames
    rotate which destinations ride first instead of always favouring
    low-numbered outputs.
    """

    def __init__(self, n: int, capacity: int) -> None:
        if n < 1:
            raise ValueError(f"need at least one output queue, got n={n}")
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.n = n
        self.capacity = capacity
        self._queues: List[Deque[QueueEntry]] = [deque() for _ in range(n)]
        self._rr_start = 0
        # Admission counters (offered = accepted + rejected).
        self.offered = 0
        self.accepted = 0
        self.rejected = 0
        self.requeued = 0
        self.max_depth = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, entry: QueueEntry) -> None:
        """Enqueue *entry* or raise :class:`AdmissionRejectedError`.

        The retry-after hint is the queue's current depth: the fabric
        drains at most one word per destination per frame, so a full
        queue needs at least ``depth`` cycles before a slot frees.
        """
        self.offered += 1
        if not 0 <= entry.destination < self.n:
            self.rejected += 1
            raise AdmissionRejectedError(
                entry.destination, 0, 0
            ) from ValueError(
                f"destination {entry.destination} out of range for N={self.n}"
            )
        queue = self._queues[entry.destination]
        if len(queue) >= self.capacity:
            self.rejected += 1
            raise AdmissionRejectedError(
                entry.destination, len(queue), len(queue)
            )
        queue.append(entry)
        self.accepted += 1
        self.max_depth = max(self.max_depth, len(queue))

    def requeue_front(self, entries: List[QueueEntry]) -> None:
        """Put already-admitted entries back at the head of their queues.

        Used when a plane dies with frames in flight: the words were
        admitted once and must not be re-rejected, so this may push a
        queue transiently above capacity (new admissions still bounce
        until it drains).
        """
        for entry in reversed(entries):
            entry.requeues += 1
            self._queues[entry.destination].appendleft(entry)
            self.requeued += 1
            self.max_depth = max(
                self.max_depth, len(self._queues[entry.destination])
            )

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pop_heads(self, limit: Optional[int] = None) -> List[QueueEntry]:
        """Pop the head word of up to *limit* distinct non-empty queues.

        By construction the result has pairwise-distinct destinations —
        exactly the conflict-free partial traffic one frame can carry.
        """
        if limit is None:
            limit = self.n
        picked: List[QueueEntry] = []
        for offset in range(self.n):
            if len(picked) >= limit:
                break
            destination = (self._rr_start + offset) % self.n
            queue = self._queues[destination]
            if queue:
                picked.append(queue.popleft())
        self._rr_start = (self._rr_start + 1) % self.n
        return picked

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def depth(self, destination: int) -> int:
        return len(self._queues[destination])

    @property
    def total(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def depths(self) -> List[int]:
        return [len(queue) for queue in self._queues]

    def drain_all(self) -> List[QueueEntry]:
        """Remove and return every queued entry (gateway shutdown)."""
        stranded: List[QueueEntry] = []
        for queue in self._queues:
            stranded.extend(queue)
            queue.clear()
        return stranded

    def snapshot(self) -> Dict[str, Any]:
        depths = self.depths()
        return {
            "capacity": self.capacity,
            "queued": sum(depths),
            "depths": depths,
            "max_depth": self.max_depth,
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "requeued": self.requeued,
        }

    def __repr__(self) -> str:
        return (
            f"VirtualOutputQueues(n={self.n}, capacity={self.capacity}, "
            f"queued={self.total})"
        )
