"""Virtual output queues with bounded-depth admission control.

One FIFO per destination (the classic VOQ arrangement that defeats
head-of-line blocking: a burst for output 3 never delays a word for
output 5).  Depth is bounded — an arrival to a full queue is **rejected
at admission** with a retry-after hint instead of buffered, so offered
load beyond capacity degrades into client-visible backpressure rather
than unbounded memory growth.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..exceptions import AdmissionRejectedError

__all__ = ["QueueEntry", "VirtualOutputQueues"]


@dataclasses.dataclass(slots=True)
class QueueEntry:
    """One admitted word waiting for (or riding) a frame.

    ``future`` is set by the asyncio gateway so the submitting client
    can await the delivery receipt; the synchronous benchmark harness
    leaves it ``None``.  Words admitted through the batch path carry
    their batch tracker in ``batch`` and their position in the batch in
    ``batch_index`` instead of a per-word future — delivery fills the
    tracker's preallocated result arrays at ``batch_index`` and the
    tracker's single future fires when the whole batch has landed.
    (Two plain fields, not a tuple: the admission loop builds one entry
    per word, so even a tuple allocation shows up at full load.)
    """

    destination: int
    payload: Any
    enqueued_cycle: int
    future: Any = None
    requeues: int = 0
    batch: Any = None
    batch_index: int = 0


class VirtualOutputQueues:
    """``n`` bounded FIFOs, one per output, with round-robin head pick.

    The round-robin start pointer makes :meth:`pop_heads` fair: when
    more than ``limit`` destinations have backlog, successive frames
    rotate which destinations ride first instead of always favouring
    low-numbered outputs.
    """

    def __init__(self, n: int, capacity: int) -> None:
        if n < 1:
            raise ValueError(f"need at least one output queue, got n={n}")
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.n = n
        self.capacity = capacity
        self._queues: List[Deque[QueueEntry]] = [deque() for _ in range(n)]
        self._rr_start = 0
        self._queued = 0  # maintained so ``total`` is O(1) on the hot path
        # Admission counters (offered = accepted + rejected).
        self.offered = 0
        self.accepted = 0
        self.rejected = 0
        self.requeued = 0
        self.max_depth = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, entry: QueueEntry) -> None:
        """Enqueue *entry* or raise :class:`AdmissionRejectedError`.

        The retry-after hint is the queue's current depth: the fabric
        drains at most one word per destination per frame, so a full
        queue needs at least ``depth`` cycles before a slot frees.
        """
        rejection = self.try_admit(entry)
        if rejection is not None:
            raise rejection

    def try_admit(self, entry: QueueEntry) -> Optional[AdmissionRejectedError]:
        """Enqueue *entry*; return the rejection instead of raising.

        The batch admission loop calls this once per word — building
        and unwinding an exception per rejected word would dominate an
        overloaded batch's cost, so rejections come back as values.
        """
        self.offered += 1
        if not 0 <= entry.destination < self.n:
            self.rejected += 1
            return AdmissionRejectedError(entry.destination, 0, 0)
        queue = self._queues[entry.destination]
        depth = len(queue)
        if depth >= self.capacity:
            self.rejected += 1
            return AdmissionRejectedError(entry.destination, depth, depth)
        queue.append(entry)
        self.accepted += 1
        self._queued += 1
        if depth + 1 > self.max_depth:
            self.max_depth = depth + 1
        return None

    def admit_batch(
        self,
        dests: List[int],
        payloads: Optional[List[Any]],
        cycle: int,
        tracker: Any,
        retry_after: Any,
        indices: Any,
    ) -> Tuple[int, List[int]]:
        """Admit the batch words at *indices*; return ``(admitted, rejected)``.

        The whole admission loop lives here so the per-word cost is a
        capacity check and a deque append with every lookup hoisted —
        no per-word method call, no per-word exception.  Rejected
        indices get their depth written into the *retry_after* array
        (the same hint :meth:`admit` raises); accepted indices are
        **not** cleared — the caller zeroes the hints of any indices it
        re-offers (a fresh batch's array starts zeroed), keeping the
        accept path free of per-word numpy stores.  The caller owns
        observer notification and any retry rounds.  Destinations must
        already be range-checked (the gateway validates the whole array
        in one vectorized pass).
        """
        queues = self._queues
        capacity = self.capacity
        max_depth = self.max_depth
        entry_cls = QueueEntry
        admitted = 0
        rejected: List[int] = []
        rejected_append = rejected.append
        if payloads is None:
            for index in indices:
                dest = dests[index]
                queue = queues[dest]
                depth = len(queue)
                if depth < capacity:
                    queue.append(
                        entry_cls(dest, None, cycle, None, 0, tracker, index)
                    )
                    admitted += 1
                    if depth >= max_depth:
                        max_depth = depth + 1
                else:
                    retry_after[index] = depth
                    rejected_append(index)
        else:
            for index in indices:
                dest = dests[index]
                queue = queues[dest]
                depth = len(queue)
                if depth < capacity:
                    queue.append(
                        entry_cls(
                            dest, payloads[index], cycle, None, 0,
                            tracker, index,
                        )
                    )
                    admitted += 1
                    if depth >= max_depth:
                        max_depth = depth + 1
                else:
                    retry_after[index] = depth
                    rejected_append(index)
        self.max_depth = max_depth
        offered = admitted + len(rejected)
        self.offered += offered
        self.accepted += admitted
        self.rejected += len(rejected)
        self._queued += admitted
        return admitted, rejected

    def requeue_front(self, entries: List[QueueEntry]) -> None:
        """Put already-admitted entries back at the head of their queues.

        Used when a plane dies with frames in flight: the words were
        admitted once and must not be re-rejected, so this may push a
        queue transiently above capacity (new admissions still bounce
        until it drains).
        """
        for entry in reversed(entries):
            entry.requeues += 1
            self._queues[entry.destination].appendleft(entry)
            self.requeued += 1
            self._queued += 1
            self.max_depth = max(
                self.max_depth, len(self._queues[entry.destination])
            )

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pop_heads(self, limit: Optional[int] = None) -> List[QueueEntry]:
        """Pop the head word of up to *limit* distinct non-empty queues.

        By construction the result has pairwise-distinct destinations —
        exactly the conflict-free partial traffic one frame can carry.
        """
        if limit is None:
            limit = self.n
        picked: List[QueueEntry] = []
        if limit > 0:
            append = picked.append
            queues = self._queues
            start = self._rr_start
            # Two straight slices instead of a modulo per destination.
            for queue in queues[start:]:
                if queue:
                    append(queue.popleft())
                    if len(picked) >= limit:
                        break
            else:
                for queue in queues[:start]:
                    if queue:
                        append(queue.popleft())
                        if len(picked) >= limit:
                            break
        self._rr_start = (self._rr_start + 1) % self.n
        self._queued -= len(picked)
        return picked

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def depth(self, destination: int) -> int:
        return len(self._queues[destination])

    @property
    def total(self) -> int:
        return self._queued

    def depths(self) -> List[int]:
        return [len(queue) for queue in self._queues]

    def drain_all(self) -> List[QueueEntry]:
        """Remove and return every queued entry (gateway shutdown)."""
        stranded: List[QueueEntry] = []
        for queue in self._queues:
            stranded.extend(queue)
            queue.clear()
        self._queued = 0
        return stranded

    def snapshot(self) -> Dict[str, Any]:
        depths = self.depths()
        return {
            "capacity": self.capacity,
            "queued": sum(depths),
            "depths": depths,
            "max_depth": self.max_depth,
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "requeued": self.requeued,
        }

    def __repr__(self) -> str:
        return (
            f"VirtualOutputQueues(n={self.n}, capacity={self.capacity}, "
            f"queued={self.total})"
        )
