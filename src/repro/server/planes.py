"""Fabric planes: the switching capacity behind the gateway.

A *plane* is one independent copy of the fabric plus the book-keeping
to track which frames are inside it.  The kinds:

* :class:`PipelinedPlane` — a raw
  :class:`~repro.core.pipeline.PipelinedBNBFabric` clocked frame-per-
  cycle, ``m`` frames in flight back-to-back.  Deliveries are verified
  at the plane boundary; a misdelivery (physical fault on an
  unprotected plane) fails the plane, and its words requeue.
* :class:`VectorPlane` — the same schedule on the compiled numpy
  engine (:class:`~repro.core.pipeline_fast.VectorPipelinedFabric`).
  Boundary verification is *sampled* so it cannot erase the engine's
  speed advantage: a full check every ``verify_every``-th frame, a
  rotating spot check of a few destinations otherwise.  A detected
  misdelivery still kills the plane and requeues everything in flight.
* :class:`BackendPlane` — the batch plane's buffering and verification
  over any registered :class:`~repro.backends.RoutingBackend` (KR-Benes,
  the multiway sorter, or the arena's measured winner under
  ``engine="auto"``; see ``docs/backends.md``).
* :class:`ResilientPlane` — a
  :class:`~repro.service.ResilientFabric` (object engine) or
  :class:`~repro.service.ResilientVectorFabric` (vector engine) whose
  submit path already verifies, retries, BIST-diagnoses and fails over
  to a Benes spare, so a stuck switch degrades the plane instead of
  failing it.  One frame per step (the resilient submit drains its
  pipeline), so the resilient kinds trade peak throughput for fault
  tolerance — the vector fabric narrows that trade substantially.

All expose the same interface the gateway's clock loop drives:
``ready`` / ``offer`` / ``step`` / ``kill`` / ``load``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..backends import RoutingBackend, compiled_backend
from ..core.pipeline import ControlOverride, PipelinedBNBFabric
from ..core.pipeline_fast import VectorPipelinedFabric, route_frame_batch
from ..core.words import Word
from ..exceptions import FaultServiceError, MisdeliveryError
from ..service.fabric import ResilientFabric
from .scheduler import ScheduledFrame
from .voq import QueueEntry

__all__ = [
    "BackendPlane",
    "BatchVectorPlane",
    "CompletedFrame",
    "PipelinedPlane",
    "ResilientPlane",
    "VectorPlane",
]


@dataclasses.dataclass
class CompletedFrame:
    """A frame that left a plane with every word on its addressed line.

    ``outputs`` is the per-line Word list for the object-engine planes;
    :class:`BatchVectorPlane` verifies arithmetically on source-index
    arrays and leaves it ``None`` — nothing downstream of a plane reads
    ``outputs`` (the gateway resolves receipts from ``frame.entries``),
    so batch completions never materialize per-word objects.
    """

    frame: ScheduledFrame
    outputs: Optional[List[Optional[Word]]]
    plane_id: int
    mode: str  # "clean" | "degraded" | "failover"


class _PlaneBase:
    """Shared identity, health and accounting for both plane kinds."""

    def __init__(self, plane_id: int) -> None:
        self.plane_id = plane_id
        self.healthy = True
        self.frames_delivered = 0
        self.words_delivered = 0
        self.failure: Optional[str] = None
        self._in_flight: Dict[int, ScheduledFrame] = {}

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    def kill(self, reason: str = "killed") -> List[QueueEntry]:
        """Take the plane out of service; return stranded queue entries.

        Idempotent: a second kill returns nothing.  The caller (the
        gateway) requeues the entries so in-flight words survive the
        plane's death.
        """
        if not self.healthy:
            return []
        self.healthy = False
        self.failure = reason
        stranded = [
            entry
            for frame in self._in_flight.values()
            for entry in frame.entries.values()
        ]
        self._in_flight.clear()
        return stranded

    def _verify(
        self, frame: ScheduledFrame, outputs: List[Optional[Word]]
    ) -> None:
        """Every entry's word must sit on its addressed line, payload intact."""
        for destination, entry in frame.entries.items():
            word = outputs[destination]
            if word is None or word.payload is not entry:
                raise MisdeliveryError(
                    self.plane_id,
                    f"frame {frame.tag}: output {destination} carries "
                    f"{word!r}, expected the word for {entry.destination}",
                )

    def describe(self) -> Dict[str, Any]:
        return {
            "id": self.plane_id,
            "kind": type(self).__name__,
            "healthy": self.healthy,
            "failure": self.failure,
            "in_flight": self.in_flight,
            "frames_delivered": self.frames_delivered,
            "words_delivered": self.words_delivered,
        }


class PipelinedPlane(_PlaneBase):
    """A raw pipelined BNB plane: one frame enters per cycle, ``m`` in flight."""

    def __init__(
        self,
        plane_id: int,
        m: int,
        control_override: Optional[ControlOverride] = None,
    ) -> None:
        super().__init__(plane_id)
        self.m = m
        self.fabric = PipelinedBNBFabric(
            m, control_override=control_override, retain_delivered=False
        )
        self._delivered_now: List[Tuple[Any, List[Word]]] = []
        self.fabric.add_delivery_hook(
            lambda tag, outputs: self._delivered_now.append((tag, outputs))
        )

    @property
    def ready(self) -> bool:
        return self.healthy and self.fabric.can_accept

    @property
    def load(self) -> int:
        return self.in_flight + (0 if self.fabric.can_accept else 1)

    def offer(self, frame: ScheduledFrame) -> None:
        if not self.ready:
            raise ValueError(f"plane {self.plane_id} cannot accept a frame now")
        self.fabric.offer_words(frame.words, tag=frame.tag)
        self._in_flight[frame.tag] = frame

    def step(self) -> Tuple[List[CompletedFrame], List[QueueEntry]]:
        """One clock: returns (verified completions, entries to requeue).

        A verification failure — only possible with a physical fault
        injected into this unprotected plane — fails the whole plane:
        the bad frame's words and everything else in flight requeue,
        and ``healthy`` drops so the pool stops scheduling onto it.
        """
        if not self.healthy or (
            self.fabric.in_flight == 0 and self.fabric.can_accept
        ):
            return [], []
        self._delivered_now = []
        self.fabric.step()
        completed: List[CompletedFrame] = []
        for tag, outputs in self._delivered_now:
            frame = self._in_flight.pop(tag)
            try:
                self._verify(frame, outputs)
            except MisdeliveryError as error:
                requeue = list(frame.entries.values())
                requeue.extend(self.kill(reason=str(error)))
                return completed, requeue
            self.frames_delivered += 1
            self.words_delivered += frame.active
            completed.append(
                CompletedFrame(
                    frame=frame,
                    outputs=outputs,
                    plane_id=self.plane_id,
                    mode="clean",
                )
            )
        return completed, []

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info["engine"] = "object"
        return info


class VectorPlane(_PlaneBase):
    """A compiled-plan numpy plane with sampled boundary verification.

    Same clocking contract as :class:`PipelinedPlane` — one frame may
    enter per cycle, ``m`` in flight — but the fabric is a
    :class:`~repro.core.pipeline_fast.VectorPipelinedFabric`, so a step
    costs a handful of whole-array passes instead of a Python-object
    walk per word.  Verifying every line of every frame would put the
    per-word Python loop right back on the hot path, so verification is
    sampled: every ``verify_every``-th delivered frame is fully
    checked; the others get ``spot_checks`` rotating per-destination
    probes.  Any detected misdelivery (Theorem-2-impossible without a
    fault or engine bug) kills the plane and requeues its words, same
    as the object plane.
    """

    def __init__(
        self,
        plane_id: int,
        m: int,
        verify_every: int = 16,
        spot_checks: int = 2,
    ) -> None:
        super().__init__(plane_id)
        if verify_every < 1:
            raise ValueError(
                f"verify_every must be >= 1, got {verify_every}"
            )
        if spot_checks < 0:
            raise ValueError(
                f"spot_checks must be >= 0, got {spot_checks}"
            )
        self.m = m
        self.verify_every = verify_every
        self.spot_checks = spot_checks
        self.full_verifies = 0
        self.spot_verifies = 0
        self.fabric = VectorPipelinedFabric(m, retain_delivered=False)
        self._delivered_now: List[Tuple[Any, List[Word]]] = []
        self.fabric.add_delivery_hook(
            lambda tag, outputs: self._delivered_now.append((tag, outputs))
        )
        self._verified_counter = 0
        self._spot_cursor = 0

    @property
    def ready(self) -> bool:
        return self.healthy and self.fabric.can_accept

    @property
    def load(self) -> int:
        return self.in_flight + (0 if self.fabric.can_accept else 1)

    def offer(self, frame: ScheduledFrame) -> None:
        if not self.ready:
            raise ValueError(f"plane {self.plane_id} cannot accept a frame now")
        self.fabric.offer_words(frame.words, tag=frame.tag)
        self._in_flight[frame.tag] = frame

    def _verify_sampled(
        self, frame: ScheduledFrame, outputs: List[Optional[Word]]
    ) -> None:
        """Full verify every k-th frame, rotating spot checks otherwise."""
        index = self._verified_counter
        self._verified_counter += 1
        if index % self.verify_every == 0:
            self.full_verifies += 1
            self._verify(frame, outputs)
            return
        if not self.spot_checks or not frame.entries:
            return
        self.spot_verifies += 1
        destinations = sorted(frame.entries)
        for probe in range(min(self.spot_checks, len(destinations))):
            destination = destinations[
                (self._spot_cursor + probe) % len(destinations)
            ]
            entry = frame.entries[destination]
            word = outputs[destination]
            if word is None or word.payload is not entry:
                raise MisdeliveryError(
                    self.plane_id,
                    f"frame {frame.tag}: spot check found output "
                    f"{destination} carrying {word!r}, expected the word "
                    f"for {entry.destination}",
                )
        self._spot_cursor = (self._spot_cursor + self.spot_checks) % max(
            len(destinations), 1
        )

    def step(self) -> Tuple[List[CompletedFrame], List[QueueEntry]]:
        """One clock: returns (verified completions, entries to requeue)."""
        if not self.healthy or (
            self.fabric.in_flight == 0 and self.fabric.can_accept
        ):
            return [], []
        self._delivered_now = []
        self.fabric.step()
        completed: List[CompletedFrame] = []
        for tag, outputs in self._delivered_now:
            frame = self._in_flight.pop(tag)
            try:
                self._verify_sampled(frame, outputs)
            except MisdeliveryError as error:
                requeue = list(frame.entries.values())
                requeue.extend(self.kill(reason=str(error)))
                return completed, requeue
            self.frames_delivered += 1
            self.words_delivered += frame.active
            completed.append(
                CompletedFrame(
                    frame=frame,
                    outputs=outputs,
                    plane_id=self.plane_id,
                    mode="clean",
                )
            )
        return completed, []

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info["engine"] = "vector"
        info["verify_every"] = self.verify_every
        info["full_verifies"] = self.full_verifies
        info["spot_verifies"] = self.spot_verifies
        return info


class BatchVectorPlane(_PlaneBase):
    """A frame-axis batched numpy plane: many frames per gather.

    Where :class:`VectorPlane` steps one frame per fabric cycle, this
    plane buffers up to ``batch_window`` frames and routes them all in
    **one** :func:`~repro.core.pipeline_fast.route_frame_batch` call —
    every stage of the BNB fabric becomes a single numpy gather over a
    ``(batch, n)`` matrix, so the interpreter cost of a stage is paid
    once per *batch of frames* instead of once per frame.  This is the
    dataplane behind the gateway's ``send_batch`` path and the
    ``--engine batch`` deployment.

    Verification is total, not sampled, and word-free: the routed
    ``sources`` row of a frame must satisfy ``sources[dest] ==
    line_of[dest]`` for every genuine destination, which one vectorized
    comparison over the frame's ``real_dests``/``real_lines`` arrays
    checks without constructing a single :class:`Word`.  A failed check
    kills the plane and requeues everything still inside, the same
    containment contract as every other plane kind.
    """

    def __init__(self, plane_id: int, m: int, batch_window: int = 32) -> None:
        super().__init__(plane_id)
        if batch_window < 1:
            raise ValueError(
                f"batch_window must be >= 1, got {batch_window}"
            )
        self.m = m
        self.n = 1 << m
        self.batch_window = batch_window
        self.batches_routed = 0
        self._pending: List[ScheduledFrame] = []
        # Prewarm: compile the per-m gather plan now so the first
        # served batch pays no compile latency (see docs/backends.md).
        from ..core.plan import compiled_plan

        compiled_plan(m)

    @property
    def ready(self) -> bool:
        return self.healthy and len(self._pending) < self.batch_window

    @property
    def load(self) -> int:
        return self.in_flight

    def offer(self, frame: ScheduledFrame) -> None:
        if not self.ready:
            raise ValueError(f"plane {self.plane_id} cannot accept a frame now")
        self._pending.append(frame)
        self._in_flight[frame.tag] = frame

    def kill(self, reason: str = "killed") -> List[QueueEntry]:
        stranded = super().kill(reason=reason)
        self._pending.clear()
        return stranded

    def step(self) -> Tuple[List[CompletedFrame], List[QueueEntry]]:
        """Route every buffered frame in one batched kernel call."""
        if not self.healthy or not self._pending:
            return [], []
        frames, self._pending = self._pending, []
        addresses = np.stack([frame.address_array for frame in frames])
        sources = route_frame_batch(self.m, addresses)
        self.batches_routed += 1
        completed: List[CompletedFrame] = []
        for row, frame in zip(sources, frames):
            self._in_flight.pop(frame.tag, None)
            dests = frame.real_dests
            if dests.size and not np.array_equal(
                row[dests], frame.real_lines
            ):
                bad = dests[row[dests] != frame.real_lines]
                requeue = list(frame.entries.values())
                requeue.extend(
                    self.kill(
                        reason=str(
                            MisdeliveryError(
                                self.plane_id,
                                f"frame {frame.tag}: outputs {bad.tolist()} "
                                f"carry the wrong source lines",
                            )
                        )
                    )
                )
                return completed, requeue
            self.frames_delivered += 1
            self.words_delivered += frame.active
            completed.append(
                CompletedFrame(
                    frame=frame,
                    outputs=None,
                    plane_id=self.plane_id,
                    mode="clean",
                )
            )
        return completed, []

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info["engine"] = "batch"
        info["batch_window"] = self.batch_window
        info["batches_routed"] = self.batches_routed
        return info


class BackendPlane(_PlaneBase):
    """A batch plane routing through a registered compiled backend.

    The serving end of the backend arena (see ``docs/backends.md``):
    identical buffering, batching and containment contract to
    :class:`BatchVectorPlane`, but the routing kernel is whatever
    :class:`~repro.backends.RoutingBackend` the gateway picked —
    hard-wired by name (``engine="krbenes"``) or the measured winner
    of the arena calibration (``engine="auto"``).  Verification stays
    total and backend-agnostic: the routed ``sources`` rows must put
    every genuine destination's word on its addressed line, checked
    arithmetically against ``real_dests``/``real_lines`` exactly as the
    batch plane does, so a buggy (or merely disagreeing) backend kills
    the plane and requeues its words instead of misdelivering.
    """

    def __init__(
        self,
        plane_id: int,
        m: int,
        backend: "RoutingBackend | str" = "bnb",
        batch_window: int = 32,
    ) -> None:
        super().__init__(plane_id)
        if batch_window < 1:
            raise ValueError(
                f"batch_window must be >= 1, got {batch_window}"
            )
        self.m = m
        self.n = 1 << m
        # Accept a name (compiled through the shared per-process cache)
        # or an already-compiled engine (the auto gateway passes one so
        # every plane shares the calibrated winner).
        self.backend = (
            compiled_backend(backend, m)
            if isinstance(backend, str)
            else backend
        )
        self.batch_window = batch_window
        self.batches_routed = 0
        self._pending: List[ScheduledFrame] = []

    @property
    def ready(self) -> bool:
        return self.healthy and len(self._pending) < self.batch_window

    @property
    def load(self) -> int:
        return self.in_flight

    def offer(self, frame: ScheduledFrame) -> None:
        if not self.ready:
            raise ValueError(f"plane {self.plane_id} cannot accept a frame now")
        self._pending.append(frame)
        self._in_flight[frame.tag] = frame

    def kill(self, reason: str = "killed") -> List[QueueEntry]:
        stranded = super().kill(reason=reason)
        self._pending.clear()
        return stranded

    def step(self) -> Tuple[List[CompletedFrame], List[QueueEntry]]:
        """Route every buffered frame through the backend in one call."""
        if not self.healthy or not self._pending:
            return [], []
        frames, self._pending = self._pending, []
        if len(frames) == 1:
            sources = self.backend.route_frame(frames[0].address_array)[
                None, :
            ]
        else:
            sources = self.backend.route_frame_batch(
                np.stack([frame.address_array for frame in frames])
            )
        self.batches_routed += 1
        completed: List[CompletedFrame] = []
        for row, frame in zip(sources, frames):
            self._in_flight.pop(frame.tag, None)
            dests = frame.real_dests
            if dests.size and not np.array_equal(
                row[dests], frame.real_lines
            ):
                bad = dests[row[dests] != frame.real_lines]
                requeue = list(frame.entries.values())
                requeue.extend(
                    self.kill(
                        reason=str(
                            MisdeliveryError(
                                self.plane_id,
                                f"frame {frame.tag}: backend "
                                f"{self.backend.name!r} put the wrong "
                                f"source lines on outputs {bad.tolist()}",
                            )
                        )
                    )
                )
                return completed, requeue
            self.frames_delivered += 1
            self.words_delivered += frame.active
            completed.append(
                CompletedFrame(
                    frame=frame,
                    outputs=None,
                    plane_id=self.plane_id,
                    mode="clean",
                )
            )
        return completed, []

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info["engine"] = "backend"
        info["backend"] = self.backend.name
        info["batch_window"] = self.batch_window
        info["batches_routed"] = self.batches_routed
        return info


class ResilientPlane(_PlaneBase):
    """A :class:`ResilientFabric`-protected plane: self-healing.

    ``step`` runs the full verified submit for one queued frame, so a
    frame occupies the plane for several internal fabric cycles; the
    gateway sees at most one completion per step.  Faults degrade the
    plane (retries, Benes failover) rather than killing it; only an
    exhausted fault service (:class:`FaultServiceError`) fails it.
    Pass a :class:`~repro.service.ResilientVectorFabric` (the
    ``--engine vector --resilient`` deployment) to run the same
    lifecycle on the compiled engine.
    """

    def __init__(
        self,
        plane_id: int,
        m: int,
        fabric: Optional[ResilientFabric] = None,
    ) -> None:
        super().__init__(plane_id)
        self.m = m
        self.fabric = fabric if fabric is not None else ResilientFabric(m)
        self._queued: Optional[ScheduledFrame] = None

    @property
    def ready(self) -> bool:
        return self.healthy and self._queued is None

    @property
    def load(self) -> int:
        return self.in_flight + (0 if self._queued is None else 1)

    @property
    def degraded(self) -> bool:
        return self.fabric.registry.is_quarantined

    def offer(self, frame: ScheduledFrame) -> None:
        if not self.ready:
            raise ValueError(f"plane {self.plane_id} cannot accept a frame now")
        self._queued = frame
        self._in_flight[frame.tag] = frame

    def step(self) -> Tuple[List[CompletedFrame], List[QueueEntry]]:
        if not self.healthy or self._queued is None:
            return [], []
        frame = self._queued
        self._queued = None
        try:
            result = self.fabric.submit_words(frame.words, tag=frame.tag)
            self._verify(frame, result.outputs)
        except (FaultServiceError, MisdeliveryError) as error:
            requeue = list(frame.entries.values())
            self._in_flight.pop(frame.tag, None)
            requeue.extend(self.kill(reason=str(error)))
            return [], requeue
        self._in_flight.pop(frame.tag, None)
        self.frames_delivered += 1
        self.words_delivered += frame.active
        return (
            [
                CompletedFrame(
                    frame=frame,
                    outputs=result.outputs,
                    plane_id=self.plane_id,
                    mode=result.mode,
                )
            ],
            [],
        )

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info["engine"] = (
            "vector"
            if isinstance(self.fabric.pipeline, VectorPipelinedFabric)
            else "object"
        )
        info["service_state"] = self.fabric.state.value
        info["service_retries"] = self.fabric.counters.retries
        return info
