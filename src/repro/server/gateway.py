"""The asyncio dataplane: concurrent clients -> VOQs -> frames -> planes.

:class:`AsyncGateway` owns the whole serving path.  Clients call
``await gateway.send(dest, payload)`` (or speak the JSON-lines TCP
protocol in :mod:`repro.server.protocol`, which lands here); admitted
words wait in the virtual output queues; a single clock task runs the
gateway *cycle*: coalesce frames, dispatch them to the least-loaded
ready plane, step every plane, resolve the futures of delivered words.

Because all fabric work is pure CPU and all shared state is touched
only between awaits, the gateway needs no locks — the event loop is the
serialization point.  Backpressure is the admission bound: a full VOQ
rejects with a retry-after hint rather than buffering without limit, so
overload costs clients latency, never the server memory.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from ..exceptions import (
    AdmissionRejectedError,
    GatewayClosedError,
    InputError,
    PlaneUnavailableError,
)
from ..backends import backend_names, compiled_backend, prewarm, select_backend
from ..service import ResilientVectorFabric
from .planes import (
    BackendPlane,
    BatchVectorPlane,
    CompletedFrame,
    PipelinedPlane,
    ResilientPlane,
    VectorPlane,
)
from .scheduler import FrameScheduler
from .voq import DEFAULT_TENANT, QueueEntry, VirtualOutputQueues

__all__ = ["AsyncGateway", "BatchResult", "GatewayConfig", "Receipt"]

#: Builds plane *i* for a gateway of address width *m*.
PlaneFactory = Callable[[int, int], Any]


@dataclasses.dataclass
class GatewayConfig:
    """Knobs for a gateway deployment."""

    m: int
    planes: int = 1
    queue_capacity: int = 32
    resilient: bool = False
    #: Dataplane engine for the planes: ``"object"`` clocks the
    #: reference ``PipelinedBNBFabric``, ``"vector"`` the compiled-plan
    #: numpy ``VectorPipelinedFabric`` with sampled boundary
    #: verification, ``"batch"`` the frame-axis-batched
    #: :class:`~repro.server.planes.BatchVectorPlane` (many frames per
    #: numpy gather — the engine behind ``send_batch`` throughput).
    #: ``"auto"`` runs the backend arena calibration at construction
    #: and serves :class:`~repro.server.planes.BackendPlane`\ s on the
    #: measured-fastest registered backend for this ``m``; any
    #: registered backend name (``"krbenes"``, ``"msorter"``, ...)
    #: pins that backend without calibrating (see ``docs/backends.md``).
    #: Orthogonal to ``resilient``: a resilient vector plane wraps a
    #: ``ResilientVectorFabric`` (masked fault kernels, pipelined BIST,
    #: compiled Benes failover), a resilient object plane a
    #: ``ResilientFabric``; the batch/backend engines have no resilient
    #: variant.
    engine: str = "object"
    #: Frames a batch plane buffers before one batched routing call.
    batch_window: int = 32
    #: Weighted QoS classes: ``{"gold": 8, "bronze": 1}`` splits every
    #: destination's VOQ into per-tenant FIFOs drained by deficit-
    #: weighted round-robin (see :mod:`repro.server.voq`), with
    #: per-tenant fairness accounting in ``stats()["tenants"]`` and the
    #: ``repro_tenant_*`` metrics.  ``None`` (the default) keeps the
    #: single-FIFO dataplane byte-identical to the untenanted code.
    tenants: Optional[Dict[str, int]] = None
    #: Starvation guard for tenant scheduling: a head word that has
    #: waited this many cycles longer than the weighted pick's head is
    #: served first regardless of weights.
    starvation_cycles: int = 1024
    #: Bound on latency samples kept for the percentile estimate.
    latency_window: int = 8192
    #: Stable identity this gateway reports in ``stats`` and as the
    #: ``node_id`` label on exported metrics, so cluster health polling
    #: can tell nodes apart.  ``None`` derives ``gw-<pid>``, unique per
    #: process — good enough for a one-node deployment, overridden with
    #: ``node-K`` names by the cluster supervisor.
    node_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError(f"the gateway needs m >= 1, got {self.m}")
        if self.planes < 1:
            raise ValueError(f"need at least one plane, got {self.planes}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue capacity must be >= 1, got {self.queue_capacity}"
            )
        builtin = ("object", "vector", "batch", "auto")
        if self.engine not in builtin and self.engine not in backend_names():
            raise ValueError(
                f"engine must be one of {builtin} or a registered "
                f"backend name {backend_names()}, got {self.engine!r}"
            )
        if self.engine not in ("object", "vector") and self.resilient:
            raise ValueError(
                f"the {self.engine!r} engine has no resilient variant; "
                f"use engine='vector' with resilient=True"
            )
        if self.batch_window < 1:
            raise ValueError(
                f"batch_window must be >= 1, got {self.batch_window}"
            )
        if self.starvation_cycles < 1:
            raise ValueError(
                f"starvation_cycles must be >= 1, "
                f"got {self.starvation_cycles}"
            )
        if self.tenants is not None:
            if not self.tenants:
                raise ValueError("tenants must name at least one class")
            for name, weight in self.tenants.items():
                if not isinstance(name, str) or not name:
                    raise ValueError(
                        f"tenant names must be non-empty strings, "
                        f"got {name!r}"
                    )
                if (
                    not isinstance(weight, int)
                    or isinstance(weight, bool)
                    or weight < 1
                ):
                    raise ValueError(
                        f"tenant {name!r} needs an integer weight >= 1, "
                        f"got {weight!r}"
                    )

    @property
    def n(self) -> int:
        return 1 << self.m


@dataclasses.dataclass
class Receipt:
    """Proof of delivery handed back to the sender."""

    destination: int
    payload: Any
    plane_id: int
    frame_tag: int
    enqueued_cycle: int
    delivered_cycle: int
    mode: str
    requeues: int

    @property
    def latency_cycles(self) -> int:
        return self.delivered_cycle - self.enqueued_cycle


class BatchResult:
    """Outcome of one :meth:`AsyncGateway.send_batch`, array-shaped.

    One entry per submitted word, in submission order.  ``statuses[k]``
    is 1 for delivered, 0 for rejected; delivered words carry their
    plane / frame tag / latency in the matching arrays (−1 where
    rejected), rejected words their ``retry_after[k]`` backpressure
    hint (0 where delivered).  ``modes[k]`` indexes ``mode_table`` —
    the delivery-mode strings seen by this batch — so a million-word
    result stores a million int8s, not a million strings.  The arrays
    are preallocated at submission and filled in place as frames land,
    which is what keeps the per-word resolve cost to a few array
    stores instead of a ``Receipt`` object.
    """

    __slots__ = (
        "count",
        "statuses",
        "planes",
        "frames",
        "latencies",
        "retry_after",
        "modes",
        "mode_table",
    )

    def __init__(self, count: int) -> None:
        self.count = count
        self.statuses = np.zeros(count, dtype=np.int64)
        self.planes = np.full(count, -1, dtype=np.int64)
        self.frames = np.full(count, -1, dtype=np.int64)
        self.latencies = np.full(count, -1, dtype=np.int64)
        self.retry_after = np.zeros(count, dtype=np.int64)
        self.modes = np.full(count, -1, dtype=np.int64)
        self.mode_table: List[str] = []

    @property
    def delivered(self) -> int:
        return int(self.statuses.sum())

    @property
    def rejected(self) -> int:
        return self.count - self.delivered

    def mode_index(self, mode: str) -> int:
        try:
            return self.mode_table.index(mode)
        except ValueError:
            self.mode_table.append(mode)
            return len(self.mode_table) - 1

    def __repr__(self) -> str:
        return (
            f"BatchResult(count={self.count}, delivered={self.delivered}, "
            f"rejected={self.rejected})"
        )


class _BatchTracker:
    """Gateway-internal progress of one in-flight batch.

    ``open`` stays true while :meth:`AsyncGateway.send_batch` is still
    admitting (including its retry rounds), so a batch whose early
    words all land before the last words are admitted does not fire its
    future prematurely.
    """

    __slots__ = ("result", "future", "pending", "open")

    def __init__(self, result: BatchResult, future: "asyncio.Future") -> None:
        self.result = result
        self.future = future
        self.pending = 0
        self.open = True


class AsyncGateway:
    """Online serving of word-send requests over a pool of BNB planes."""

    def __init__(
        self,
        config: GatewayConfig,
        plane_factory: Optional[PlaneFactory] = None,
    ) -> None:
        self.config = config
        self.n = config.n
        self.voqs = VirtualOutputQueues(
            self.n,
            config.queue_capacity,
            tenants=config.tenants,
            starvation_cycles=config.starvation_cycles,
        )
        self.scheduler = FrameScheduler(self.n)
        #: Routing backend serving the planes, for stats and metrics:
        #: the arena winner under ``engine="auto"``, the pinned backend
        #: name for backend engines, the BNB engine the built-in kinds
        #: wrap otherwise.
        self.backend_name: str = (
            "bnb-object" if config.engine == "object" else "bnb"
        )
        #: The arena decision behind an ``engine="auto"`` choice
        #: (``None`` for every explicit engine).
        self.arena_decision = None
        if plane_factory is None:
            if config.resilient and config.engine == "vector":
                plane_factory = lambda i, m: ResilientPlane(
                    i, m, fabric=ResilientVectorFabric(m)
                )
            elif config.resilient:
                plane_factory = lambda i, m: ResilientPlane(i, m)
            elif config.engine == "batch":
                plane_factory = lambda i, m: BatchVectorPlane(
                    i, m, batch_window=config.batch_window
                )
            elif config.engine == "vector":
                plane_factory = lambda i, m: VectorPlane(i, m)
            elif config.engine == "object":
                plane_factory = lambda i, m: PipelinedPlane(i, m)
            else:
                # Backend engines: "auto" calibrates the arena (batch
                # workload — these planes route whole windows) and
                # serves the measured winner; a registered backend name
                # pins it.  Either way the engine compiles here, at
                # construction, so no served frame pays compile latency.
                if config.engine == "auto":
                    self.arena_decision = select_backend(
                        config.m, workload="batch"
                    )
                    self.backend_name = self.arena_decision.backend
                else:
                    self.backend_name = config.engine
                engine = compiled_backend(self.backend_name, config.m)
                plane_factory = lambda i, m: BackendPlane(
                    i,
                    m,
                    backend=engine,
                    batch_window=config.batch_window,
                )
        self.planes = [
            plane_factory(i, config.m) for i in range(config.planes)
        ]
        # Pre-warm the compiled caches for whatever engine the planes
        # run, so the first frame after boot routes on hot tables.
        if not config.resilient and config.engine != "object":
            prewarm(config.m, [self.backend_name])
        self.node_id = config.node_id or f"gw-{os.getpid()}"
        self.cycle = 0
        self.delivered_words = 0
        self.delivered_frames = 0
        #: Optional telemetry sink (duck-typed; see
        #: :class:`repro.obs.instrument.GatewayInstrumentation`).  Every
        #: hook call is guarded by a ``None`` check so the uninstrumented
        #: dataplane pays one attribute test per event, nothing more.
        self.observer: Optional[Any] = None
        self._latencies: List[int] = []
        # Per-tenant delivery accounting, kept only in tenant mode so
        # the default _resolve loop pays a single None test per frame.
        self._tenant_latencies: Optional[Dict[str, List[int]]] = (
            {name: [] for name in config.tenants}
            if config.tenants is not None
            else None
        )
        self._tenant_delivered: Dict[str, int] = (
            {name: 0 for name in config.tenants}
            if config.tenants is not None
            else {}
        )
        self._mode_counts: Dict[str, int] = {}
        self._batch_trackers: Set[_BatchTracker] = set()
        self._accepting = False
        self._draining = False
        self._started_monotonic: Optional[float] = None
        self._clock_task: Optional[asyncio.Task] = None
        self._work = asyncio.Event()
        self._cycle_waiters: List[Any] = []  # (target_cycle, future) pairs

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncGateway":
        if self._clock_task is not None:
            raise GatewayClosedError("gateway already started")
        self._accepting = True
        if self._started_monotonic is None:
            self._started_monotonic = time.monotonic()
        self._clock_task = asyncio.get_running_loop().create_task(
            self._run_clock()
        )
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting; optionally serve out the backlog first."""
        self._accepting = False
        if drain and self._clock_task is not None:
            while self.voqs.total or self._frames_in_flight():
                self._work.set()
                await asyncio.sleep(0)
                if not any(plane.healthy for plane in self.planes):
                    break
        task, self._clock_task = self._clock_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._fail_stranded(
            self.voqs.drain_all(),
            GatewayClosedError("shut down with words still queued"),
        )
        for target, future in self._cycle_waiters:
            if not future.done():
                future.set_result(self.cycle)
        self._cycle_waiters.clear()

    async def __aenter__(self) -> "AsyncGateway":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    @property
    def uptime_seconds(self) -> float:
        """Seconds since the first :meth:`start`; 0.0 before it."""
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self) -> Dict[str, Any]:
        """Stop admitting new words; keep serving the backlog.

        The cluster tier's rolling-restart primitive (the ``drain``
        wire op): a draining gateway rejects every new ``send`` /
        ``send_batch`` word with an :class:`AdmissionRejectedError`
        carrying a retry-after hint, while queued words and in-flight
        frames complete normally — so an operator can wait for the
        backlog to reach zero and restart the node without a delivery
        gap.  Idempotent; :meth:`rejoin` reverses it.
        """
        self._draining = True
        return {
            "queued": self.voqs.total,
            "in_flight": self._frames_in_flight(),
        }

    def rejoin(self) -> None:
        """Resume admission after a :meth:`drain` (idempotent)."""
        self._draining = False
        self._work.set()

    def _drain_hint_cycles(self) -> int:
        """Retry-after for words bounced by a drain: the backlog the
        node must serve out before it can plausibly rejoin."""
        return max(1, self.voqs.total + self._frames_in_flight())

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    async def send(
        self,
        destination: int,
        payload: Any = None,
        tenant: Optional[str] = None,
    ) -> Receipt:
        """Admit one word and await its delivery receipt.

        *tenant* names the word's QoS class when the gateway was
        configured with :attr:`GatewayConfig.tenants`; unnamed words
        ride the ``"default"`` class and the field is inert (stored,
        never consulted) on an untenanted gateway.

        Raises :class:`AdmissionRejectedError` (with a retry-after hint
        in cycles) under backpressure, :class:`InputError` for a bad
        destination, :class:`GatewayClosedError` when not serving.
        """
        if not self._accepting:
            raise GatewayClosedError()
        if not 0 <= destination < self.n:
            raise InputError(
                f"destination {destination} out of range for N={self.n}"
            )
        if self._draining:
            hint = self._drain_hint_cycles()
            raise AdmissionRejectedError(
                destination, self.voqs.depth(destination), hint
            )
        if not any(plane.healthy for plane in self.planes):
            raise PlaneUnavailableError(len(self.planes))
        entry = QueueEntry(
            destination=destination,
            payload=payload,
            enqueued_cycle=self.cycle,
            future=asyncio.get_running_loop().create_future(),
            tenant=tenant if tenant is not None else DEFAULT_TENANT,
        )
        try:
            self.voqs.admit(entry)  # raises AdmissionRejectedError when full
        except AdmissionRejectedError as error:
            if self.observer is not None:
                self.observer.on_reject(entry, error)
            raise
        self._work.set()
        return await entry.future

    async def send_with_retry(
        self,
        destination: int,
        payload: Any = None,
        attempts: int = 16,
        tenant: Optional[str] = None,
    ) -> Receipt:
        """Like :meth:`send`, but honour backpressure by waiting it out.

        Each rejection waits the advertised ``retry_after_cycles`` (at
        least one) before retrying; after *attempts* rejections the last
        :class:`AdmissionRejectedError` propagates.
        """
        for attempt in range(attempts):
            try:
                return await self.send(destination, payload, tenant)
            except AdmissionRejectedError as error:
                if attempt == attempts - 1:
                    raise
                await self.wait_cycles(max(1, error.retry_after_cycles))
        raise AssertionError("unreachable")  # pragma: no cover

    async def send_batch(
        self,
        destinations: Any,
        payloads: Optional[Sequence[Any]] = None,
        retry_attempts: int = 0,
        tenant: Optional[str] = None,
    ) -> BatchResult:
        """Admit a whole batch of words and await every delivery.

        The per-request counterpart of the fabric's frame-axis
        batching: one call admits ``len(destinations)`` words (an int64
        array or any sequence of ints), the clock coalesces and routes
        them across however many frames they need, and one
        :class:`BatchResult` comes back with per-word status arrays —
        no per-word futures, no per-word Receipt objects.

        Admission is per word and non-raising: words that hit a full
        VOQ are marked rejected in the result (with their
        ``retry_after`` hint) instead of failing the batch.  With
        ``retry_attempts > 0`` the gateway itself waits out the
        advertised backpressure and re-offers the rejected remainder up
        to that many more times before reporting them rejected.

        Raises :class:`InputError` for any out-of-range destination
        (the batch shape is the caller's bug, not backpressure),
        :class:`GatewayClosedError` / :class:`PlaneUnavailableError`
        exactly like :meth:`send`.
        """
        if not self._accepting:
            raise GatewayClosedError()
        dests = np.ascontiguousarray(destinations, dtype=np.int64)
        if dests.ndim != 1:
            raise InputError(
                f"destinations must be one-dimensional, got shape "
                f"{dests.shape}"
            )
        if retry_attempts < 0:
            raise InputError(
                f"retry_attempts must be >= 0, got {retry_attempts}"
            )
        count = int(dests.shape[0])
        result = BatchResult(count)
        if count == 0:
            return result
        bad = (dests < 0) | (dests >= self.n)
        if bad.any():
            raise InputError(
                f"destinations {dests[bad][:8].tolist()} out of range "
                f"for N={self.n}"
            )
        if not any(plane.healthy for plane in self.planes):
            raise PlaneUnavailableError(len(self.planes))
        if payloads is not None and len(payloads) != count:
            raise InputError(
                f"got {len(payloads)} payloads for {count} destinations"
            )
        if self._draining:
            # A draining gateway bounces the whole batch with hints but
            # still returns a well-formed result: statuses stay 0.
            result.retry_after[:] = self._drain_hint_cycles()
            return result
        tracker = _BatchTracker(
            result, asyncio.get_running_loop().create_future()
        )
        self._batch_trackers.add(tracker)
        dest_list = dests.tolist()  # one C pass beats a per-word int() each
        payload_list = None if payloads is None else list(payloads)
        tenant_name = tenant if tenant is not None else DEFAULT_TENANT
        try:
            rejected = self._admit_batch_round(
                tracker, dest_list, payload_list, range(count), tenant_name
            )
            for _attempt in range(retry_attempts):
                if not rejected:
                    break
                wait = max(
                    1, int(result.retry_after[rejected].max(initial=0))
                )
                await self.wait_cycles(wait)
                if not self._accepting:
                    break
                if self._draining:
                    # A drain that started mid-retry bounces the
                    # remainder: admitting more would extend the very
                    # backlog the drain is waiting out.
                    result.retry_after[rejected] = self._drain_hint_cycles()
                    break
                # Clear the stale hints before re-offering: the VOQ
                # accept path never writes zeros (see admit_batch), so
                # a word accepted on retry keeps hint 0 from here.
                result.retry_after[rejected] = 0
                rejected = self._admit_batch_round(
                    tracker, dest_list, payload_list, rejected, tenant_name
                )
            tracker.open = False
            if tracker.pending == 0 and not tracker.future.done():
                tracker.future.set_result(result)
            self._work.set()
            return await tracker.future
        finally:
            self._batch_trackers.discard(tracker)

    def _admit_batch_round(
        self,
        tracker: _BatchTracker,
        dests: List[int],
        payloads: Optional[Sequence[Any]],
        indices: Any,
        tenant: str = DEFAULT_TENANT,
    ) -> List[int]:
        """Offer the words at *indices* to the VOQs; return the rejects.

        Synchronous on purpose: no await happens between the first and
        last admission of a round, so deliveries cannot interleave with
        the bookkeeping.
        """
        result = tracker.result
        admitted, rejected = self.voqs.admit_batch(
            dests,
            payloads,
            self.cycle,
            tracker,
            result.retry_after,
            indices,
            tenant,
        )
        tracker.pending += admitted
        if rejected and self.observer is not None:
            retry_after = result.retry_after
            for index in rejected:
                destination = dests[index]
                hint = int(retry_after[index])
                self.observer.on_reject(
                    QueueEntry(
                        destination,
                        None if payloads is None else payloads[index],
                        self.cycle,
                        None,
                        0,
                        tracker,
                        index,
                        tenant,
                    ),
                    AdmissionRejectedError(destination, hint, hint),
                )
        self._work.set()
        return rejected

    async def wait_cycles(self, cycles: int) -> int:
        """Await *cycles* gateway cycles; returns the cycle reached.

        The clock keeps ticking while waiters exist, so this never
        deadlocks even when the queues are empty.
        """
        future = asyncio.get_running_loop().create_future()
        self._cycle_waiters.append((self.cycle + max(1, cycles), future))
        self._work.set()
        return await future

    def kill_plane(self, plane_id: int, reason: str = "operator kill") -> int:
        """Fail one plane; its in-flight words requeue.  Returns how many."""
        plane = self.planes[plane_id]
        was_healthy = plane.healthy
        stranded = plane.kill(reason=reason)
        self.voqs.requeue_front(stranded)
        if self.observer is not None:
            if stranded:
                self.observer.on_requeue(plane, stranded)
            if was_healthy:
                self.observer.on_plane_killed(plane)
        self._work.set()
        return len(stranded)

    def inject_fault(
        self, plane_id: int, coordinate: Any, value: int
    ) -> Dict[str, Any]:
        """Inject a stuck-control fault into one plane's live fabric.

        The operator-facing fault drill (the ``inject`` protocol op):
        *coordinate* is a 5-sequence ``(main_stage, nested,
        nested_stage, box, switch)``.  Only planes whose fabric exposes
        ``inject_stuck_control`` — the resilient kinds — can take one;
        anything else raises :class:`InputError` rather than silently
        ignoring the drill.
        """
        from ..faults.injector import SwitchCoordinate

        if not 0 <= plane_id < len(self.planes):
            raise InputError(
                f"plane {plane_id} out of range "
                f"({len(self.planes)} plane(s))"
            )
        plane = self.planes[plane_id]
        fabric = getattr(plane, "fabric", None)
        inject = getattr(fabric, "inject_stuck_control", None)
        if inject is None:
            raise InputError(
                f"plane {plane_id} ({type(plane).__name__}) cannot take "
                f"fault injection; serve with --resilient"
            )
        inject(SwitchCoordinate(*(int(axis) for axis in coordinate)), value)
        self._work.set()
        return plane.describe()

    def _fail_stranded(self, entries: List[QueueEntry], failure: Exception) -> None:
        """Fail every stranded waiter: per-word futures and whole batches.

        A batch tracker fails as a unit — one exception wakes its
        ``send_batch`` — because its preallocated result is meaningless
        once any of its words can no longer be delivered.
        """
        for entry in entries:
            if entry.future is not None and not entry.future.done():
                entry.future.set_exception(failure)
        for tracker in list(self._batch_trackers):
            if not tracker.future.done():
                tracker.future.set_exception(failure)

    # ------------------------------------------------------------------
    # The clock
    # ------------------------------------------------------------------
    def _frames_in_flight(self) -> int:
        return sum(
            plane.load for plane in self.planes if plane.healthy
        )

    def _has_work(self) -> bool:
        return bool(
            self.voqs.total or self._frames_in_flight() or self._cycle_waiters
        )

    async def _run_clock(self) -> None:
        try:
            while True:
                if not self._has_work():
                    self._work.clear()
                    await self._work.wait()
                    continue
                self.tick()
                # Yield so client coroutines run between cycles.
                await asyncio.sleep(0)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 — clock must not die silently
            # A clock crash would strand every awaiting client; fail them
            # loudly instead and refuse further traffic.
            self._accepting = False
            failure = GatewayClosedError(f"clock task crashed: {error!r}")
            stranded = self.voqs.drain_all()
            for plane in self.planes:
                stranded.extend(plane.kill(reason="clock crash"))
            self._fail_stranded(stranded, failure)
            for _target, future in self._cycle_waiters:
                if not future.done():
                    future.set_exception(failure)
            self._cycle_waiters.clear()
            raise

    def tick(self) -> None:
        """One synchronous gateway cycle (the benchmark harness calls it
        directly; the clock task calls it between awaits)."""
        self.cycle += 1
        healthy = [plane for plane in self.planes if plane.healthy]
        # Dispatch: least-loaded ready planes first, while backlog remains.
        ready = sorted(
            (plane for plane in healthy if plane.ready),
            key=lambda plane: plane.load,
        )
        for plane in ready:
            if not self.voqs.total:
                break
            # A plane that stays ready after a frame (the batch engine
            # buffering toward its window) keeps taking frames, so one
            # tick can hand it a whole batch.
            while plane.ready and self.voqs.total:
                frame = self.scheduler.next_frame(self.voqs, self.cycle)
                if frame is None:
                    break
                plane.offer(frame)
                if self.observer is not None:
                    self.observer.on_dispatch(frame, plane, self.cycle)
        # Clock every healthy plane; collect deliveries and casualties.
        for plane in healthy:
            completed, requeue = plane.step()
            for completion in completed:
                self._resolve(completion)
            if requeue:
                self.voqs.requeue_front(requeue)
                if self.observer is not None:
                    self.observer.on_requeue(plane, requeue)
            # A plane that was healthy entering the tick and is not now
            # was killed by its own step(); report it exactly once.
            if not plane.healthy and self.observer is not None:
                self.observer.on_plane_killed(plane)
        # Release cycle waiters that reached their target.
        if self._cycle_waiters:
            still_waiting = []
            for target, future in self._cycle_waiters:
                if self.cycle >= target:
                    if not future.done():
                        future.set_result(self.cycle)
                else:
                    still_waiting.append((target, future))
            self._cycle_waiters = still_waiting

    def _resolve(self, completion: CompletedFrame) -> None:
        frame = completion.frame
        self.delivered_frames += 1
        self._mode_counts[completion.mode] = (
            self._mode_counts.get(completion.mode, 0) + 1
        )
        worst_latency = 0
        plane_id = completion.plane_id
        mode = completion.mode
        cycle = self.cycle
        tag = frame.tag
        entries = frame.entries
        self.delivered_words += len(entries)
        latency_samples = self._latencies
        tenant_samples = self._tenant_latencies
        tenant_delivered = self._tenant_delivered
        # Batch words resolve per *frame*, not per word: indices and
        # latencies group by tracker, then land in the preallocated
        # result arrays as a handful of fancy-indexed stores.
        groups: Dict[Any, Any] = {}
        for destination, entry in entries.items():
            latency = cycle - entry.enqueued_cycle
            if latency > worst_latency:
                worst_latency = latency
            latency_samples.append(latency)
            if tenant_samples is not None:
                tenant = entry.tenant
                samples = tenant_samples.get(tenant)
                if samples is None:
                    samples = tenant_samples[tenant] = []
                    tenant_delivered[tenant] = 0
                samples.append(latency)
                tenant_delivered[tenant] += 1
            tracker = entry.batch
            if tracker is not None:
                group = groups.get(tracker)
                if group is None:
                    groups[tracker] = group = ([], [])
                group[0].append(entry.batch_index)
                group[1].append(latency)
            elif entry.future is not None and not entry.future.done():
                entry.future.set_result(
                    Receipt(
                        destination=destination,
                        payload=entry.payload,
                        plane_id=plane_id,
                        frame_tag=tag,
                        enqueued_cycle=entry.enqueued_cycle,
                        delivered_cycle=cycle,
                        mode=mode,
                        requeues=entry.requeues,
                    )
                )
        for tracker, (indices, latencies) in groups.items():
            result = tracker.result
            result.statuses[indices] = 1
            result.planes[indices] = plane_id
            result.frames[indices] = tag
            result.latencies[indices] = latencies
            result.modes[indices] = result.mode_index(mode)
            tracker.pending -= len(indices)
            if (
                tracker.pending == 0
                and not tracker.open
                and not tracker.future.done()
            ):
                tracker.future.set_result(result)
        if self.observer is not None:
            self.observer.on_frame_delivered(completion, self.cycle, worst_latency)
        window = self.config.latency_window
        if len(self._latencies) > 2 * window:
            del self._latencies[:-window]
        if tenant_samples is not None:
            for samples in tenant_samples.values():
                if len(samples) > 2 * window:
                    del samples[:-window]

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    @staticmethod
    def _percentile(samples: List[int], q: float) -> Optional[int]:
        if not samples:
            return None
        ordered = sorted(samples)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def tenant_snapshot(self) -> Optional[Dict[str, Dict[str, Any]]]:
        """Fairness + latency accounting per QoS class, or ``None``
        when the gateway runs untenanted.

        Merges the VOQ's admission/service counters with the gateway's
        delivery counts and per-class latency percentiles — the payload
        behind ``stats()["tenants"]`` and the ``repro_tenant_*``
        metrics.
        """
        rows = self.voqs.tenant_snapshot()
        if rows is None:
            return None
        for tenant, row in rows.items():
            samples = (
                self._tenant_latencies.get(tenant, [])
                if self._tenant_latencies is not None
                else []
            )
            row["delivered"] = self._tenant_delivered.get(tenant, 0)
            row["latency_cycles"] = {
                "samples": len(samples),
                "p50": self._percentile(samples, 0.50),
                "p99": self._percentile(samples, 0.99),
                "max": max(samples) if samples else None,
            }
        return rows

    def stats(self) -> Dict[str, Any]:
        """One JSON-safe snapshot of every component's counters."""
        latencies = self._latencies
        return {
            "cycle": self.cycle,
            "n": self.n,
            "node_id": self.node_id,
            "engine": self.config.engine,
            "backend": self.backend_name,
            "arena": (
                self.arena_decision.describe()
                if self.arena_decision is not None
                else None
            ),
            "uptime_seconds": round(self.uptime_seconds, 3),
            "accepting": self._accepting,
            "draining": self._draining,
            "delivered_words": self.delivered_words,
            "delivered_frames": self.delivered_frames,
            "delivery_modes": dict(self._mode_counts),
            "queues": self.voqs.snapshot(),
            "scheduler": self.scheduler.snapshot(),
            "tenants": self.tenant_snapshot(),
            "latency_cycles": {
                "samples": len(latencies),
                "p50": self._percentile(latencies, 0.50),
                "p99": self._percentile(latencies, 0.99),
                "max": max(latencies) if latencies else None,
            },
            "planes": [plane.describe() for plane in self.planes],
        }
