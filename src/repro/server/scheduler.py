"""The frame scheduler: queued words -> conflict-free permutation frames.

Each gateway cycle the scheduler pops at most one head-of-line word per
destination from the VOQs (pairwise-distinct destinations — a
conflict-free matching of inputs to outputs, in the
routing-via-matchings sense) and completes the partial request into a
full permutation with :func:`~repro.core.traffic.coalesce_frame`, so
every frame satisfies the balanced-bit precondition the BNB splitters
need.  Idle lines carry filler words with ``payload=None``; real words
carry their :class:`~repro.server.voq.QueueEntry` as payload, which is
how delivery is matched back to the awaiting client.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.traffic import FramePlan, coalesce_frame
from ..core.words import Word
from .voq import QueueEntry, VirtualOutputQueues

__all__ = ["FrameScheduler", "ScheduledFrame"]


class ScheduledFrame:
    """One coalesced frame: a full permutation plus its book-keeping.

    ``entries[dest]`` is the queue entry whose word rides the frame to
    output *dest*.  The frame carries its traffic in two interchangeable
    shapes: ``words`` — the per-line :class:`~repro.core.words.Word`
    list the object planes clock through the fabric — and the array
    triple (``address_array``, ``real_dests``, ``real_lines``) the
    vectorized planes route and verify without touching a single Word.
    Both are built lazily from the coalesced plan, so a frame only ever
    pays for the representation its plane actually uses.
    """

    __slots__ = (
        "tag",
        "entries",
        "plan",
        "scheduled_cycle",
        "_words",
        "_address_array",
        "_real_dests",
        "_real_lines",
    )

    def __init__(
        self,
        tag: int,
        entries: Dict[int, QueueEntry],
        plan: FramePlan,
        scheduled_cycle: int,
    ) -> None:
        self.tag = tag
        self.entries = entries
        self.plan = plan
        self.scheduled_cycle = scheduled_cycle
        self._words: Optional[List[Word]] = None
        self._address_array: Optional[np.ndarray] = None
        self._real_dests: Optional[np.ndarray] = None
        self._real_lines: Optional[np.ndarray] = None

    @property
    def words(self) -> List[Word]:
        """The per-line Word list; ``words[line].payload`` is the queue
        entry for real lines and ``None`` for idle filler."""
        if self._words is None:
            entries = self.entries
            self._words = [
                Word(address=address, payload=entries.get(address))
                for address in self.plan.addresses
            ]
        return self._words

    @property
    def address_array(self) -> np.ndarray:
        """The frame's full destination permutation as an int64 vector."""
        if self._address_array is None:
            self._address_array = np.asarray(
                self.plan.addresses, dtype=np.int64
            )
        return self._address_array

    @property
    def real_dests(self) -> np.ndarray:
        """Destinations carrying genuine traffic, as an int64 vector."""
        if self._real_dests is None:
            line_of = self.plan.line_of
            self._real_dests = np.fromiter(
                line_of.keys(), dtype=np.int64, count=len(line_of)
            )
        return self._real_dests

    @property
    def real_lines(self) -> np.ndarray:
        """``real_lines[k]`` is the input line feeding ``real_dests[k]``."""
        if self._real_lines is None:
            line_of = self.plan.line_of
            self._real_lines = np.fromiter(
                line_of.values(), dtype=np.int64, count=len(line_of)
            )
        return self._real_lines

    @property
    def active(self) -> int:
        return len(self.entries)

    @property
    def fill(self) -> float:
        return self.plan.fill

    def __repr__(self) -> str:
        return (
            f"ScheduledFrame(tag={self.tag}, active={self.active}, "
            f"n={len(self.plan.addresses)}, cycle={self.scheduled_cycle})"
        )


class FrameScheduler:
    """Coalesce VOQ heads into frames; account fill ratio."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.frames_scheduled = 0
        self.words_scheduled = 0
        self._fill_sum = 0.0
        self._next_tag = 0

    def next_frame(
        self, voqs: VirtualOutputQueues, cycle: int
    ) -> Optional[ScheduledFrame]:
        """Build the next frame from *voqs*, or ``None`` when idle."""
        entries = voqs.pop_heads(self.n)
        if not entries:
            return None
        destinations = [entry.destination for entry in entries]
        if len(entries) == self.n:
            # Full fill (the saturated batch path): the heads are
            # already a permutation on consecutive lines — no idle
            # completion to compute.
            plan = FramePlan(
                addresses=destinations,
                line_of={dest: line for line, dest in enumerate(destinations)},
            )
        else:
            plan = coalesce_frame(destinations, self.n)
        by_destination = {entry.destination: entry for entry in entries}
        tag = self._next_tag
        self._next_tag += 1
        self.frames_scheduled += 1
        self.words_scheduled += len(entries)
        self._fill_sum += plan.fill
        return ScheduledFrame(
            tag=tag,
            entries=by_destination,
            plan=plan,
            scheduled_cycle=cycle,
        )

    @property
    def mean_fill(self) -> float:
        """Average frame fill ratio over everything scheduled so far."""
        if not self.frames_scheduled:
            return 0.0
        return self._fill_sum / self.frames_scheduled

    def snapshot(self) -> Dict[str, float]:
        return {
            "frames": self.frames_scheduled,
            "words": self.words_scheduled,
            "mean_fill": self.mean_fill,
        }
