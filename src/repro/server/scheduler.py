"""The frame scheduler: queued words -> conflict-free permutation frames.

Each gateway cycle the scheduler pops at most one head-of-line word per
destination from the VOQs (pairwise-distinct destinations — a
conflict-free matching of inputs to outputs, in the
routing-via-matchings sense) and completes the partial request into a
full permutation with :func:`~repro.core.traffic.coalesce_frame`, so
every frame satisfies the balanced-bit precondition the BNB splitters
need.  Idle lines carry filler words with ``payload=None``; real words
carry their :class:`~repro.server.voq.QueueEntry` as payload, which is
how delivery is matched back to the awaiting client.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..core.traffic import FramePlan, coalesce_frame
from ..core.words import Word
from .voq import QueueEntry, VirtualOutputQueues

__all__ = ["FrameScheduler", "ScheduledFrame"]


@dataclasses.dataclass
class ScheduledFrame:
    """One coalesced frame: a full permutation of words plus its book-keeping.

    ``entries[dest]`` is the queue entry whose word rides the frame to
    output *dest*; ``words[line].payload`` is that entry for real lines
    and ``None`` for idle filler.
    """

    tag: int
    words: List[Word]
    entries: Dict[int, QueueEntry]
    plan: FramePlan
    scheduled_cycle: int

    @property
    def active(self) -> int:
        return len(self.entries)

    @property
    def fill(self) -> float:
        return self.plan.fill


class FrameScheduler:
    """Coalesce VOQ heads into frames; account fill ratio."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.frames_scheduled = 0
        self.words_scheduled = 0
        self._fill_sum = 0.0
        self._next_tag = 0

    def next_frame(
        self, voqs: VirtualOutputQueues, cycle: int
    ) -> Optional[ScheduledFrame]:
        """Build the next frame from *voqs*, or ``None`` when idle."""
        entries = voqs.pop_heads(self.n)
        if not entries:
            return None
        plan = coalesce_frame([entry.destination for entry in entries], self.n)
        by_destination = {entry.destination: entry for entry in entries}
        words = [
            Word(
                address=address,
                payload=by_destination[address]
                if address in plan.line_of
                else None,
            )
            for address in plan.addresses
        ]
        tag = self._next_tag
        self._next_tag += 1
        self.frames_scheduled += 1
        self.words_scheduled += len(entries)
        self._fill_sum += plan.fill
        return ScheduledFrame(
            tag=tag,
            words=words,
            entries=by_destination,
            plan=plan,
            scheduled_cycle=cycle,
        )

    @property
    def mean_fill(self) -> float:
        """Average frame fill ratio over everything scheduled so far."""
        if not self.frames_scheduled:
            return 0.0
        return self._fill_sum / self.frames_scheduled

    def snapshot(self) -> Dict[str, float]:
        return {
            "frames": self.frames_scheduled,
            "words": self.words_scheduled,
            "mean_fill": self.mean_fill,
        }
