"""A multi-process plane pool: fabric planes sharded across CPU cores.

The in-process planes all route on the gateway's core; once the vector
engine makes a single plane cheap, the next scaling axis is *cores*.
:class:`ProcessPlanePool` runs one worker process per plane.  Each
worker owns the compiled routing plan for its size and routes whole
frames with :func:`~repro.core.pipeline_fast.route_frame_sources`; the
frame payload crosses the process boundary through a **shared-memory
frame buffer** (one ``int64`` slab per plane: ``n`` input addresses in,
``n`` routed source lines out), so the per-frame pipe traffic is a
two-int doorbell, never the words themselves.

Gateway-facing, a :class:`ProcessPlane` looks like any other plane
(``ready`` / ``offer`` / ``step`` / ``kill`` / ``load``): ``offer``
writes the frame into the shared slab and rings the worker; ``step``
polls for completions without blocking the event loop.  Like
:class:`~repro.server.planes.ResilientPlane` it carries one frame at a
time — the parallelism is across planes, not within one.  A worker
that dies mid-frame fails its plane; the gateway requeues the words
onto survivors, the same containment contract as every other plane
kind.

Pools own OS resources (processes, shared memory); use them as context
managers or call :meth:`ProcessPlanePool.close`.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import multiprocessing.shared_memory
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.pipeline_fast import route_frame_sources
from ..core.words import Word
from ..exceptions import MisdeliveryError
from .planes import CompletedFrame, _PlaneBase
from .scheduler import ScheduledFrame
from .voq import QueueEntry

__all__ = ["ProcessPlane", "ProcessPlanePool"]


def _worker_main(m: int, conn, shm_name: str, n: int) -> None:
    """Worker loop: route frames from the shared slab until told to stop."""
    shm = multiprocessing.shared_memory.SharedMemory(name=shm_name)
    try:
        slab = np.ndarray((2 * n,), dtype=np.int64, buffer=shm.buf)
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            # ("frame", tag): addresses sit in slab[:n]; answer in-place.
            _kind, tag = message
            slab[n:] = route_frame_sources(m, slab[:n].copy())
            conn.send(("done", tag))
    finally:
        conn.close()
        shm.close()


class ProcessPlane(_PlaneBase):
    """Gateway-facing proxy for one plane hosted in a worker process."""

    def __init__(
        self,
        plane_id: int,
        m: int,
        process: multiprocessing.process.BaseProcess,
        conn,
        slab: np.ndarray,
    ) -> None:
        super().__init__(plane_id)
        self.m = m
        self.n = 1 << m
        self._process = process
        self._conn = conn
        self._slab = slab
        self._current: Optional[ScheduledFrame] = None
        self._offered_at: Optional[float] = None
        # Slab round-trip latency samples (offer write -> step read),
        # drained by the telemetry collector; bounded so an unscraped
        # plane never grows without limit.
        self._slab_roundtrips: List[float] = []
        self._slab_roundtrip_window = 1024

    @property
    def ready(self) -> bool:
        return self.healthy and self._current is None

    @property
    def load(self) -> int:
        return self.in_flight

    def offer(self, frame: ScheduledFrame) -> None:
        if not self.ready:
            raise ValueError(f"plane {self.plane_id} cannot accept a frame now")
        self._slab[: self.n] = frame.address_array
        self._current = frame
        self._in_flight[frame.tag] = frame
        self._offered_at = time.perf_counter()
        try:
            self._conn.send(("frame", frame.tag))
        except (BrokenPipeError, OSError):
            # The worker died under us; don't crash the gateway clock —
            # the next step() sees the dead process and requeues.
            pass

    def step(self) -> Tuple[List[CompletedFrame], List[QueueEntry]]:
        """Poll the worker; return (completions, entries to requeue)."""
        if not self.healthy or self._current is None:
            return [], []
        if not self._conn.poll(0):
            if not self._process.is_alive():
                return [], self.kill(reason="worker process died")
            return [], []
        try:
            _kind, tag = self._conn.recv()
        except (EOFError, OSError):
            return [], self.kill(reason="worker connection lost")
        frame = self._in_flight.pop(tag)
        self._current = None
        if self._offered_at is not None:
            self._slab_roundtrips.append(
                time.perf_counter() - self._offered_at
            )
            self._offered_at = None
            if len(self._slab_roundtrips) > self._slab_roundtrip_window:
                del self._slab_roundtrips[: -self._slab_roundtrip_window]
        sources = self._slab[self.n :].tolist()
        outputs: List[Optional[Word]] = [
            frame.words[source] for source in sources
        ]
        try:
            self._verify(frame, outputs)
        except MisdeliveryError as error:
            requeue = list(frame.entries.values())
            requeue.extend(self.kill(reason=str(error)))
            return [], requeue
        self.frames_delivered += 1
        self.words_delivered += frame.active
        return (
            [
                CompletedFrame(
                    frame=frame,
                    outputs=outputs,
                    plane_id=self.plane_id,
                    mode="clean",
                )
            ],
            [],
        )

    def kill(self, reason: str = "killed") -> List[QueueEntry]:
        stranded = super().kill(reason=reason)
        self._current = None
        self._shutdown_worker()
        return stranded

    def _shutdown_worker(self, timeout: float = 1.0) -> None:
        if self._process.is_alive():
            try:
                self._conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            self._process.join(timeout)
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout)

    def take_slab_roundtrips(self) -> List[float]:
        """Drain the pending slab round-trip samples (seconds).

        The telemetry collector calls this at scrape time and feeds the
        samples into ``repro_pool_slab_roundtrip_seconds``; draining
        (rather than reading) keeps each sample observed exactly once.
        """
        samples, self._slab_roundtrips = self._slab_roundtrips, []
        return samples

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info["engine"] = "vector-process"
        info["worker_pid"] = self._process.pid
        info["worker_alive"] = self._process.is_alive()
        return info


class ProcessPlanePool:
    """``workers`` vector planes, one per process, shared-memory framed."""

    def __init__(self, m: int, workers: int) -> None:
        if m < 1:
            raise ValueError(f"the pool needs m >= 1, got {m}")
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.m = m
        self.n = 1 << m
        self.workers = workers
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — non-POSIX fallback
            context = multiprocessing.get_context()
        self._shms: List[multiprocessing.shared_memory.SharedMemory] = []
        self.planes: List[ProcessPlane] = []
        self._closed = False
        try:
            for plane_id in range(workers):
                shm = multiprocessing.shared_memory.SharedMemory(
                    create=True, size=2 * self.n * 8
                )
                self._shms.append(shm)
                slab = np.ndarray((2 * self.n,), dtype=np.int64, buffer=shm.buf)
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(m, child_conn, shm.name, self.n),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self.planes.append(
                    ProcessPlane(plane_id, m, process, parent_conn, slab)
                )
        except Exception:
            self.close()
            raise

    def plane_factory(self, plane_id: int, m: int) -> ProcessPlane:
        """An :class:`~repro.server.gateway.AsyncGateway` plane factory."""
        if m != self.m:
            raise ValueError(
                f"pool was built for m={self.m}, gateway asked for m={m}"
            )
        return self.planes[plane_id]

    def close(self) -> None:
        """Stop every worker and release the shared-memory slabs."""
        if self._closed:
            return
        self._closed = True
        for plane in self.planes:
            plane._shutdown_worker()
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover — already gone
                pass

    def __enter__(self) -> "ProcessPlanePool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover — belt and braces
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ProcessPlanePool(m={self.m}, workers={self.workers}, "
            f"closed={self._closed})"
        )
