"""Fault injection and detection experiments.

The paper assumes fault-free switches; a reproduction meant for reuse
should show what the network does when that assumption breaks.  This
package injects stuck-at faults into recorded switch settings, replays
the perturbed settings through the BNB structure and measures the
misrouting blast radius — how many packets a single stuck switch
displaces, and how reliably an output-side address check detects it.
"""

from .injector import (
    SwitchCoordinate,
    enumerate_switch_coordinates,
    extract_controls,
    fault_mask_for,
    inject_stuck_control,
    random_fault_set,
    replay_controls,
    stuck_override_set,
)
from .detection import (
    FaultTrial,
    FaultCoverageReport,
    misrouted_outputs,
    fault_coverage_experiment,
)
from .adaptive import (
    route_with_stuck_switch,
    RecoveryOutcome,
    detect_and_reroute,
    recovery_experiment,
)
from .bist import (
    BISTProbe,
    BISTSchedule,
    build_bist_schedule,
    candidate_probe_stream,
    shared_bist_schedule,
)
from .localization import (
    LocalizationResult,
    ProbeObservation,
    candidate_switches,
    decode_syndromes,
    localize,
    observations_from_arrays,
    trace_switch_paths,
)

__all__ = [
    "BISTProbe",
    "BISTSchedule",
    "build_bist_schedule",
    "candidate_probe_stream",
    "shared_bist_schedule",
    "LocalizationResult",
    "ProbeObservation",
    "candidate_switches",
    "decode_syndromes",
    "localize",
    "observations_from_arrays",
    "trace_switch_paths",
    "SwitchCoordinate",
    "enumerate_switch_coordinates",
    "extract_controls",
    "fault_mask_for",
    "inject_stuck_control",
    "random_fault_set",
    "replay_controls",
    "stuck_override_set",
    "FaultTrial",
    "FaultCoverageReport",
    "misrouted_outputs",
    "fault_coverage_experiment",
    "route_with_stuck_switch",
    "RecoveryOutcome",
    "detect_and_reroute",
    "recovery_experiment",
]
