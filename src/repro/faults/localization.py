"""Syndrome-based fault localization for the BNB network.

Detection says *that* something is wrong (words arrived at lines other
than their addresses); localization says *which switch*.  The decoder
works from probe observations — ``(sent permutation, arrived
addresses)`` pairs, typically produced by running a
:class:`~repro.faults.bist.BISTSchedule` through the live fabric — and
narrows the candidate set in two steps:

1. **Narrowing** (cheap): upstream of a single stuck switch the fabric
   routes exactly as the healthy :class:`~repro.core.bnb.BNBRoutingRecord`
   says, so the control *computed* at the fault equals the recorded
   one — a dirty probe proves the stuck value disagreed with it
   (activation).  Hypotheses inert on a dirty probe are discarded.
   Under the frozen-replay model the misrouted words also pin the
   switch onto their healthy paths (the displaced pair traverses it);
   :func:`trace_switch_paths` replays the control table while tracing
   which switches every word crosses, cutting the hypothesis space
   from all ``O(N log^2 N)`` switches to the ``O(log^2 N)`` on a few
   paths.  (Adaptively a cascade can displace words whose healthy
   paths avoid the fault, so path narrowing is frozen-model only.)

2. **Forward filtering** (exact): simulate each surviving hypothesis
   ``(coordinate, stuck value)`` against *every* observation and keep
   only those reproducing the arrived vector exactly — clean probes
   prune as hard as dirty ones, since a hypothesis the probe activates
   must have shown up.  Simulation uses the adaptive model by default
   (downstream arbiters re-decide on live data — the physical fabric),
   or the frozen-replay model for table-replay experiments.

The survivors of step 2 are, by construction, *observationally
equivalent* on the evidence in hand: no observation distinguishes
them.  Against the full default BIST schedule the class is a
singleton for **every** single stuck-at fault at m = 2, 3 and 4
(verified exhaustively in the tests); ambiguity appears when the
evidence is thinner — localizing from a single dirty probe at m = 3
leaves a 2-element class for 14 of the 48 faults.
:meth:`LocalizationResult.require_unique` converts a non-singleton
class into :class:`~repro.exceptions.LocalizationAmbiguousError` for
callers that need one coordinate, and the quarantine logic of
:mod:`repro.service` simply quarantines the whole class — equivalent
faults need identical treatment anyway.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..bits import unshuffle_index
from ..core.bnb import BNBNetwork
from ..core.words import Word
from ..exceptions import FaultError, LocalizationAmbiguousError
from .adaptive import route_with_stuck_switch
from .injector import (
    ControlTable,
    SwitchCoordinate,
    enumerate_switch_coordinates,
    extract_controls,
    inject_stuck_control,
    replay_controls,
)

__all__ = [
    "ProbeObservation",
    "LocalizationResult",
    "decode_syndromes",
    "observations_from_arrays",
    "trace_switch_paths",
    "candidate_switches",
    "localize",
]

FaultHypothesis = Tuple[SwitchCoordinate, int]


@dataclasses.dataclass(frozen=True)
class ProbeObservation:
    """What one probe permutation did on the live fabric."""

    addresses: Tuple[int, ...]
    arrived: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.addresses) != len(self.arrived):
            raise FaultError(
                f"observation length mismatch: sent {len(self.addresses)} "
                f"words, observed {len(self.arrived)} outputs"
            )

    @property
    def syndrome(self) -> Tuple[int, ...]:
        """Output lines whose arrived address does not match the line."""
        return tuple(
            line
            for line, address in enumerate(self.arrived)
            if address != line
        )

    @property
    def clean(self) -> bool:
        return not self.syndrome

    def displaced_addresses(self) -> Tuple[int, ...]:
        """Destination addresses of the words that went astray."""
        return tuple(
            address
            for line, address in enumerate(self.arrived)
            if address != line
        )


def decode_syndromes(arrived: np.ndarray) -> List[Tuple[int, ...]]:
    """Per-probe syndromes from a ``(probes, n)`` arrived-address array.

    One vectorized comparison against the identity flags every
    misrouted output line of every probe at once — the batched
    counterpart of :attr:`ProbeObservation.syndrome`, which the tests
    pin it against.  Dead-link sentinels
    (:data:`~repro.core.plan.DEAD_ADDRESS`) never equal their line, so
    they always appear in the syndrome.
    """
    arrived = np.asarray(arrived, dtype=np.int64)
    if arrived.ndim != 2:
        raise FaultError(
            f"expected a (probes, n) arrived array, got shape {arrived.shape}"
        )
    mismatch = arrived != np.arange(arrived.shape[1], dtype=np.int64)
    syndromes: List[List[int]] = [[] for _ in range(arrived.shape[0])]
    rows, lines = np.nonzero(mismatch)
    for row, line in zip(rows.tolist(), lines.tolist()):
        syndromes[row].append(line)
    return [tuple(lines) for lines in syndromes]


def observations_from_arrays(
    sent: np.ndarray, arrived: np.ndarray
) -> List[ProbeObservation]:
    """Build probe observations from batched ``(probes, n)`` arrays.

    The decode path for pipelined BIST passes
    (:meth:`~repro.faults.bist.BISTSchedule.run_pipelined`): the whole
    probe batch is validated and syndrome-flagged in vectorized passes,
    and only then materialized as :class:`ProbeObservation` records for
    the (per-observation) localization decoder.
    """
    sent = np.asarray(sent, dtype=np.int64)
    arrived = np.asarray(arrived, dtype=np.int64)
    if sent.ndim != 2 or sent.shape != arrived.shape:
        raise FaultError(
            f"sent {sent.shape} and arrived {arrived.shape} arrays must be "
            f"matching (probes, n) matrices"
        )
    return [
        ProbeObservation(
            addresses=tuple(sent_row), arrived=tuple(arrived_row)
        )
        for sent_row, arrived_row in zip(sent.tolist(), arrived.tolist())
    ]


def trace_switch_paths(
    m: int, table: ControlTable
) -> List[Set[SwitchCoordinate]]:
    """Switches traversed by each input line under *table*.

    Replays input indices through the control table (the same walk as
    :func:`~repro.faults.injector.replay_controls`) and records, for
    every input line, the set of switch coordinates whose 2 x 2 box the
    word passes through.
    """
    n = 1 << m
    current: List[int] = list(range(n))
    paths: List[Set[SwitchCoordinate]] = [set() for _ in range(n)]
    for i in range(m):
        block_exp = m - i
        block = 1 << block_exp
        for l in range(1 << i):
            lo = l * block
            segment = current[lo : lo + block]
            for j in range(block_exp):
                width = 1 << (block_exp - j)
                routed: List[int] = [None] * block  # type: ignore[list-item]
                for box in range(1 << j):
                    base = box * width
                    key = (i, l, j, box)
                    controls = table.get(key)
                    if controls is None:
                        raise FaultError(f"control table missing splitter {key}")
                    sub = segment[base : base + width]
                    for t, control in enumerate(controls):
                        upper, lower = sub[2 * t], sub[2 * t + 1]
                        coordinate = SwitchCoordinate(i, l, j, box, t)
                        paths[upper].add(coordinate)
                        paths[lower].add(coordinate)
                        if control:
                            upper, lower = lower, upper
                        routed[base + 2 * t] = upper
                        routed[base + 2 * t + 1] = lower
                if j < block_exp - 1:
                    connected: List[int] = [None] * block  # type: ignore[list-item]
                    for offset, value in enumerate(routed):
                        connected[
                            unshuffle_index(offset, block_exp - j, block_exp)
                        ] = value
                    segment = connected
                else:
                    segment = routed
            current[lo : lo + block] = segment
        if i < m - 1:
            k = m - i
            reconnected: List[int] = [None] * n  # type: ignore[list-item]
            for j, value in enumerate(current):
                reconnected[unshuffle_index(j, k, m)] = value
            current = reconnected
    return paths


def candidate_switches(
    m: int, observation: ProbeObservation, table: Optional[ControlTable] = None
) -> Set[SwitchCoordinate]:
    """Path-narrowed candidate switches for one dirty observation.

    The union of the healthy-path switch sets of all misrouted words.
    For a clean observation every switch remains a candidate (a clean
    probe only constrains through forward filtering).
    """
    if observation.clean:
        return set(enumerate_switch_coordinates(m))
    if table is None:
        table = _healthy_table(m, observation.addresses)
    paths = trace_switch_paths(m, table)
    displaced = set(observation.displaced_addresses())
    candidates: Set[SwitchCoordinate] = set()
    for line, address in enumerate(observation.addresses):
        if address in displaced:
            candidates |= paths[line]
    return candidates


@dataclasses.dataclass
class LocalizationResult:
    """Outcome of a localization pass.

    ``candidates`` are the observationally-equivalent surviving
    hypotheses, sorted; an empty list means *no* single stuck-at fault
    explains the observations (healthy fabric, or a multi-fault
    condition outside the decoder's model).
    """

    m: int
    candidates: List[FaultHypothesis]
    observations: int
    narrowed_from: int

    @property
    def is_unique(self) -> bool:
        return len(self.candidates) == 1

    @property
    def coordinates(self) -> List[SwitchCoordinate]:
        """The candidate coordinates (deduplicated, sorted)."""
        return sorted({coordinate for coordinate, _value in self.candidates})

    def require_unique(self) -> FaultHypothesis:
        """The single surviving hypothesis, or raise."""
        if not self.is_unique:
            raise LocalizationAmbiguousError(self.candidates or None)
        return self.candidates[0]

    def describe(self) -> str:
        if not self.candidates:
            return "no single stuck-at fault is consistent with the syndromes"
        body = ", ".join(
            f"({c.main_stage},{c.nested},{c.nested_stage},{c.box},{c.switch})"
            f"/stuck-{v}"
            for c, v in self.candidates
        )
        kind = "unique" if self.is_unique else "ambiguity class"
        return f"{kind}: {body}"


def _healthy_table(m: int, addresses: Sequence[int]) -> ControlTable:
    words = [Word(address=a, payload=j) for j, a in enumerate(addresses)]
    _outputs, record = BNBNetwork(m).route(words, record=True)
    assert record is not None
    return extract_controls(record)


def _simulate(
    m: int,
    addresses: Sequence[int],
    hypothesis: FaultHypothesis,
    model: str,
    table: Optional[ControlTable],
) -> Tuple[int, ...]:
    coordinate, value = hypothesis
    words = [Word(address=a, payload=j) for j, a in enumerate(addresses)]
    if model == "adaptive":
        outputs = route_with_stuck_switch(m, words, coordinate, value)
    else:
        if table is None:
            table = _healthy_table(m, addresses)
        outputs = replay_controls(
            m, words, inject_stuck_control(table, coordinate, value)
        )
    return tuple(word.address for word in outputs)


def localize(
    m: int,
    observations: Sequence[ProbeObservation],
    model: str = "adaptive",
    tables: Optional[Sequence[ControlTable]] = None,
) -> LocalizationResult:
    """Decode probe syndromes to the responsible switch.

    Parameters
    ----------
    m:
        Address width of the observed fabric.
    observations:
        Probe results, e.g. from :meth:`BISTSchedule.run
        <repro.faults.bist.BISTSchedule.run>`.  Clean observations are
        evidence too and must be included.
    model:
        ``"adaptive"`` (default) matches hypotheses with live
        re-deciding arbiters — the physical fabric;  ``"frozen"``
        matches against control-table replay.
    tables:
        Optional pre-computed healthy control tables, parallel to
        *observations* (a BIST schedule caches them); computed on
        demand otherwise.
    """
    if model not in ("adaptive", "frozen"):
        raise FaultError(f"unknown localization model {model!r}")
    if not observations:
        raise FaultError("localization needs at least one observation")
    if tables is not None and len(tables) != len(observations):
        raise FaultError(
            f"{len(tables)} control tables do not match "
            f"{len(observations)} observations"
        )

    table_of: Dict[int, ControlTable] = {}

    def healthy(index: int) -> ControlTable:
        if tables is not None:
            return tables[index]
        if index not in table_of:
            table_of[index] = _healthy_table(
                m, observations[index].addresses
            )
        return table_of[index]

    # Step 1: narrow on the dirty observations.
    #
    # Upstream of a single stuck switch the fabric behaves exactly as
    # recorded, so the control *computed* at the faulty switch equals
    # the healthy table's entry.  A dirty probe therefore proves the
    # fault was activated on it: healthy control != stuck value.  This
    # holds in both models.  Under the frozen model the misrouted words
    # additionally pin the switch onto their healthy paths (the
    # displaced pair traverses it), so the path trace narrows further;
    # adaptively a cascade can displace words whose healthy paths avoid
    # the fault, so paths are not used there.
    dirty = [i for i, o in enumerate(observations) if not o.clean]
    if not dirty:  # every probe clean: nothing to localize
        return LocalizationResult(
            m=m,
            candidates=[],
            observations=len(observations),
            narrowed_from=2 * len(enumerate_switch_coordinates(m)),
        )
    coordinate_pool: Set[SwitchCoordinate] = set(
        enumerate_switch_coordinates(m)
    )
    if model == "frozen":
        for index in dirty:
            coordinate_pool &= candidate_switches(
                m, observations[index], healthy(index)
            )
    hypotheses: List[FaultHypothesis] = []
    for coordinate in sorted(coordinate_pool):
        key = (
            coordinate.main_stage,
            coordinate.nested,
            coordinate.nested_stage,
            coordinate.box,
        )
        for value in (0, 1):
            if all(
                healthy(index)[key][coordinate.switch] != value
                for index in dirty
            ):
                hypotheses.append((coordinate, value))
    narrowed_from = len(hypotheses)

    # Step 2: forward-filter against every observation.
    survivors: List[FaultHypothesis] = []
    for hypothesis in hypotheses:
        consistent = True
        for index, observation in enumerate(observations):
            arrived = _simulate(
                m,
                observation.addresses,
                hypothesis,
                model,
                healthy(index) if model == "frozen" else None,
            )
            if arrived != observation.arrived:
                consistent = False
                break
        if consistent:
            survivors.append(hypothesis)
    return LocalizationResult(
        m=m,
        candidates=survivors,
        observations=len(observations),
        narrowed_from=narrowed_from,
    )
