"""The adaptive fault model: arbiters react to misrouted data.

:mod:`repro.faults.injector` freezes every control at its fault-free
value and replays — the right model for asking "what did this one
stuck switch change, all else equal".  Physically, though, a stuck
switch feeds *wrong data* to everything downstream, and the downstream
arbiters compute fresh flags from what actually arrives.  This module
implements that adaptive model:

* the routing loop re-decides every splitter from live data;
* exactly one switch ignores its control (stuck at 0 or 1);
* balance checking is off — a displaced bit can make a downstream
  block unbalanced, which is part of the physics.

Findings the tests pin down: the adaptive blast radius is still small
and even (words displace in pairs), misrouting can *cascade* beyond the
frozen model's single pair, and — because every word keeps its address
— a detect-and-reroute loop (re-inject the misdelivered words as a
follow-up partial permutation) recovers full delivery in a few passes
whenever the stuck switch is not exercised by the repair traffic.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..bits import address_bit, unshuffle_index
from ..core.splitter import Splitter
from ..core.traffic import complete_partial_permutation
from ..core.words import Word
from .detection import misrouted_outputs
from .injector import SwitchCoordinate

__all__ = [
    "route_with_stuck_switch",
    "RecoveryOutcome",
    "detect_and_reroute",
    "recovery_experiment",
]


def route_with_stuck_switch(
    m: int,
    words: Sequence[Word],
    coordinate: SwitchCoordinate,
    stuck_value: int,
) -> List[Word]:
    """Route through a BNB network with one switch stuck, adaptively.

    Every splitter decides from the data it actually receives; only the
    faulted switch ignores its (correctly computed) control.
    """
    if stuck_value not in (0, 1):
        raise ValueError(f"stuck value must be 0 or 1, got {stuck_value!r}")
    n = 1 << m
    if len(words) != n:
        raise ValueError(f"expected {n} words, got {len(words)}")
    splitters: Dict[int, Splitter] = {
        p: Splitter(p, check_balance=False) for p in range(1, m + 1)
    }
    current: List[Word] = list(words)
    for i in range(m):
        block_exp = m - i
        block = 1 << block_exp
        for l in range(1 << i):
            lo = l * block
            segment = current[lo : lo + block]
            for j in range(block_exp):
                width = 1 << (block_exp - j)
                splitter = splitters[block_exp - j]
                routed: List[Word] = [None] * block  # type: ignore[list-item]
                for box in range(1 << j):
                    base = box * width
                    sub = segment[base : base + width]
                    key_bits = [
                        address_bit(word.address, i, m) for word in sub
                    ]
                    controls = splitter.controls(key_bits)
                    if (
                        coordinate.main_stage == i
                        and coordinate.nested == l
                        and coordinate.nested_stage == j
                        and coordinate.box == box
                        and 0 <= coordinate.switch < len(controls)
                    ):
                        controls = list(controls)
                        controls[coordinate.switch] = stuck_value
                    from ..core.switchbox import apply_pair_controls

                    routed[base : base + width] = apply_pair_controls(
                        sub, controls
                    )
                if j < block_exp - 1:
                    connected: List[Word] = [None] * block  # type: ignore[list-item]
                    for offset, value in enumerate(routed):
                        connected[
                            unshuffle_index(offset, block_exp - j, block_exp)
                        ] = value
                    segment = connected
                else:
                    segment = routed
            current[lo : lo + block] = segment
        if i < m - 1:
            k = m - i
            reconnected: List[Word] = [None] * n  # type: ignore[list-item]
            for j, value in enumerate(current):
                reconnected[unshuffle_index(j, k, m)] = value
            current = reconnected
    return current


@dataclasses.dataclass
class RecoveryOutcome:
    """Result of the detect-and-reroute loop."""

    recovered: bool
    passes: int
    misrouted_per_pass: List[int]
    outputs: List[Optional[Word]]


def detect_and_reroute(
    m: int,
    addresses: Sequence[int],
    coordinate: SwitchCoordinate,
    stuck_value: int,
    max_passes: int = 8,
) -> RecoveryOutcome:
    """Deliver a permutation through a faulty fabric by repair passes.

    Pass 1 routes everything; misdelivered words (detected by the
    output-side address check) are withdrawn and re-injected as a
    partial permutation in the next pass, their input positions chosen
    by the completion algorithm.  Because each pass presents the stuck
    switch with different traffic, a pass in which the fault is inert
    (or harmless) completes the delivery.
    """
    n = 1 << m
    delivered: List[Optional[Word]] = [None] * n
    pending: List[Word] = [
        Word(address=addresses[j], payload=j) for j in range(n)
    ]
    misrouted_history: List[int] = []
    for pass_index in range(max_passes):
        request: List[Optional[int]] = [None] * n
        queue = list(pending)
        # Pack pending words onto the first free input lines.
        for line, word in enumerate(queue):
            request[line] = word.address
        full, real = complete_partial_permutation(request)
        pass_words = [
            queue[line] if real[line] else Word(address=full[line])
            for line in range(n)
        ]
        outputs = route_with_stuck_switch(
            m, pass_words, coordinate, stuck_value
        )
        bad_lines = set(misrouted_outputs(outputs))
        misrouted_history.append(len(bad_lines))
        next_pending: List[Word] = []
        for line, word in enumerate(outputs):
            if word.payload is None:
                continue  # filler
            if line == word.address:
                delivered[line] = word
            else:
                next_pending.append(word)
        pending = next_pending
        if not pending:
            return RecoveryOutcome(
                recovered=True,
                passes=pass_index + 1,
                misrouted_per_pass=misrouted_history,
                outputs=delivered,
            )
    return RecoveryOutcome(
        recovered=False,
        passes=max_passes,
        misrouted_per_pass=misrouted_history,
        outputs=delivered,
    )


def recovery_experiment(
    m: int,
    trials: int = 50,
    seed: int = 0,
    max_passes: int = 8,
    rng: Optional[random.Random] = None,
) -> Dict[str, float]:
    """Recovery statistics over random faults and random permutations.

    Determinism contract: permutations, fault sites and stuck values
    all come from one ``random.Random`` stream.  Pass *rng* to thread a
    shared seeded instance through several experiments (see
    :func:`~repro.faults.detection.fault_coverage_experiment`); else a
    private ``random.Random(seed)`` makes equal ``(m, trials, seed,
    max_passes)`` reproduce identical statistics.
    """
    from ..permutations.generators import random_permutation
    from .injector import enumerate_switch_coordinates

    if rng is None:
        rng = random.Random(seed)
    coordinates = enumerate_switch_coordinates(m)
    recovered = 0
    total_passes = 0
    worst = 0
    for _ in range(trials):
        pi = random_permutation(1 << m, rng=rng)
        coordinate = rng.choice(coordinates)
        stuck_value = rng.randrange(2)
        outcome = detect_and_reroute(
            m, pi.to_list(), coordinate, stuck_value, max_passes=max_passes
        )
        if outcome.recovered:
            recovered += 1
            total_passes += outcome.passes
            worst = max(worst, outcome.passes)
    return {
        "recovery_rate": recovered / trials,
        "mean_passes": (total_passes / recovered) if recovered else float("inf"),
        "worst_passes": float(worst),
    }
