"""Built-in self-test (BIST) probe schedules for the BNB network.

A stuck-at fault on a switch control is only *visible* when the probe
traffic (a) drives the healthy control to the opposite value and (b)
the resulting displacement survives to the outputs.  Random workloads
hit a given fault with probability about one half per pass; a BIST
schedule replaces that hope with a guarantee: a small, deterministic
set of probe permutations, derived from
:func:`~repro.faults.injector.enumerate_switch_coordinates`, that
together

* exercise **both control values of every 2 x 2 switch** (so in the
  frozen-replay model every activated single stuck-at fault displaces
  a pair of words and is caught by the output-side address check), and
* with ``ensure_detection=True`` (the default) additionally produce a
  **non-empty syndrome under the adaptive model** for every single
  stuck-at fault — the physical model in which downstream arbiters
  re-decide on live data and can mask early faults.

The schedule is built greedily from a deterministic candidate stream
(identity, reversal, then permutations from a fixed-seed generator),
so two builds for the same ``m`` are identical.  The probe count grows
like the coupon-collector logarithm of the switch count, not like the
network size — a handful of probes certifies all ``O(N log^2 N)``
switches, which is what makes periodic in-service probing affordable.

Each probe caches its healthy control table and the healthy output
arrangement, so the syndrome decoder
(:mod:`repro.faults.localization`) can trace observed misroutes back
through the recorded controls without re-routing.
"""

from __future__ import annotations

import dataclasses
import functools
import random
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.bnb import BNBNetwork
from ..core.words import Word
from ..exceptions import FaultError
from ..permutations.generators import random_permutation
from .adaptive import route_with_stuck_switch
from .detection import misrouted_outputs
from .injector import (
    ControlTable,
    SwitchCoordinate,
    enumerate_switch_coordinates,
    extract_controls,
)

__all__ = [
    "BISTProbe",
    "BISTSchedule",
    "build_bist_schedule",
    "candidate_probe_stream",
    "shared_bist_schedule",
]

#: (coordinate, stuck value) — one hypothetical single stuck-at fault.
FaultHypothesis = Tuple[SwitchCoordinate, int]

#: Fixed seed for the candidate stream; part of the determinism contract.
_CANDIDATE_SEED = 0xB157


@dataclasses.dataclass(frozen=True)
class BISTProbe:
    """One probe permutation plus everything its healthy pass decided."""

    index: int
    addresses: Tuple[int, ...]
    controls: ControlTable

    def words(self) -> List[Word]:
        """The probe's input words (payload = source line)."""
        return [
            Word(address=a, payload=("bist", self.index, j))
            for j, a in enumerate(self.addresses)
        ]

    def covered_values(self) -> Dict[SwitchCoordinate, int]:
        """The control value this probe drives each switch to."""
        covered: Dict[SwitchCoordinate, int] = {}
        for (i, l, j, box), controls in self.controls.items():
            for t, value in enumerate(controls):
                covered[SwitchCoordinate(i, l, j, box, t)] = value
        return covered


@dataclasses.dataclass
class BISTSchedule:
    """A deterministic probe schedule with full stuck-at coverage.

    ``inert`` lists the (coordinate, stuck value) pairs the candidate
    stream could never activate — empty under the default strict build,
    and populated only by ``require_full_coverage=False`` builds at
    ``m >= 5``, where boundary switches of the innermost stages have
    control values no legal permutation exercises (their stuck faults
    cannot displace traffic and need no probe).
    """

    m: int
    probes: List[BISTProbe]
    inert: Tuple[FaultHypothesis, ...] = ()

    @property
    def n(self) -> int:
        return 1 << self.m

    @property
    def probe_count(self) -> int:
        return len(self.probes)

    def coverage(self) -> Dict[FaultHypothesis, List[int]]:
        """Map every (coordinate, stuck value) to the probes that
        *activate* it (healthy control differs from the stuck value)."""
        activated: Dict[FaultHypothesis, List[int]] = {
            (coordinate, value): []
            for coordinate in enumerate_switch_coordinates(self.m)
            for value in (0, 1)
        }
        for probe in self.probes:
            for coordinate, healthy in probe.covered_values().items():
                activated[(coordinate, 1 - healthy)].append(probe.index)
        return activated

    def uncovered(self) -> List[FaultHypothesis]:
        """Hypotheses no probe activates (empty for a valid schedule)."""
        return [pair for pair, hits in self.coverage().items() if not hits]

    def run(
        self,
        route_fn: Callable[[List[Word]], Sequence[Word]],
        on_probe: Optional[Callable[["BISTProbe", "ProbeObservation"], None]] = None,
    ) -> List["ProbeObservation"]:
        """Push every probe through *route_fn* and collect observations.

        *route_fn* receives the probe's input words and returns the
        output words line by line — typically a closure over a live
        (possibly faulty) fabric.  When given, ``on_probe(probe,
        observation)`` fires after each probe completes — the telemetry
        layer counts probes per outcome through it without the schedule
        knowing anything about metrics.
        """
        from .localization import ProbeObservation

        observations: List[ProbeObservation] = []
        for probe in self.probes:
            outputs = route_fn(probe.words())
            if len(outputs) != self.n:
                raise FaultError(
                    f"probe {probe.index} returned {len(outputs)} outputs "
                    f"for an N={self.n} fabric"
                )
            observation = ProbeObservation(
                addresses=probe.addresses,
                arrived=tuple(word.address for word in outputs),
            )
            observations.append(observation)
            if on_probe is not None:
                on_probe(probe, observation)
        return observations

    def run_pipelined(
        self,
        fabric,
        on_probe: Optional[Callable[["BISTProbe", "ProbeObservation"], None]] = None,
    ) -> List["ProbeObservation"]:
        """Push the whole schedule through a pipelined fabric, batched.

        The vector counterpart of :meth:`run`: instead of routing each
        probe to completion before offering the next (``P * (m + 1)``
        cycles), all probes enter back to back — one per cycle, the
        pipeline's design point — and the pass completes in
        ``P + m`` cycles.  *fabric* is any pipelined engine with the
        shared ``offer_words`` / ``step`` / ``drain`` / ``in_flight``
        surface (in practice a possibly-faulty
        :class:`~repro.core.pipeline_fast.VectorPipelinedFabric`); it
        must be idle, and is idle again on return.  Arrived addresses
        are decoded into observations in one vectorized pass
        (:func:`~repro.faults.localization.observations_from_arrays`).
        """
        from .localization import observations_from_arrays

        if getattr(fabric, "in_flight", 0) or not fabric.can_accept:
            raise FaultError("a pipelined BIST pass needs an idle fabric")
        completed = []
        for probe in self.probes:
            fabric.offer_words(probe.words(), tag=("bist", probe.index))
            completed.extend(fabric.step())
        completed.extend(fabric.drain())
        outputs_by_tag = dict(completed)
        arrived = np.empty((len(self.probes), self.n), dtype=np.int64)
        for row, probe in enumerate(self.probes):
            outputs = outputs_by_tag.get(("bist", probe.index))
            if outputs is None or len(outputs) != self.n:
                raise FaultError(
                    f"probe {probe.index} did not complete cleanly on the "
                    f"pipelined fabric"
                )
            arrived[row] = [word.address for word in outputs]
        sent = np.array(
            [probe.addresses for probe in self.probes], dtype=np.int64
        )
        observations = observations_from_arrays(sent, arrived)
        if on_probe is not None:
            for probe, observation in zip(self.probes, observations):
                on_probe(probe, observation)
        return observations

    def detects(
        self, coordinate: SwitchCoordinate, stuck_value: int
    ) -> Optional[int]:
        """Index of the first probe whose *adaptive* syndrome is
        non-empty under the given fault, or ``None`` if the schedule
        cannot expose it."""
        for probe in self.probes:
            outputs = route_with_stuck_switch(
                self.m, probe.words(), coordinate, stuck_value
            )
            if misrouted_outputs(outputs):
                return probe.index
        return None


def candidate_probe_stream(m: int):
    """Deterministic, endless stream of candidate probe permutations.

    Structured permutations first (identity and reversal pin the two
    trivial control patterns), then permutations drawn from a
    fixed-seed generator.  The stream is a pure function of ``m``.
    """
    n = 1 << m
    yield list(range(n))
    yield list(reversed(range(n)))
    rng = random.Random(_CANDIDATE_SEED + m)
    while True:
        yield random_permutation(n, rng=rng).to_list()


def _probe_for(network: BNBNetwork, index: int, addresses: Sequence[int]) -> BISTProbe:
    words = [Word(address=a, payload=j) for j, a in enumerate(addresses)]
    _outputs, record = network.route(words, record=True)
    assert record is not None
    return BISTProbe(
        index=index,
        addresses=tuple(addresses),
        controls=extract_controls(record),
    )


def build_bist_schedule(
    m: int,
    ensure_detection: bool = True,
    max_candidates: int = 256,
    require_full_coverage: bool = True,
) -> BISTSchedule:
    """Build the deterministic BIST schedule for a ``2**m``-input fabric.

    Phase 1 greedily selects probes until every switch has been driven
    to both control values (full activation coverage).  Phase 2 (when
    *ensure_detection* is set) simulates every remaining single
    stuck-at fault under the adaptive model and appends probes until
    each one produces a visible syndrome; this is the guarantee the
    online service relies on, at a build cost of
    ``O(faults x probes x route)`` — fine for the sizes the service
    targets, and skippable for structural studies at large ``m``.

    Raises :class:`~repro.exceptions.FaultError` if *max_candidates*
    probes cannot close the coverage.  Through ``m = 4`` that never
    happens; from ``m = 5`` on it always does, because the nested
    networks grow control-invariant boundary switches (the first box of
    a final inner stage always steers 0, the last always 1) whose
    opposite stuck value no legal permutation can activate.  Pass
    ``require_full_coverage=False`` to accept that: the leftover pairs
    are recorded as :attr:`BISTSchedule.inert` instead of raising, and
    phase 2 skips them (an inert fault cannot displace traffic, so
    there is no syndrome to guarantee).  Large-``m`` builds normally
    pair this with ``ensure_detection=False``: past ``m = 4`` some
    activatable faults are also architecturally masked on every
    candidate probe, so the phase-2 guarantee stops being closable too.
    """
    if m < 1:
        raise FaultError(f"a BIST schedule needs m >= 1, got {m}")
    network = BNBNetwork(m)
    stream = candidate_probe_stream(m)

    # Phase 1: cover both control values of every switch.
    uncovered: Set[FaultHypothesis] = {
        (coordinate, value)
        for coordinate in enumerate_switch_coordinates(m)
        for value in (0, 1)
    }
    probes: List[BISTProbe] = []
    for candidate_index in range(max_candidates):
        if not uncovered:
            break
        candidate = _probe_for(network, len(probes), next(stream))
        gained = {
            (coordinate, 1 - healthy)
            for coordinate, healthy in candidate.covered_values().items()
        } & uncovered
        if gained:
            probes.append(candidate)
            uncovered -= gained
    if uncovered and require_full_coverage:
        raise FaultError(
            f"BIST coverage incomplete after {max_candidates} candidates: "
            f"{len(uncovered)} (coordinate, value) pairs unexercised"
        )
    inert = tuple(sorted(uncovered))

    schedule = BISTSchedule(m=m, probes=probes, inert=inert)
    if not ensure_detection:
        return schedule

    # Phase 2: every activatable fault must yield a visible syndrome.
    undetected: List[FaultHypothesis] = [
        pair
        for pair in sorted(
            (c, v) for c in enumerate_switch_coordinates(m) for v in (0, 1)
        )
        if pair not in uncovered and schedule.detects(*pair) is None
    ]
    attempts = 0
    while undetected:
        if attempts >= max_candidates:
            raise FaultError(
                f"BIST detection guarantee incomplete after "
                f"{max_candidates} extra candidates: {len(undetected)} "
                f"fault(s) never produce a visible syndrome"
            )
        attempts += 1
        candidate = _probe_for(network, len(probes), next(stream))
        exposed = [
            (coordinate, value)
            for coordinate, value in undetected
            if misrouted_outputs(
                route_with_stuck_switch(m, candidate.words(), coordinate, value)
            )
        ]
        if exposed:
            probes.append(candidate)
            schedule = BISTSchedule(m=m, probes=probes, inert=inert)
            undetected = [pair for pair in undetected if pair not in exposed]
    return BISTSchedule(m=m, probes=probes, inert=inert)


@functools.lru_cache(maxsize=None)
def shared_bist_schedule(m: int) -> BISTSchedule:
    """The default-parameter schedule, built once per process per ``m``.

    Phase 2 of the build simulates every single stuck-at fault, which
    is the expensive part; a multi-plane gateway would otherwise pay it
    once per resilient plane.  The schedule is treated as immutable by
    every consumer (the service layer only reads it), mirroring the
    :func:`~repro.core.plan.compiled_plan` cache discipline.
    """
    return build_bist_schedule(m)
