"""Stuck-at fault injection on BNB switch settings.

The model: a routing pass is performed fault-free to obtain every
switch's control bit (the :class:`~repro.core.bnb.BNBRoutingRecord`);
a fault forces one control to a constant; the perturbed controls are
then *replayed* through the network structure.  Replaying rather than
re-deciding matches the physical failure being modelled — a stuck
switch ignores its (correctly computed) control signal — and it also
covers the follower slices, which by construction share the faulted
switch's setting.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..bits import unshuffle_index
from ..core.bnb import BNBNetwork, BNBRoutingRecord
from ..core.pipeline import ControlOverride, stuck_control_override
from ..core.plan import FaultMask, build_fault_mask
from ..core.switchbox import apply_pair_controls
from ..core.words import Word
from ..exceptions import FaultError

__all__ = [
    "SwitchCoordinate",
    "enumerate_switch_coordinates",
    "extract_controls",
    "fault_mask_for",
    "inject_stuck_control",
    "random_fault_set",
    "replay_controls",
    "stuck_override_set",
]

ControlTable = Dict[Tuple[int, int, int, int], List[int]]


@dataclasses.dataclass(frozen=True, order=True)
class SwitchCoordinate:
    """Address of one 2 x 2 switch in the BNB control structure.

    ``main_stage`` selects the main-network stage, ``nested`` the
    NB(main_stage, nested) network, ``nested_stage`` and ``box`` the
    splitter within it, ``switch`` the 2 x 2 switch within the
    splitter.
    """

    main_stage: int
    nested: int
    nested_stage: int
    box: int
    switch: int


def enumerate_switch_coordinates(m: int) -> List[SwitchCoordinate]:
    """All switch coordinates of a ``2**m``-input BNB network.

    The count equals the per-slice switch total ``sum_i 2^i *
    (P/2) log P`` (the paper's Eq. 3 summed over the main network) —
    asserted in tests against ``BNBNetwork.switch_count`` divided by
    the slice multiplicity.
    """
    coordinates: List[SwitchCoordinate] = []
    for i in range(m):
        block_exp = m - i
        for l in range(1 << i):
            for j in range(block_exp):
                width = 1 << (block_exp - j)
                for box in range(1 << j):
                    for t in range(width // 2):
                        coordinates.append(
                            SwitchCoordinate(
                                main_stage=i,
                                nested=l,
                                nested_stage=j,
                                box=box,
                                switch=t,
                            )
                        )
    return coordinates


#: One stuck-at fault as the faults layer names it.
StuckFault = Tuple[SwitchCoordinate, int]


def fault_mask_for(
    m: int,
    faults: Iterable[StuckFault],
    dead_links: Iterable[Tuple[int, int]] = (),
) -> FaultMask:
    """Compile a set of stuck-at faults into a vector-engine fault mask.

    The bridge between this layer's :class:`SwitchCoordinate` naming
    and the core layer's plain-tuple :func:`~repro.core.plan.build_fault_mask`
    (core stays import-free of the faults layer; this direction is fine).
    """
    return build_fault_mask(
        m,
        stuck=[
            (
                (
                    coordinate.main_stage,
                    coordinate.nested,
                    coordinate.nested_stage,
                    coordinate.box,
                    coordinate.switch,
                ),
                value,
            )
            for coordinate, value in faults
        ],
        dead_links=dead_links,
    )


def stuck_override_set(faults: Iterable[StuckFault]) -> ControlOverride:
    """One composed object-engine override for a whole stuck fault set.

    Equivalent to chaining
    :func:`~repro.core.pipeline.stuck_control_override` per fault —
    each stuck switch holds its value regardless of what the arbiter
    (or an earlier fault on the same splitter) decided.  The object
    counterpart of :func:`fault_mask_for`, so differential tests can
    drive both engines from the same declarative fault set.
    """
    overrides = [
        stuck_control_override(
            coordinate.main_stage,
            coordinate.nested,
            coordinate.nested_stage,
            coordinate.box,
            coordinate.switch,
            value,
        )
        for coordinate, value in faults
    ]

    def override(
        i: int, l: int, j: int, b: int, controls: List[int]
    ) -> List[int]:
        for apply in overrides:
            controls = apply(i, l, j, b, controls)
        return controls

    return override


def random_fault_set(
    m: int,
    count: int,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[StuckFault]:
    """Draw *count* distinct stuck-at faults, reproducibly.

    Follows the experiment rng convention: all randomness comes from
    one stream — pass *rng* to thread a shared stream across
    experiments, or rely on *seed* for standalone reproducibility.
    Distinct means distinct switch coordinates; the stuck value is an
    independent coin flip per fault.
    """
    if rng is None:
        rng = random.Random(seed)
    coordinates = enumerate_switch_coordinates(m)
    if not 0 <= count <= len(coordinates):
        raise FaultError(
            f"cannot draw {count} distinct faults from "
            f"{len(coordinates)} switches at m={m}"
        )
    chosen = rng.sample(coordinates, count)
    return [(coordinate, rng.randrange(2)) for coordinate in chosen]


def extract_controls(record: BNBRoutingRecord) -> ControlTable:
    """Flatten a routing record into a control lookup table."""
    table: ControlTable = {}
    for (main_stage, nested), bsn_record in record.nested_records.items():
        for (nested_stage, box), splitter_record in bsn_record.splitters.items():
            table[(main_stage, nested, nested_stage, box)] = list(
                splitter_record.controls
            )
    return table


def inject_stuck_control(
    table: ControlTable, coordinate: SwitchCoordinate, value: int
) -> ControlTable:
    """Return a copy of *table* with one switch stuck at *value*."""
    if value not in (0, 1):
        raise FaultError(f"stuck-at value must be 0 or 1, got {value!r}")
    key = (
        coordinate.main_stage,
        coordinate.nested,
        coordinate.nested_stage,
        coordinate.box,
    )
    if key not in table:
        raise FaultError(f"no splitter at {key} in the control table")
    controls = table[key]
    if not 0 <= coordinate.switch < len(controls):
        raise FaultError(
            f"switch {coordinate.switch} out of range for splitter {key} "
            f"({len(controls)} switches)"
        )
    perturbed = {k: list(v) for k, v in table.items()}
    perturbed[key][coordinate.switch] = value
    return perturbed


def replay_controls(
    m: int, words: Sequence[Word], table: ControlTable
) -> List[Word]:
    """Push *words* through the BNB structure under explicit controls.

    No splitter decisions are made; the table is the single source of
    switch settings.  Replaying an unperturbed table must reproduce the
    fault-free output exactly (a tested invariant).
    """
    n = 1 << m
    if len(words) != n:
        raise ValueError(f"expected {n} words, got {len(words)}")
    current: List[Word] = list(words)
    for i in range(m):
        block_exp = m - i
        block = 1 << block_exp
        for l in range(1 << i):
            lo = l * block
            segment = current[lo : lo + block]
            for j in range(block_exp):
                width = 1 << (block_exp - j)
                routed: List[Word] = [None] * block  # type: ignore[list-item]
                for box in range(1 << j):
                    base = box * width
                    key = (i, l, j, box)
                    controls = table.get(key)
                    if controls is None:
                        raise FaultError(f"control table missing splitter {key}")
                    routed[base : base + width] = apply_pair_controls(
                        segment[base : base + width], controls
                    )
                if j < block_exp - 1:
                    connected: List[Word] = [None] * block  # type: ignore[list-item]
                    for offset, value in enumerate(routed):
                        connected[
                            unshuffle_index(offset, block_exp - j, block_exp)
                        ] = value
                    segment = connected
                else:
                    segment = routed
            current[lo : lo + block] = segment
        if i < m - 1:
            k = m - i
            reconnected: List[Word] = [None] * n  # type: ignore[list-item]
            for j, value in enumerate(current):
                reconnected[unshuffle_index(j, k, m)] = value
            current = reconnected
    return current
