"""Fault-coverage experiments: what does a stuck switch do?

A permutation network misroutes *visibly*: a stuck switch displaces a
set of packets, and because every packet carries its destination
address, an output-side comparison (``arrived address == line``)
detects the fault whenever any displaced packet's route actually
depended on the stuck control.  These experiments quantify that:

* the **blast radius** — how many outputs a single stuck-at fault
  corrupts (always 0 or an even number >= 2: switches displace packets
  in pairs along two subtree paths);
* the **detection rate** — the probability a random permutation
  exercises the fault (the control already equals the stuck value for
  some workloads, making the fault silent for that routing).
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence

from ..core.bnb import BNBNetwork
from ..core.words import Word
from ..permutations.generators import random_permutation
from .injector import (
    SwitchCoordinate,
    enumerate_switch_coordinates,
    extract_controls,
    inject_stuck_control,
    replay_controls,
)

__all__ = [
    "FaultTrial",
    "FaultCoverageReport",
    "misrouted_outputs",
    "fault_coverage_experiment",
]


def misrouted_outputs(outputs: Sequence[Word]) -> List[int]:
    """Output lines whose arrived address does not match (the detector)."""
    return [line for line, word in enumerate(outputs) if word.address != line]


@dataclasses.dataclass(frozen=True)
class FaultTrial:
    """One (permutation, fault) experiment."""

    coordinate: SwitchCoordinate
    stuck_value: int
    activated: bool
    misrouted: int


@dataclasses.dataclass
class FaultCoverageReport:
    """Aggregate over many fault trials."""

    m: int
    trials: List[FaultTrial]

    @property
    def trial_count(self) -> int:
        return len(self.trials)

    @property
    def activation_rate(self) -> float:
        """Fraction of trials where the stuck value differed from the
        fault-free control (the fault could do anything at all)."""
        if not self.trials:
            return 0.0
        return sum(t.activated for t in self.trials) / len(self.trials)

    @property
    def detection_rate_given_activation(self) -> float:
        """Among activated faults, fraction detected by the address check."""
        activated = [t for t in self.trials if t.activated]
        if not activated:
            return 0.0
        return sum(t.misrouted > 0 for t in activated) / len(activated)

    @property
    def max_blast_radius(self) -> int:
        return max((t.misrouted for t in self.trials), default=0)

    def blast_radius_histogram(self) -> dict:
        histogram: dict = {}
        for trial in self.trials:
            histogram[trial.misrouted] = histogram.get(trial.misrouted, 0) + 1
        return histogram


def fault_coverage_experiment(
    m: int,
    trials: int = 100,
    seed: int = 0,
    coordinate: Optional[SwitchCoordinate] = None,
    rng: Optional[random.Random] = None,
) -> FaultCoverageReport:
    """Run single-stuck-at trials on a ``2**m``-input BNB network.

    Each trial draws a uniform permutation, routes it fault-free to
    collect controls, sticks one switch (a fixed *coordinate* if given,
    else a random one per trial) at a random value, replays, and counts
    misrouted outputs.

    Determinism contract: all randomness (permutations, fault sites,
    stuck values) is drawn from a single ``random.Random`` stream.
    Pass *rng* to share that stream across several experiments — e.g.
    one seeded instance threaded through this and
    :func:`~repro.faults.adaptive.recovery_experiment` makes the whole
    multi-experiment run reproducible from one seed.  Without *rng*, a
    private ``random.Random(seed)`` is used, so equal ``(m, trials,
    seed, coordinate)`` always reproduce the same report.
    """
    if trials <= 0:
        raise ValueError(f"need a positive trial count, got {trials}")
    if rng is None:
        rng = random.Random(seed)
    network = BNBNetwork(m)
    coordinates = enumerate_switch_coordinates(m)
    results: List[FaultTrial] = []
    for _ in range(trials):
        pi = random_permutation(network.n, rng=rng)
        words = [Word(address=pi(j), payload=j) for j in range(network.n)]
        _outputs, record = network.route(words, record=True)
        assert record is not None
        table = extract_controls(record)
        target = coordinate or rng.choice(coordinates)
        stuck_value = rng.randrange(2)
        key = (target.main_stage, target.nested, target.nested_stage, target.box)
        activated = table[key][target.switch] != stuck_value
        perturbed = inject_stuck_control(table, target, stuck_value)
        faulty_outputs = replay_controls(m, words, perturbed)
        results.append(
            FaultTrial(
                coordinate=target,
                stuck_value=stuck_value,
                activated=activated,
                misrouted=len(misrouted_outputs(faulty_outputs)),
            )
        )
    return FaultCoverageReport(m=m, trials=results)
