"""Packet-level simulation of a switch built on the BNB fabric.

The paper motivates the network as the core of a switching system; this
module closes the loop with a queueing simulation around the routing
fabric:

* Bernoulli arrivals per input per cycle, uniform random destinations
  (the standard admissible workload);
* per-cycle arbitration picks a conflict-free partial permutation —
  either **FIFO** input queues (head-of-line packets contend; the
  classic HOL-blocking regime whose saturation throughput tends to
  ``2 - sqrt(2) ~ 0.586``) or **VOQ** (virtual output queues with a
  greedy maximal matching, which removes HOL blocking);
* the selected packets are routed through an actual
  :class:`~repro.core.bnb.BNBNetwork` pass each cycle (so the fabric,
  not an abstraction, carries every packet);
* measurements: delivered throughput, mean queueing latency, queue
  depths.

Tests reproduce the famous shape: FIFO saturates well below 1.0 while
VOQ sustains near-full load.
"""

from __future__ import annotations

import dataclasses
import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..core.bnb import BNBNetwork
from ..core.traffic import route_partial

__all__ = ["Packet", "SwitchSimulator", "SwitchStats"]


@dataclasses.dataclass
class Packet:
    """One queued packet."""

    source: int
    destination: int
    arrived_cycle: int
    delivered_cycle: Optional[int] = None

    @property
    def latency(self) -> Optional[int]:
        if self.delivered_cycle is None:
            return None
        return self.delivered_cycle - self.arrived_cycle


@dataclasses.dataclass
class SwitchStats:
    """Aggregate results of a simulation run."""

    ports: int
    cycles: int
    offered: int
    delivered: int
    mean_latency: float
    max_queue_depth: int

    @property
    def throughput(self) -> float:
        """Delivered packets per input port per cycle (1.0 = full load)."""
        total_slots = self.cycles * self.ports
        return self.delivered / total_slots if total_slots else 0.0

    @property
    def offered_load(self) -> float:
        total_slots = self.cycles * self.ports
        return self.offered / total_slots if total_slots else 0.0


class SwitchSimulator:
    """Cycle-accurate input-queued switch around a BNB fabric.

    Parameters
    ----------
    m:
        Fabric size exponent (``N = 2**m`` ports).
    mode:
        ``"fifo"`` — one FIFO per input, head-of-line packets contend
        (oldest first, ties by port index);
        ``"voq"`` — per-(input, output) virtual output queues with a
        randomized greedy maximal matching each cycle.
    seed:
        Seed for arrivals and arbitration randomness.
    """

    MODES = ("fifo", "voq")

    def __init__(self, m: int, mode: str = "fifo", seed: int = 0) -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.network = BNBNetwork(m)
        self.n = self.network.n
        self.mode = mode
        self._rng = random.Random(seed)
        self.cycle = 0
        self.offered = 0
        self.delivered: List[Packet] = []
        self._fifo: List[Deque[Packet]] = [deque() for _ in range(self.n)]
        self._voq: List[List[Deque[Packet]]] = [
            [deque() for _ in range(self.n)] for _ in range(self.n)
        ]
        self.max_queue_depth = 0

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def _inject(self, load: float) -> None:
        for port in range(self.n):
            if self._rng.random() < load:
                packet = Packet(
                    source=port,
                    destination=self._rng.randrange(self.n),
                    arrived_cycle=self.cycle,
                )
                self.offered += 1
                if self.mode == "fifo":
                    self._fifo[port].append(packet)
                else:
                    self._voq[port][packet.destination].append(packet)
        if self.mode == "fifo":
            depth = max(len(q) for q in self._fifo)
        else:
            depth = max(
                sum(len(q) for q in queues) for queues in self._voq
            )
        self.max_queue_depth = max(self.max_queue_depth, depth)

    # ------------------------------------------------------------------
    # Arbitration
    # ------------------------------------------------------------------
    def _arbitrate_fifo(self) -> Dict[int, Packet]:
        """Head-of-line packets, oldest wins per output."""
        winners: Dict[int, Packet] = {}
        for port in range(self.n):
            queue = self._fifo[port]
            if not queue:
                continue
            head = queue[0]
            incumbent = winners.get(head.destination)
            if incumbent is None or head.arrived_cycle < incumbent.arrived_cycle:
                winners[head.destination] = head
        return winners

    def _arbitrate_voq(self) -> Dict[int, Packet]:
        """Randomized greedy maximal matching over non-empty VOQs."""
        winners: Dict[int, Packet] = {}
        taken_inputs = set()
        outputs = list(range(self.n))
        self._rng.shuffle(outputs)
        for output in outputs:
            candidates = [
                port
                for port in range(self.n)
                if port not in taken_inputs and self._voq[port][output]
            ]
            if not candidates:
                continue
            port = min(
                candidates,
                key=lambda p: (self._voq[p][output][0].arrived_cycle, p),
            )
            winners[output] = self._voq[port][output][0]
            taken_inputs.add(port)
        return winners

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def step(self, load: float) -> int:
        """Inject, arbitrate, route through the fabric; return deliveries."""
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        self._inject(load)
        winners = (
            self._arbitrate_fifo() if self.mode == "fifo" else self._arbitrate_voq()
        )
        requests: List[Optional[Tuple[int, Packet]]] = [None] * self.n
        for packet in winners.values():
            requests[packet.source] = (packet.destination, packet)
        delivered_now = 0
        if winners:
            result = route_partial(self.network, requests)
            for output in range(self.n):
                packet = result.outputs[output]
                if packet is None:
                    continue
                assert packet.destination == output  # fabric delivered it
                packet.delivered_cycle = self.cycle
                self.delivered.append(packet)
                delivered_now += 1
                if self.mode == "fifo":
                    popped = self._fifo[packet.source].popleft()
                    assert popped is packet
                else:
                    popped = self._voq[packet.source][output].popleft()
                    assert popped is packet
        self.cycle += 1
        return delivered_now

    def run(self, cycles: int, load: float) -> SwitchStats:
        """Run *cycles* of traffic at the given offered *load*."""
        if cycles <= 0:
            raise ValueError(f"need a positive cycle count, got {cycles}")
        for _ in range(cycles):
            self.step(load)
        latencies = [p.latency for p in self.delivered if p.latency is not None]
        return SwitchStats(
            ports=self.n,
            cycles=self.cycle,
            offered=self.offered,
            delivered=len(self.delivered),
            mean_latency=(sum(latencies) / len(latencies)) if latencies else 0.0,
            max_queue_depth=self.max_queue_depth,
        )

    def __repr__(self) -> str:
        return (
            f"SwitchSimulator(n={self.n}, mode={self.mode!r}, "
            f"cycle={self.cycle})"
        )
