"""A small discrete-event simulation (DES) kernel.

The paper evaluates propagation delay analytically; this package lets
the reproduction *measure* it instead.  Gate- and component-level
models of the networks are simulated event by event: an input edge at
``t = 0`` propagates through elements with configurable delays
(``D_SW`` per 2 x 2 switch, ``D_FN`` per arbiter function node, or
per-gate-type delays for netlists), and the quiescence time of the
simulation is the network's propagation delay.  Benchmarks compare
those measurements against Eqs. 7-9 and 12 and Table 2.

Layering:

* :mod:`~repro.sim.events` / :mod:`~repro.sim.kernel` — generic event
  queue and simulator (usable for anything, not just logic);
* :mod:`~repro.sim.signals` — signals with listeners, the wiring glue;
* :mod:`~repro.sim.logic` — event-driven evaluation of
  :class:`~repro.hardware.netlist.Netlist` objects;
* :mod:`~repro.sim.monitors` — probes and waveform capture.
"""

from .events import Event, EventQueue
from .kernel import Simulator
from .signals import Signal, SignalBus
from .logic import GateLevelSimulator, DelayModel, UNIT_DELAYS
from .monitors import Probe, WaveformRecorder
from .switchsim import Packet, SwitchSimulator, SwitchStats

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Signal",
    "SignalBus",
    "GateLevelSimulator",
    "DelayModel",
    "UNIT_DELAYS",
    "Probe",
    "WaveformRecorder",
    "Packet",
    "SwitchSimulator",
    "SwitchStats",
]
