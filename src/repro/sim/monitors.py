"""Probes and waveform capture for simulations."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from .signals import Signal

__all__ = ["Probe", "WaveformRecorder"]


@dataclasses.dataclass
class Probe:
    """Records every value change of one signal as ``(time, value)``."""

    signal: Signal
    history: List[Tuple[float, Optional[int]]] = dataclasses.field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        self.signal.listen(self._on_change)

    def _on_change(self, signal: Signal) -> None:
        self.history.append((signal.last_change, signal.value))

    @property
    def transition_count(self) -> int:
        return len(self.history)

    def final_value(self) -> Optional[int]:
        return self.history[-1][1] if self.history else self.signal.value

    def settle_time(self) -> float:
        return self.history[-1][0] if self.history else 0.0


class WaveformRecorder:
    """Probes a set of signals and renders a simple ASCII waveform."""

    def __init__(self) -> None:
        self._probes: Dict[str, Probe] = {}

    def watch(self, name: str, signal: Signal) -> Probe:
        probe = Probe(signal)
        self._probes[name] = probe
        return probe

    def settle_time(self) -> float:
        """Latest transition across all watched signals."""
        return max(
            (probe.settle_time() for probe in self._probes.values()),
            default=0.0,
        )

    def render(self, resolution: float = 1.0) -> str:
        """An ASCII timeline: one row per signal, one column per tick."""
        if not self._probes:
            return "(no signals watched)"
        horizon = self.settle_time()
        ticks = int(horizon / resolution) + 1
        rows: List[str] = []
        width = max(len(name) for name in self._probes)
        for name, probe in self._probes.items():
            cells: List[str] = []
            for tick in range(ticks + 1):
                time = tick * resolution
                value: Optional[int] = None
                for change_time, change_value in probe.history:
                    if change_time <= time:
                        value = change_value
                    else:
                        break
                cells.append("x" if value is None else str(value))
            rows.append(f"{name:>{width}} | {''.join(cells)}")
        return "\n".join(rows)
