"""Signals: time-stamped values with change listeners.

A :class:`Signal` holds one logic value and notifies subscribed
listeners when it changes; listeners are typically gate models that
re-evaluate and schedule their own output updates on the simulator.
:class:`SignalBus` groups signals for multi-bit convenience.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["Signal", "SignalBus"]

Listener = Callable[["Signal"], None]

UNKNOWN = None  # signals start unknown ("X") until driven


class Signal:
    """One wire with a current value and change listeners."""

    __slots__ = ("name", "value", "last_change", "_listeners")

    def __init__(self, name: str = "", value: Optional[int] = UNKNOWN) -> None:
        self.name = name
        self.value = value
        self.last_change: float = 0.0
        self._listeners: List[Listener] = []

    def listen(self, listener: Listener) -> None:
        """Subscribe *listener* to changes of this signal."""
        self._listeners.append(listener)

    def set(self, value: Optional[int], time: float) -> bool:
        """Drive the signal; notify listeners only on an actual change."""
        if value == self.value:
            return False
        self.value = value
        self.last_change = time
        for listener in self._listeners:
            listener(self)
        return True

    def __repr__(self) -> str:
        return f"Signal({self.name!r}={self.value})"


class SignalBus:
    """An ordered group of signals (a multi-bit value)."""

    def __init__(self, name: str, width: int) -> None:
        if width < 1:
            raise ValueError(f"bus width must be positive, got {width}")
        self.name = name
        self.signals = [Signal(f"{name}[{i}]") for i in range(width)]

    def __len__(self) -> int:
        return len(self.signals)

    def __getitem__(self, index: int) -> Signal:
        return self.signals[index]

    def values(self) -> List[Optional[int]]:
        return [signal.value for signal in self.signals]

    def drive(self, values: Sequence[Optional[int]], time: float) -> None:
        """Drive all bits at once."""
        if len(values) != len(self.signals):
            raise ValueError(
                f"bus {self.name!r} has {len(self.signals)} bits, "
                f"got {len(values)} values"
            )
        for signal, value in zip(self.signals, values):
            signal.set(value, time)

    def settled(self) -> bool:
        """``True`` when every bit has a known value."""
        return all(signal.value is not None for signal in self.signals)
