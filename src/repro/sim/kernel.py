"""The discrete-event simulator kernel."""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..exceptions import SimulationError
from .events import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """A single-clock-domain discrete-event simulator.

    Components schedule callbacks with :meth:`schedule` (relative
    delay) or :meth:`schedule_at` (absolute time); :meth:`run` drains
    the queue in time order.  The kernel is deliberately minimal — the
    logic layer on top of it provides signals and gates.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: float = 0.0
        self.processed_events = 0
        self._running = False

    def schedule(
        self, delay: float, action: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule *action* to run *delay* time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {label!r}")
        return self.queue.push(self.now + delay, action, label)

    def schedule_at(
        self, time: float, action: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule *action* at absolute *time* (must not be in the past)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule {label!r} at {time} before now={self.now}"
            )
        return self.queue.push(time, action, label)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> float:
        """Process events until quiescence (or *until*); return final time.

        *max_events* guards against oscillating combinational loops —
        a legitimate failure mode when fault injection creates feedback,
        reported as :class:`~repro.exceptions.SimulationError` rather
        than a hang.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        try:
            while True:
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                event = self.queue.pop()
                if event is None:
                    break
                self.now = event.time
                event.action()
                self.processed_events += 1
                if self.processed_events > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events at t={self.now}; "
                        f"the model is probably oscillating"
                    )
        finally:
            self._running = False
        return self.now

    def reset(self) -> None:
        """Drop all pending events and rewind the clock."""
        self.queue = EventQueue()
        self.now = 0.0
        self.processed_events = 0
