"""Event primitives for the discrete-event kernel."""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Any, Callable, Optional

__all__ = ["Event", "EventQueue"]


@dataclasses.dataclass(order=False)
class Event:
    """A scheduled callback.

    Events compare by ``(time, sequence)``; the sequence number makes
    scheduling stable (FIFO among same-time events), which keeps
    simulations deterministic.
    """

    time: float
    sequence: int
    action: Callable[[], Any]
    label: str = ""
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects ordered by time."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule *action* at *time*; returns the (cancellable) event."""
        if time < 0:
            raise ValueError(f"cannot schedule at negative time {time}")
        event = Event(
            time=time, sequence=next(self._counter), action=action, label=label
        )
        heapq.heappush(self._heap, (event.time, event.sequence, event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, if any."""
        while self._heap:
            _time, _seq, event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event without removing it."""
        while self._heap:
            _time, _seq, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return event.time
        return None
