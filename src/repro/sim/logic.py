"""Event-driven gate-level simulation of netlists.

:class:`GateLevelSimulator` wraps a
:class:`~repro.hardware.netlist.Netlist` around the DES kernel: every
net becomes a :class:`~repro.sim.signals.Signal`, every gate a listener
that re-evaluates on input changes and schedules its output after a
per-gate-type delay.  Driving the primary inputs at ``t = 0`` and
running to quiescence measures the propagation delay — the
experimental counterpart of the paper's Section 5.2 polynomials.

The simulator uses a transport delay model: every scheduled output
update is delivered (glitches propagate), and the settle time is the
time of the last actual value change.  For the acyclic netlists built
by :mod:`repro.hardware` this terminates and the settle time equals
the weighted critical path — asserted, not assumed, in tests.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

from ..exceptions import SimulationError
from ..hardware.gates import Gate, GateType, evaluate_gate
from ..hardware.netlist import Netlist
from .kernel import Simulator
from .signals import Signal

__all__ = ["DelayModel", "UNIT_DELAYS", "GateLevelSimulator", "SimulationResult"]

DelayModel = Mapping[GateType, float]

#: Every logic gate costs one time unit (INPUT and constants cost zero).
UNIT_DELAYS: DelayModel = {
    GateType.BUF: 1.0,
    GateType.NOT: 1.0,
    GateType.AND: 1.0,
    GateType.OR: 1.0,
    GateType.XOR: 1.0,
    GateType.NAND: 1.0,
    GateType.NOR: 1.0,
    GateType.XNOR: 1.0,
    GateType.MUX2: 1.0,
}


@dataclasses.dataclass
class SimulationResult:
    """Outcome of one input vector's propagation."""

    outputs: Dict[str, int]
    settle_time: float
    event_count: int


class GateLevelSimulator:
    """Simulate one netlist event-drivenly under a delay model."""

    def __init__(
        self, netlist: Netlist, delays: Optional[DelayModel] = None
    ) -> None:
        self.netlist = netlist
        self.delays = dict(delays or UNIT_DELAYS)
        self.simulator = Simulator()
        self._signals: List[Signal] = [
            Signal(name=f"n{net}") for net in range(netlist._net_count)
        ]
        self._last_change: float = 0.0
        self._constants: List[Tuple[Signal, int]] = []
        for gate in netlist.gates:
            if gate.gate_type is GateType.INPUT:
                continue
            self._attach_gate(gate)

    def _attach_gate(self, gate: Gate) -> None:
        output_signal = self._signals[gate.output]
        input_signals = [self._signals[net] for net in gate.inputs]
        delay = float(self.delays.get(gate.gate_type, 1.0))

        def evaluate_and_schedule(_changed: Signal = None) -> None:  # type: ignore[assignment]
            values = [signal.value for signal in input_signals]
            if any(value is None for value in values):
                return
            new_value = evaluate_gate(gate.gate_type, values)  # type: ignore[arg-type]

            def commit() -> None:
                if output_signal.set(new_value, self.simulator.now):
                    self._last_change = self.simulator.now

            self.simulator.schedule(delay, commit, label=gate.gate_type.value)

        if gate.gate_type in (GateType.CONST0, GateType.CONST1):
            # Constants are driven at t=0 of every run (the kernel is
            # reset per run, so they cannot be scheduled here).
            value = 0 if gate.gate_type is GateType.CONST0 else 1
            self._constants.append((output_signal, value))
            return
        for signal in input_signals:
            signal.listen(evaluate_and_schedule)

    def run(self, input_values: Mapping[str, int]) -> SimulationResult:
        """Drive the inputs at ``t = 0`` and run to quiescence."""
        missing = set(self.netlist.inputs) - set(input_values)
        if missing:
            raise ValueError(f"missing input values for {sorted(missing)}")
        self.simulator.reset()
        self._last_change = 0.0
        # Start every run from the unknown state so repeated runs (and
        # therefore measured settle times) are independent of history.
        for signal in self._signals:
            signal.value = None

        def drive_inputs() -> None:
            for signal, value in self._constants:
                signal.set(value, 0.0)
            for name, net in self.netlist.inputs.items():
                value = input_values[name]
                if value not in (0, 1):
                    raise ValueError(
                        f"input {name!r} must be 0 or 1, got {value!r}"
                    )
                self._signals[net].set(value, 0.0)

        self.simulator.schedule_at(0.0, drive_inputs, label="drive")
        self.simulator.run()
        outputs: Dict[str, int] = {}
        for name, net in self.netlist.outputs.items():
            value = self._signals[net].value
            if value is None:
                raise SimulationError(
                    f"output {name!r} never settled; the netlist has an "
                    f"undriven cone"
                )
            outputs[name] = value
        return SimulationResult(
            outputs=outputs,
            settle_time=self._last_change,
            event_count=self.simulator.processed_events,
        )
