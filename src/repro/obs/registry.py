"""Process-local metrics: counters, gauges, histograms, one registry.

The serving stack is pure CPU work on one event loop, so its telemetry
can be, too: every instrument here is a plain Python object with a
dict of label-children — no threads, no locks, no dependencies.  Two
consumption styles coexist:

* **push** — hot-path code calls ``counter.inc()`` / ``hist.observe``
  directly.  Each call is O(bucket scan) at worst, cheap enough for
  per-frame (never per-word) events;
* **pull** — components that already keep counters (the VOQs, the
  scheduler, every plane) are *collected*: a callback registered with
  :meth:`Registry.register_collector` copies their snapshot counters
  into instruments right before each scrape, so the hot path pays
  nothing at all.  :meth:`Counter.sync` mirrors such an external
  cumulative total while still enforcing monotonicity.

Rendering is deterministic (sorted metric names, sorted label sets) in
two formats: :meth:`Registry.render_prometheus` emits the Prometheus
text exposition format, :meth:`Registry.snapshot` a JSON-safe dict.
Metric names follow Prometheus conventions — ``repro_`` prefix,
``_total`` suffix on counters, base units in the name
(``_cycles`` / ``_seconds`` / ``_ratio``).  The catalog of every
metric the serving stack emits lives in ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "get_registry",
    "set_registry",
    "CYCLE_BUCKETS",
    "RATIO_BUCKETS",
    "SECONDS_BUCKETS",
]

#: Powers-of-two cycle buckets: latencies and retry hints are counted
#: in gateway cycles, which span 1 (light load) to ~1k (deep backlog).
CYCLE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)

#: Ratio buckets for frame fill (a value in [0, 1]).
RATIO_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)

#: Wall-clock buckets for IPC round trips (10 us .. 1 s).
SECONDS_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name cannot start with a digit: {name!r}")
    return name


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_number(value: float) -> str:
    """Prometheus-text value formatting: integers without the ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_suffix(labelnames: Sequence[str], labelvalues: Tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + body + "}"


class _CounterChild:
    """One labelled series of a counter: monotonically non-decreasing."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        self.value += amount

    def sync(self, total: float) -> None:
        """Mirror an externally-kept cumulative total (pull collection)."""
        if total < self.value:
            raise ValueError(
                f"cumulative total went backwards ({self.value} -> {total})"
            )
        self.value = float(total)


class _GaugeChild:
    """One labelled series of a gauge: goes anywhere."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild:
    """One labelled series of a histogram."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


class _Metric:
    """Shared naming / labelling machinery for all three instruments."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _check_name(label)
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        raise NotImplementedError

    def labels(self, *values: Any, **kwargs: Any) -> Any:
        """The child series for one label-value combination.

        Accepts positional values (in ``labelnames`` order) or
        keywords; values are stringified.  The child carries the
        instrument methods (``inc`` / ``set`` / ``observe`` / ...); a
        metric declared without labels has a single anonymous child the
        metric itself delegates to.
        """
        if values and kwargs:
            raise ValueError("pass label values positionally or by name, not both")
        if kwargs:
            if set(kwargs) != set(self.labelnames):
                raise ValueError(
                    f"{self.name} has labels {self.labelnames}, got "
                    f"{tuple(sorted(kwargs))}"
                )
            values = tuple(kwargs[name] for name in self.labelnames)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} needs {len(self.labelnames)} label value(s), "
                f"got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def _default(self) -> Any:
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled by {self.labelnames}; "
                f"call .labels(...) first"
            )
        return self.labels()

    def _sorted_children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        return sorted(self._children.items())

    # -- rendering ------------------------------------------------------
    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, child in self._sorted_children():
            suffix = _label_suffix(self.labelnames, key)
            lines.append(
                f"{self.name}{suffix} {_format_number(child.value)}"
            )
        return lines

    def snapshot_samples(self) -> List[Dict[str, Any]]:
        return [
            {
                "labels": dict(zip(self.labelnames, key)),
                "value": child.value,
            }
            for key, child in self._sorted_children()
        ]


class Counter(_Metric):
    """A monotonically non-decreasing count (push ``inc``, pull ``sync``)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def sync(self, total: float) -> None:
        self._default().sync(total)

    @property
    def value(self) -> float:
        return self._default().value


class Gauge(_Metric):
    """A value that can go anywhere: queue depth, health bit, quantile."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return self._default().value


class Histogram(_Metric):
    """A distribution, bucketed by upper bound (``+Inf`` implicit).

    Rendered cumulatively in the Prometheus text format
    (``_bucket{le=...}`` / ``_sum`` / ``_count``); the JSON snapshot
    keeps the per-bucket (non-cumulative) counts.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = CYCLE_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError(f"{name}: a histogram needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"{name}: duplicate bucket bounds {bounds}")
        self.bounds = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, child in self._sorted_children():
            cumulative = 0
            for bound, count in zip(
                self.bounds + (float("inf"),), child.counts
            ):
                cumulative += count
                le = _format_number(bound)
                suffix = _label_suffix(
                    self.labelnames + ("le",), key + (le,)
                )
                lines.append(f"{self.name}_bucket{suffix} {cumulative}")
            suffix = _label_suffix(self.labelnames, key)
            lines.append(
                f"{self.name}_sum{suffix} {_format_number(child.sum)}"
            )
            lines.append(f"{self.name}_count{suffix} {child.count}")
        return lines

    def snapshot_samples(self) -> List[Dict[str, Any]]:
        samples = []
        for key, child in self._sorted_children():
            samples.append(
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "buckets": [
                        [_format_number(bound), count]
                        for bound, count in zip(
                            self.bounds + (float("inf"),), child.counts
                        )
                    ],
                    "sum": child.sum,
                    "count": child.count,
                }
            )
        return samples


class Registry:
    """Named instruments plus scrape-time collectors.

    ``counter`` / ``gauge`` / ``histogram`` create-or-return (same name
    must mean same type and labels — a mismatch is a programming error
    and raises).  Collectors registered with
    :meth:`register_collector` run, in registration order, at the top
    of every :meth:`snapshot` / :meth:`render_prometheus` call; that is
    where pull-style instrumentation copies component counters in.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._collectors: List[Any] = []

    # -- declaration ----------------------------------------------------
    def _declare(self, factory, name: str, help: str, **kwargs) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not factory:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            if existing.labelnames != tuple(kwargs.get("labelnames", ())):
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames}"
                )
            return existing
        metric = factory(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._declare(Counter, name, help, labelnames=labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._declare(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = CYCLE_BUCKETS,
    ) -> Histogram:
        return self._declare(
            Histogram, name, help, labelnames=labelnames, buckets=buckets
        )

    def register_collector(self, collector) -> None:
        """Register ``collector()`` to run before every scrape."""
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector()

    # -- introspection --------------------------------------------------
    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -- exposition -----------------------------------------------------
    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        self.collect()
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe dump: ``{name: {type, help, samples}}``."""
        self.collect()
        return {
            name: {
                "type": metric.kind,
                "help": metric.help,
                "samples": metric.snapshot_samples(),
            }
            for name, metric in sorted(self._metrics.items())
        }


#: The process-default registry; library code takes an explicit
#: ``registry=`` argument and only falls back to this.
_GLOBAL = Registry()


def get_registry() -> Registry:
    return _GLOBAL


def set_registry(registry: Registry) -> Registry:
    """Swap the process-default registry (tests); returns the old one."""
    global _GLOBAL
    old, _GLOBAL = _GLOBAL, registry
    return old
