"""Shared snapshot serialization for every CLI/wire surface.

``repro route --json``, ``repro serve --demo --json``, ``repro stats``
and the TCP ``stats``/``metrics`` ops all funnel their payloads through
:func:`dump_json`, so numeric formatting is identical everywhere:

* numpy scalars / arrays become native ints, floats and lists;
* ``NaN`` and ``±Inf`` become ``null`` (strict JSON — ``json.dumps``
  would otherwise emit the non-standard ``NaN`` literal);
* floats are emitted with ``repr`` round-trip precision, unmolested;
* dict insertion order is preserved (snapshots are already built in
  deterministic order), and keys are coerced to strings.
"""

from __future__ import annotations

import json
import math
from typing import Any

__all__ = ["sanitize", "dump_json"]


def sanitize(value: Any) -> Any:
    """Recursively convert ``value`` into strict-JSON-safe primitives."""
    # numpy scalars expose .item(); catch them before the float check so
    # np.float64("nan") takes the NaN branch below.
    if hasattr(value, "item") and not isinstance(
        value, (str, bytes, bool, int, float)
    ):
        try:
            value = value.item()
        except (TypeError, ValueError):
            pass
    if value is None or isinstance(value, (str, bool, int)):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return None
        return value
    if isinstance(value, dict):
        return {str(key): sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(item) for item in value]
    if hasattr(value, "tolist"):  # numpy arrays
        return sanitize(value.tolist())
    return str(value)


def dump_json(value: Any, indent: int | None = 2) -> str:
    """Render ``value`` as a strict-JSON string (no trailing newline)."""
    return json.dumps(sanitize(value), indent=indent, allow_nan=False)
