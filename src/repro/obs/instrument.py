"""Wire an :class:`~repro.server.gateway.AsyncGateway` into a registry.

:class:`GatewayInstrumentation` is the one place that knows both sides:
which hooks the dataplane offers and which metrics the catalog
(``docs/observability.md``) promises.  It splits the work by cost:

* **push** — it installs itself as the gateway's *observer* (the
  ``on_*`` methods below, called from ``send``/``tick``/``_resolve``).
  Every push touch is O(1) per *frame* or per *event*, never per word:
  at m=8 a frame carries 256 words, and a per-word histogram observe
  would cost more than the vector engine's whole routing step.
* **pull** — everything the components already count (VOQ admission
  totals, scheduler fill, plane health, pool worker liveness, the
  resilient fabric's service counters) is copied in by a collector
  that runs only when somebody scrapes.

Construction never mutates the gateway; :meth:`attach` does, and is
explicit so the metrics-off configuration stays byte-identical to the
pre-observability dataplane.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .registry import (
    CYCLE_BUCKETS,
    RATIO_BUCKETS,
    SECONDS_BUCKETS,
    Registry,
    get_registry,
)
from .tracing import FrameTracer

__all__ = ["GatewayInstrumentation"]


class GatewayInstrumentation:
    """Metrics + tracing for one gateway; see module docstring."""

    def __init__(
        self,
        gateway,
        registry: Optional[Registry] = None,
        trace_capacity: int = 256,
        trace_sample_every: int = 16,
    ) -> None:
        self.gateway = gateway
        self.registry = registry if registry is not None else get_registry()
        self.tracer = FrameTracer(
            gateway.config.m,
            capacity=trace_capacity,
            sample_every=trace_sample_every,
        )
        self._attached = False
        r = self.registry

        # -- push instruments (observer hooks fill these) ---------------
        self._frames = r.counter(
            "repro_gateway_frames_total",
            "Frames delivered, by plane and delivery mode.",
            labelnames=("plane", "mode"),
        )
        self._words = r.counter(
            "repro_gateway_words_total",
            "Client words delivered, by delivery mode.",
            labelnames=("mode",),
        )
        self._fill = r.histogram(
            "repro_gateway_frame_fill_ratio",
            "Coalesced fill ratio of each delivered frame.",
            buckets=RATIO_BUCKETS,
        )
        self._frame_latency = r.histogram(
            "repro_gateway_frame_latency_cycles",
            "Worst word latency per delivered frame, in gateway cycles.",
            buckets=CYCLE_BUCKETS,
        )
        self._rejects = r.counter(
            "repro_gateway_rejects_total",
            "Words refused at admission (VOQ full or bad destination).",
        )
        self._retry_after = r.histogram(
            "repro_gateway_retry_after_cycles",
            "Retry-after hints handed to rejected senders.",
            buckets=CYCLE_BUCKETS,
        )
        self._dispatches = r.counter(
            "repro_gateway_dispatches_total",
            "Frames offered to each plane.",
            labelnames=("plane",),
        )
        self._requeued = r.counter(
            "repro_gateway_requeued_words_total",
            "Admitted words pushed back to their VOQ by a plane failure.",
        )
        self._kills = r.counter(
            "repro_gateway_plane_kills_total",
            "Planes taken out of service, by plane.",
            labelnames=("plane",),
        )
        self._service_events = r.counter(
            "repro_service_events_total",
            "Resilient-fabric lifecycle events, by plane and event kind.",
            labelnames=("plane", "kind"),
        )
        self._bist_probes = r.counter(
            "repro_service_bist_probes_total",
            "BIST probes routed through resilient planes, by outcome.",
            labelnames=("plane", "clean"),
        )

        # -- pull instruments (the collector fills these) ---------------
        # Node identity rides as a label on the info/uptime pair (the
        # Prometheus join idiom), so a cluster scrape can tell the
        # nodes' series apart without stamping every metric.
        self._node_info = r.gauge(
            "repro_node_info",
            "Static node identity (the value is always 1); join on "
            "'node_id' to attribute a scrape to its cluster node.",
            labelnames=("node_id",),
        )
        self._node_uptime = r.gauge(
            "repro_node_uptime_seconds",
            "Seconds since this node's gateway first started.",
            labelnames=("node_id",),
        )
        self._backend_info = r.gauge(
            "repro_backend_info",
            "Routing backend serving this gateway's planes (the value "
            "is always 1): the arena winner under engine=auto, the "
            "pinned backend otherwise.",
            labelnames=("backend", "m"),
        )
        self._cycle = r.gauge(
            "repro_gateway_cycle", "Current gateway cycle."
        )
        self._accepting = r.gauge(
            "repro_gateway_accepting",
            "1 while the gateway admits new words, else 0.",
        )
        self._latency_q = r.gauge(
            "repro_gateway_latency_cycles_quantile",
            "Delivery latency quantiles over the recent sample window.",
            labelnames=("q",),
        )
        self._voq_counters = {
            field: r.counter(
                f"repro_voq_{field}_total",
                f"Cumulative words {field} at the admission boundary.",
            )
            for field in ("offered", "accepted", "rejected", "requeued")
        }
        self._voq_queued = r.gauge(
            "repro_voq_queued_words", "Words currently queued across all VOQs."
        )
        self._voq_depth_max = r.gauge(
            "repro_voq_depth_max",
            "High-watermark depth of any single VOQ since start.",
        )
        self._sched_frames = r.counter(
            "repro_scheduler_frames_total", "Frames coalesced by the scheduler."
        )
        self._sched_words = r.counter(
            "repro_scheduler_words_total",
            "Client words placed onto frames by the scheduler.",
        )
        self._sched_fill = r.gauge(
            "repro_scheduler_fill_ratio_mean",
            "Mean coalesced fill ratio over all scheduled frames.",
        )
        self._plane_healthy = r.gauge(
            "repro_plane_healthy",
            "1 while the plane serves traffic, 0 once killed.",
            labelnames=("plane",),
        )
        self._plane_in_flight = r.gauge(
            "repro_plane_in_flight",
            "Frames currently inside the plane.",
            labelnames=("plane",),
        )
        self._plane_frames = r.counter(
            "repro_plane_frames_delivered_total",
            "Frames the plane has delivered and verified.",
            labelnames=("plane",),
        )
        self._plane_words = r.counter(
            "repro_plane_words_delivered_total",
            "Client words the plane has delivered.",
            labelnames=("plane",),
        )
        self._worker_alive = r.gauge(
            "repro_pool_worker_alive",
            "1 while the plane's worker process is alive (process pool only).",
            labelnames=("plane",),
        )
        self._slab_roundtrip = r.histogram(
            "repro_pool_slab_roundtrip_seconds",
            "Shared-memory slab round trip: offer() write to step() read.",
            labelnames=("plane",),
            buckets=SECONDS_BUCKETS,
        )
        self._service_quarantined = r.gauge(
            "repro_service_quarantined",
            "1 once the plane's primary fabric is quarantined.",
            labelnames=("plane",),
        )
        self._service_retries = r.counter(
            "repro_service_retries_total",
            "Repair passes the plane's resilient fabric has run.",
            labelnames=("plane",),
        )
        self._tenant_weight = r.gauge(
            "repro_tenant_weight",
            "Configured scheduling weight of each QoS tenant class.",
            labelnames=("tenant",),
        )
        self._tenant_queued = r.gauge(
            "repro_tenant_queued_words",
            "Words currently queued across all VOQs, by tenant class.",
            labelnames=("tenant",),
        )
        self._tenant_counters = {
            field: r.counter(
                f"repro_tenant_{field}_total",
                f"Cumulative words {field}, by tenant class.",
                labelnames=("tenant",),
            )
            for field in (
                "offered", "accepted", "rejected", "requeued",
                "served", "delivered",
            )
        }
        self._tenant_rescues = r.counter(
            "repro_tenant_starvation_rescues_total",
            "Head words served by the starvation age override instead "
            "of the weighted pick, by tenant class.",
            labelnames=("tenant",),
        )
        self._tenant_latency_q = r.gauge(
            "repro_tenant_latency_cycles_quantile",
            "Per-tenant delivery latency quantiles over the recent "
            "sample window.",
            labelnames=("tenant", "q"),
        )
        self._trace_frames = r.counter(
            "repro_trace_frames_total", "Frames sampled into the tracer."
        )
        self._trace_retained = r.gauge(
            "repro_trace_retained",
            "Completed trace records currently in the ring buffer.",
        )

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self) -> "GatewayInstrumentation":
        """Install the observer hooks and the scrape-time collector."""
        if self._attached:
            return self
        self._attached = True
        self.gateway.observer = self
        self.registry.register_collector(self._collect)
        for plane in self.gateway.planes:
            fabric = getattr(plane, "fabric", None)
            registry = getattr(fabric, "registry", None)
            if registry is not None and hasattr(registry, "add_listener"):
                registry.add_listener(self._service_listener(plane.plane_id))
            if fabric is not None and hasattr(fabric, "probe_hook"):
                fabric.probe_hook = self._probe_hook(plane.plane_id)
        return self

    def _service_listener(self, plane_id: int):
        counter = self._service_events

        def listener(event) -> None:
            counter.labels(str(plane_id), event.kind).inc()

        return listener

    def _probe_hook(self, plane_id: int):
        counter = self._bist_probes

        def hook(_probe, observation) -> None:
            counter.labels(
                str(plane_id), "yes" if observation.clean else "no"
            ).inc()

        return hook

    # ------------------------------------------------------------------
    # Observer hooks (the gateway calls these; keep them O(1) per frame)
    # ------------------------------------------------------------------
    def on_reject(self, entry, error) -> None:
        self._rejects.inc()
        self._retry_after.observe(error.retry_after_cycles)

    def on_dispatch(self, frame, plane, cycle: int) -> None:
        self._dispatches.labels(str(plane.plane_id)).inc()
        tracer = self.tracer
        if not tracer.wants(frame.tag):
            return
        entries = frame.entries.values()
        tracer.record_dispatch(
            frame.tag,
            plane.plane_id,
            cycle,
            words=frame.active,
            fill=frame.fill,
            enqueued_cycle=(
                min(entry.enqueued_cycle for entry in entries)
                if frame.entries
                else None
            ),
            coalesced_cycle=frame.scheduled_cycle,
            requeues=max(
                (entry.requeues for entry in entries), default=0
            ),
        )

    def on_frame_delivered(
        self, completion, cycle: int, max_latency: int
    ) -> None:
        frame = completion.frame
        self._frames.labels(str(completion.plane_id), completion.mode).inc()
        self._words.labels(completion.mode).inc(frame.active)
        self._fill.observe(frame.fill)
        self._frame_latency.observe(max_latency)
        self.tracer.record_delivery(
            frame.tag, cycle, mode=completion.mode, latency_cycles=max_latency
        )

    def on_requeue(self, plane, entries) -> None:
        self._requeued.inc(len(entries))

    def on_plane_killed(self, plane) -> None:
        self._kills.labels(str(plane.plane_id)).inc()
        self.tracer.abandon_plane(plane.plane_id)

    # ------------------------------------------------------------------
    # The collector (runs at scrape time only)
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        gateway = self.gateway
        node = str(gateway.node_id)
        self._node_info.labels(node).set(1)
        self._node_uptime.labels(node).set(gateway.uptime_seconds)
        self._backend_info.labels(
            str(getattr(gateway, "backend_name", "bnb")),
            str(gateway.config.m),
        ).set(1)
        self._cycle.set(gateway.cycle)
        self._accepting.set(1 if gateway._accepting else 0)
        latencies = gateway._latencies
        for q, value in (
            ("p50", gateway._percentile(latencies, 0.50)),
            ("p99", gateway._percentile(latencies, 0.99)),
            ("max", max(latencies) if latencies else None),
        ):
            if value is not None:
                self._latency_q.labels(q).set(value)
        voqs = gateway.voqs.snapshot()
        for field, counter in self._voq_counters.items():
            counter.sync(voqs[field])
        self._voq_queued.set(voqs["queued"])
        self._voq_depth_max.set(voqs["max_depth"])
        sched = gateway.scheduler.snapshot()
        self._sched_frames.sync(sched["frames"])
        self._sched_words.sync(sched["words"])
        self._sched_fill.set(sched["mean_fill"])
        for plane in gateway.planes:
            label = str(plane.plane_id)
            self._plane_healthy.labels(label).set(1 if plane.healthy else 0)
            self._plane_in_flight.labels(label).set(plane.in_flight)
            self._plane_frames.labels(label).sync(plane.frames_delivered)
            self._plane_words.labels(label).sync(plane.words_delivered)
            take = getattr(plane, "take_slab_roundtrips", None)
            if take is not None:
                self._worker_alive.labels(label).set(
                    1 if plane.describe().get("worker_alive") else 0
                )
                series = self._slab_roundtrip.labels(label)
                for seconds in take():
                    series.observe(seconds)
            fabric = getattr(plane, "fabric", None)
            registry = getattr(fabric, "registry", None)
            if registry is not None and hasattr(registry, "is_quarantined"):
                self._service_quarantined.labels(label).set(
                    1 if registry.is_quarantined else 0
                )
                self._service_retries.labels(label).sync(
                    fabric.counters.retries
                )
        tenants = getattr(gateway, "tenant_snapshot", lambda: None)()
        if tenants is not None:
            for tenant, row in tenants.items():
                self._tenant_weight.labels(tenant).set(row["weight"])
                self._tenant_queued.labels(tenant).set(row["queued"])
                for field, counter in self._tenant_counters.items():
                    counter.labels(tenant).sync(row[field])
                self._tenant_rescues.labels(tenant).sync(
                    row["starvation_rescues"]
                )
                latency = row["latency_cycles"]
                for q in ("p50", "p99", "max"):
                    value = latency[q]
                    if value is not None:
                        self._tenant_latency_q.labels(tenant, q).set(value)
        self._trace_frames.sync(self.tracer.traced_frames)
        self._trace_retained.set(len(self.tracer))

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        return self.registry.render_prometheus()

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()

    def snapshot(self) -> Dict[str, Any]:
        """The combined JSON payload every CLI/wire surface exposes."""
        return {
            "gateway": self.gateway.stats(),
            "metrics": self.metrics_snapshot(),
            "traces": self.tracer.snapshot(),
        }
