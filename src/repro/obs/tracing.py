"""Per-frame trace records with bounded retention and sampling.

A trace follows one scheduled frame through the dataplane::

    enqueue            earliest enqueued_cycle over the frame's words
      └─ coalesce      scheduler builds the frame   (coalesced_cycle)
          └─ dispatch  gateway offers it to a plane (dispatched_cycle)
              └─ stages  batch crosses stage k at dispatched+1+k
                  └─ delivery  plane completes + verifies (delivered_cycle)

The per-stage cycles are not measured, they are *derived*: both
pipeline engines are stall-free, so a batch entering at cycle ``t``
crosses stage ``k`` at exactly ``t + 1 + k``
(``PipelinedBNBFabric.stage_timeline`` pins this).  That determinism
is what keeps tracing out of the hot loop — the tracer touches a frame
twice (dispatch, delivery), never per stage and never per word.

Retention is a ring buffer (``capacity`` most recent completed traces)
and admission is sampled (every ``sample_every``-th frame tag), so the
cost on the vector hot path stays within noise;
``benchmarks/bench_obs_overhead.py`` asserts the <5% budget.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["FrameTrace", "FrameTracer"]


@dataclass
class FrameTrace:
    """One frame's journey; cycles are gateway cycles throughout."""

    tag: int
    plane: int
    words: int  # active (client) words; idle fill excluded
    fill: float
    enqueued_cycle: Optional[int]  # None for pure idle-fill frames
    coalesced_cycle: int
    dispatched_cycle: int
    requeues: int = 0
    stage_cycles: List[int] = field(default_factory=list)
    delivered_cycle: Optional[int] = None
    latency_cycles: Optional[int] = None
    mode: Optional[str] = None  # clean / degraded / failover

    @property
    def complete(self) -> bool:
        return self.delivered_cycle is not None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tag": self.tag,
            "plane": self.plane,
            "words": self.words,
            "fill": self.fill,
            "enqueued_cycle": self.enqueued_cycle,
            "coalesced_cycle": self.coalesced_cycle,
            "dispatched_cycle": self.dispatched_cycle,
            "stage_cycles": list(self.stage_cycles),
            "delivered_cycle": self.delivered_cycle,
            "latency_cycles": self.latency_cycles,
            "mode": self.mode,
            "requeues": self.requeues,
        }


class FrameTracer:
    """Sampled ring buffer of :class:`FrameTrace` records.

    ``sample_every=k`` traces every k-th frame tag (``k<=1`` traces
    all); ``capacity`` bounds how many *completed* traces are retained
    (oldest evicted first).  In-flight traces live in a side table that
    is also bounded: a frame whose plane dies before delivery is closed
    out via :meth:`abandon` (counted, not retained), and the table is
    hard-capped so a hook wiring bug cannot leak memory.
    """

    def __init__(
        self, m: int, capacity: int = 256, sample_every: int = 16
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.m = m
        self.capacity = capacity
        self.sample_every = max(1, int(sample_every))
        self._completed: deque = deque(maxlen=capacity)
        self._pending: Dict[int, FrameTrace] = {}
        self._pending_cap = max(64, 4 * capacity)
        self.traced_frames = 0
        self.completed_frames = 0
        self.abandoned_frames = 0

    def wants(self, tag: int) -> bool:
        return tag % self.sample_every == 0

    # -- lifecycle ------------------------------------------------------
    def record_dispatch(
        self,
        tag: int,
        plane: int,
        cycle: int,
        words: int,
        fill: float,
        enqueued_cycle: Optional[int],
        coalesced_cycle: int,
        requeues: int = 0,
    ) -> None:
        if not self.wants(tag):
            return
        self._pending[tag] = FrameTrace(
            tag=tag,
            plane=plane,
            words=words,
            fill=fill,
            enqueued_cycle=enqueued_cycle,
            coalesced_cycle=coalesced_cycle,
            dispatched_cycle=cycle,
            requeues=requeues,
            stage_cycles=[cycle + 1 + stage for stage in range(self.m)],
        )
        self.traced_frames += 1
        if len(self._pending) > self._pending_cap:
            oldest = next(iter(self._pending))
            del self._pending[oldest]
            self.abandoned_frames += 1

    def record_delivery(
        self,
        tag: int,
        cycle: int,
        mode: Optional[str] = None,
        latency_cycles: Optional[int] = None,
    ) -> None:
        trace = self._pending.pop(tag, None)
        if trace is None:
            return
        trace.delivered_cycle = cycle
        trace.mode = mode
        if latency_cycles is not None:
            trace.latency_cycles = latency_cycles
        elif trace.enqueued_cycle is not None:
            trace.latency_cycles = cycle - trace.enqueued_cycle
        self._completed.append(trace)
        self.completed_frames += 1

    def abandon(self, tag: int) -> None:
        """Close out an in-flight trace whose plane died (not retained)."""
        if self._pending.pop(tag, None) is not None:
            self.abandoned_frames += 1

    def abandon_plane(self, plane: int) -> None:
        """Abandon every in-flight trace riding the given plane.

        Called when a plane is killed: its frames requeue and will be
        re-dispatched under *new* tags, so the old traces can never
        complete.
        """
        for tag in [
            tag
            for tag, trace in self._pending.items()
            if trace.plane == plane
        ]:
            self.abandon(tag)

    # -- retrieval ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._completed)

    def records(self) -> List[Dict[str, Any]]:
        """Completed traces, oldest first, as JSON-safe dicts."""
        return [trace.as_dict() for trace in self._completed]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "sample_every": self.sample_every,
            "traced_frames": self.traced_frames,
            "completed_frames": self.completed_frames,
            "abandoned_frames": self.abandoned_frames,
            "pending": len(self._pending),
            "records": self.records(),
        }
