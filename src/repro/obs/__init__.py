"""Telemetry for the serving stack: metrics, traces, exposition.

Dependency-free observability (see ``docs/observability.md``):

* :mod:`~repro.obs.registry` — Counter/Gauge/Histogram primitives with
  labels, a :class:`Registry` that renders Prometheus text and JSON;
* :mod:`~repro.obs.tracing` — sampled per-frame trace records with
  bounded ring-buffer retention;
* :mod:`~repro.obs.instrument` — the glue that hooks a live
  :class:`~repro.server.gateway.AsyncGateway` (and its planes, pool
  workers and resilient fabrics) into a registry;
* :mod:`~repro.obs.snapshot` — the one JSON serialization every CLI
  and wire surface shares.

Quick start::

    from repro.obs import GatewayInstrumentation, Registry

    instrumentation = GatewayInstrumentation(
        gateway, registry=Registry()
    ).attach()
    ...
    print(instrumentation.render_prometheus())
"""

from .instrument import GatewayInstrumentation
from .registry import (
    CYCLE_BUCKETS,
    RATIO_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    get_registry,
    set_registry,
)
from .snapshot import dump_json, sanitize
from .tracing import FrameTrace, FrameTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "get_registry",
    "set_registry",
    "CYCLE_BUCKETS",
    "RATIO_BUCKETS",
    "SECONDS_BUCKETS",
    "FrameTrace",
    "FrameTracer",
    "GatewayInstrumentation",
    "dump_json",
    "sanitize",
]
