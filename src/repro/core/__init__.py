"""The paper's primary contribution: the BNB self-routing network.

Public surface:

* :class:`~repro.core.bnb.BNBNetwork` — the headline network
  (Definition 5, Theorem 2): feed it any permutation of destination
  addresses (optionally with payloads) and it self-routes every word to
  its destination.
* :class:`~repro.core.bsn.BitSorterNetwork` — the per-stage bit sorter
  (Definition 4, Theorem 1).
* :class:`~repro.core.splitter.Splitter` and
  :class:`~repro.core.arbiter.Arbiter` — the splitter ``sp(p)`` and its
  flag-generating arbiter tree ``A(p)`` (Definitions 3 and 6, Theorem 3,
  Figs. 4-5).
* :class:`~repro.core.gbn.GeneralizedBaselineNetwork` — the structural
  scaffold (Definition 2, Fig. 1).

All components produce optional routing records
(:mod:`~repro.core.routing`) for tracing, hardware cross-validation and
fault injection.
"""

from .words import Word, words_from_permutation, addresses_of, payloads_of
from .switchbox import SimpleSwitchBox, apply_pair_controls, controls_to_permutation
from .arbiter import Arbiter, ArbiterNodeRecord, ArbiterTrace, arbiter_flags
from .splitter import Splitter, SplitterRecord, splitter_balance
from .gbn import GeneralizedBaselineNetwork, GBNStageSpec, gbn_route
from .bsn import BitSorterNetwork, BSNRecord
from .bnb import BNBNetwork, BNBRoutingRecord, NestedNetworkSpec
from .routing import RouteStep, PacketPath
from .traffic import (
    MultipassResult,
    MultipassRouter,
    PartialRoutingResult,
    complete_partial_permutation,
    route_partial,
)
from .pipeline import (
    PipelinedBNBFabric,
    PipelineBatch,
    PipelineStats,
    stuck_control_override,
)
from .plan import (
    DEAD_ADDRESS,
    CompiledPlan,
    FaultMask,
    build_fault_mask,
    compiled_plan,
)
from .pipeline_fast import VectorPipelinedFabric, route_frame_sources

__all__ = [
    "Word",
    "words_from_permutation",
    "addresses_of",
    "payloads_of",
    "SimpleSwitchBox",
    "apply_pair_controls",
    "controls_to_permutation",
    "Arbiter",
    "ArbiterNodeRecord",
    "ArbiterTrace",
    "arbiter_flags",
    "Splitter",
    "SplitterRecord",
    "splitter_balance",
    "GeneralizedBaselineNetwork",
    "GBNStageSpec",
    "gbn_route",
    "BitSorterNetwork",
    "BSNRecord",
    "BNBNetwork",
    "BNBRoutingRecord",
    "NestedNetworkSpec",
    "RouteStep",
    "PacketPath",
    "complete_partial_permutation",
    "route_partial",
    "PartialRoutingResult",
    "MultipassRouter",
    "MultipassResult",
    "PipelinedBNBFabric",
    "stuck_control_override",
    "PipelineBatch",
    "PipelineStats",
    "CompiledPlan",
    "compiled_plan",
    "DEAD_ADDRESS",
    "FaultMask",
    "build_fault_mask",
    "VectorPipelinedFabric",
    "route_frame_sources",
]
