"""A cycle-accurate pipelined BNB fabric.

The paper positions the network for "high communication bandwidth" in
switching and parallel-processing systems.  Since each main stage's
decisions depend only on the words it currently holds, the main stages
pipeline naturally: insert a register column after every main stage and
a new permutation can enter every cycle, with a fill latency of ``m``
cycles and steady-state throughput of one full permutation per cycle.

:class:`PipelinedBNBFabric` models exactly that: ``m`` stage buffers,
one :meth:`step` per clock, independent permutations in flight
simultaneously.  The implementation reuses the same nested-network
routing code as the combinational model, so the pipeline is a schedule
around verified logic, not a reimplementation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..bits import address_bit, cached_unshuffle_permutation
from ..exceptions import NotAPermutationError
from .bnb import BNBNetwork
from .bsn import BitSorterNetwork
from .splitter import Splitter
from .switchbox import apply_pair_controls
from .words import Word

__all__ = [
    "PipelinedBNBFabric",
    "PipelineBatch",
    "PipelineStats",
    "ControlOverride",
    "stuck_control_override",
]

#: ``(main_stage, nested, nested_stage, box, controls) -> controls`` —
#: intercepts every splitter decision; used to model physical switch
#: faults inside the pipeline (the fault-tolerance service's test rig).
ControlOverride = Callable[[int, int, int, int, List[int]], List[int]]


def stuck_control_override(
    main_stage: int,
    nested: int,
    nested_stage: int,
    box: int,
    switch: int,
    value: int,
) -> ControlOverride:
    """An override forcing one switch's control to *value* (stuck-at).

    Accepts the five fields of a
    :class:`~repro.faults.injector.SwitchCoordinate` (kept positional
    so :mod:`repro.core` need not import the faults layer).
    """
    if value not in (0, 1):
        raise ValueError(f"stuck-at value must be 0 or 1, got {value!r}")

    def override(
        i: int, l: int, j: int, b: int, controls: List[int]
    ) -> List[int]:
        if (
            (i, l, j, b) == (main_stage, nested, nested_stage, box)
            and 0 <= switch < len(controls)
        ):
            controls = list(controls)
            controls[switch] = value
        return controls

    return override


@dataclasses.dataclass
class PipelineBatch:
    """One permutation's words travelling through the pipeline."""

    tag: Any
    words: List[Word]
    entered_cycle: int


@dataclasses.dataclass
class PipelineStats:
    """Aggregate pipeline behaviour over a run."""

    cycles: int
    accepted: int
    delivered: int
    latencies: List[int]

    @property
    def fill_latency(self) -> Optional[int]:
        return self.latencies[0] if self.latencies else None

    @property
    def throughput(self) -> float:
        """Delivered permutations per cycle over the whole run."""
        return self.delivered / self.cycles if self.cycles else 0.0


class PipelinedBNBFabric:
    """An ``m``-deep pipeline of the BNB network's main stages.

    Usage: :meth:`offer` a permutation (or ``None`` for a bubble) and
    :meth:`step` once per clock; completed batches come back from
    :meth:`step` as ``(tag, outputs)`` pairs.
    """

    def __init__(
        self,
        m: int,
        control_override: Optional[ControlOverride] = None,
        retain_delivered: bool = True,
    ) -> None:
        if m < 1:
            raise ValueError(f"the fabric needs m >= 1, got {m}")
        self.m = m
        self.n = 1 << m
        self._bsns: Dict[int, BitSorterNetwork] = {
            k: BitSorterNetwork(k) for k in range(1, m + 1)
        }
        # With an override installed, splitter decisions are made here
        # (balance checks off: an intercepted control can unbalance a
        # downstream block — that is the physics being modelled).
        self._control_override = control_override
        self._free_splitters: Dict[int, Splitter] = (
            {}
            if control_override is None
            else {p: Splitter(p, check_balance=False) for p in range(1, m + 1)}
        )
        # _stages[i] holds the batch currently inside main stage i.
        self._stages: List[Optional[PipelineBatch]] = [None] * m
        self._pending: Optional[PipelineBatch] = None
        self.cycle = 0
        self.accepted = 0
        # A long-running server can clock millions of frames; with
        # retain_delivered off the fabric keeps counters (and a bounded
        # latency window for stats) instead of the full history.
        self.retain_delivered = retain_delivered
        self.delivered_batches: List[Tuple[Any, List[Word]]] = []
        self.delivered_count = 0
        self._latencies: List[int] = []
        self._latency_window = 4096
        self._delivery_hooks: List[Callable[[Any, List[Word]], None]] = []

    def install_control_override(
        self, override: ControlOverride, compose: bool = False
    ) -> None:
        """Install a control override at runtime (fault appears live).

        With ``compose=True`` the new override wraps whatever is
        already installed — the existing faults keep acting and the new
        one applies on top, so injecting a second stuck switch into an
        already-faulty fabric accumulates rather than replaces.
        Batches in flight feel the change from their next stage onward.
        """
        if compose and self._control_override is not None:
            previous = self._control_override
            added = override

            def override(  # type: ignore[no-redef]
                i: int, l: int, j: int, b: int, controls: List[int]
            ) -> List[int]:
                return added(i, l, j, b, previous(i, l, j, b, controls))

        self._control_override = override
        if not self._free_splitters:
            self._free_splitters = {
                p: Splitter(p, check_balance=False)
                for p in range(1, self.m + 1)
            }

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def offer(self, addresses: Sequence[int], tag: Any = None) -> None:
        """Queue one permutation to enter at the next :meth:`step`.

        Raises if a permutation is already waiting (the fabric accepts
        one batch per cycle) or if the addresses are not a permutation.
        """
        words = [
            Word(address=address, payload=(tag, j))
            for j, address in enumerate(addresses)
        ]
        self.offer_words(words, tag=tag)

    def offer_words(self, words: Sequence[Word], tag: Any = None) -> None:
        """Queue pre-built words (payloads preserved) for the next cycle.

        The service layer uses this to re-inject misdelivered words
        whose payloads identify the original batch and source line.
        """
        if self._pending is not None:
            raise ValueError("a batch is already waiting to enter this cycle")
        if sorted(word.address for word in words) != list(range(self.n)):
            raise NotAPermutationError([word.address for word in words])
        self._pending = PipelineBatch(
            tag=tag, words=list(words), entered_cycle=self.cycle
        )

    @property
    def can_accept(self) -> bool:
        """Whether :meth:`offer` would succeed this cycle (no batch waiting)."""
        return self._pending is None

    def try_offer_words(self, words: Sequence[Word], tag: Any = None) -> bool:
        """Non-blocking :meth:`offer_words`: ``False`` when a batch already
        waits, instead of raising.  Address validation still raises — a
        malformed batch is a caller bug, not backpressure."""
        if self._pending is not None:
            return False
        self.offer_words(words, tag=tag)
        return True

    def add_delivery_hook(
        self, hook: Callable[[Any, List[Word]], None]
    ) -> None:
        """Register ``hook(tag, outputs)`` to fire as each batch drains.

        Hooks run inside :meth:`step`, synchronously and in registration
        order — the non-blocking alternative to polling the return value
        of every :meth:`step` call (an asyncio server parks completions
        into futures from here without clocking-loop bookkeeping).
        """
        self._delivery_hooks.append(hook)

    # ------------------------------------------------------------------
    # Clocking
    # ------------------------------------------------------------------
    def _route_stage(self, stage: int, words: List[Word]) -> List[Word]:
        """One main stage: nested networks + the following unshuffle."""
        m = self.m
        block_exp = m - stage
        block = 1 << block_exp
        bsn = self._bsns[block_exp]

        def key_of(word: Word) -> int:
            return address_bit(word.address, stage, m)

        routed: List[Word] = [None] * self.n  # type: ignore[list-item]
        for l in range(1 << stage):
            lo = l * block
            if self._control_override is not None:
                out = self._route_nested_overridden(
                    stage, l, words[lo : lo + block]
                )
            else:
                out, _rec = bsn.route_words(words[lo : lo + block], key_of)
            routed[lo : lo + block] = out
        if stage < m - 1:
            wiring = cached_unshuffle_permutation(m - stage, m)
            connected: List[Word] = [None] * self.n  # type: ignore[list-item]
            for j, value in enumerate(routed):
                connected[wiring[j]] = value
            return connected
        return routed

    def _route_nested_overridden(
        self, stage: int, nested: int, segment: List[Word]
    ) -> List[Word]:
        """One nested network with every control passed to the override.

        Same walk as :meth:`~repro.core.bsn.BitSorterNetwork.route_words`,
        but each splitter's decision is routed through
        ``self._control_override`` before the switches apply it.
        """
        assert self._control_override is not None
        m = self.m
        block_exp = m - stage
        block = 1 << block_exp
        current = list(segment)
        for j in range(block_exp):
            width = 1 << (block_exp - j)
            splitter = self._free_splitters[block_exp - j]
            routed: List[Word] = [None] * block  # type: ignore[list-item]
            for box in range(1 << j):
                base = box * width
                sub = current[base : base + width]
                key_bits = [
                    address_bit(word.address, stage, m) for word in sub
                ]
                controls = self._control_override(
                    stage, nested, j, box, list(splitter.controls(key_bits))
                )
                routed[base : base + width] = apply_pair_controls(
                    sub, controls
                )
            if j < block_exp - 1:
                wiring = cached_unshuffle_permutation(
                    block_exp - j, block_exp
                )
                connected: List[Word] = [None] * block  # type: ignore[list-item]
                for offset, value in enumerate(routed):
                    connected[wiring[offset]] = value
                current = connected
            else:
                current = routed
        return current

    def step(self) -> List[Tuple[Any, List[Word]]]:
        """Advance one clock; return batches that completed this cycle."""
        completed: List[Tuple[Any, List[Word]]] = []
        # Stage m-1 drains first.
        leaving = self._stages[self.m - 1]
        if leaving is not None:
            outputs = self._route_stage(self.m - 1, leaving.words)
            completed.append((leaving.tag, outputs))
            self.delivered_count += 1
            if self.retain_delivered:
                self.delivered_batches.append((leaving.tag, outputs))
            self._latencies.append(self.cycle + 1 - leaving.entered_cycle)
            if (
                not self.retain_delivered
                and len(self._latencies) > self._latency_window
            ):
                del self._latencies[: -self._latency_window]
            for hook in self._delivery_hooks:
                hook(leaving.tag, outputs)
        # Everything else shifts forward through its stage's logic.
        for stage in range(self.m - 2, -1, -1):
            batch = self._stages[stage]
            if batch is not None:
                batch.words = self._route_stage(stage, batch.words)
            self._stages[stage + 1] = batch
        # A pending batch enters stage 0.
        self._stages[0] = self._pending
        if self._pending is not None:
            self.accepted += 1
        self._pending = None
        self.cycle += 1
        return completed

    def drain(self) -> List[Tuple[Any, List[Word]]]:
        """Step until empty; return everything that completed."""
        completed: List[Tuple[Any, List[Word]]] = []
        while any(stage is not None for stage in self._stages) or self._pending:
            completed.extend(self.step())
        return completed

    def idle(self, cycles: int) -> None:
        """Clock *cycles* bubbles through the fabric (used for backoff)."""
        for _ in range(cycles):
            self.step()

    def stage_timeline(self, entered_cycle: int) -> List[int]:
        """The cycle at which a batch offered at *entered_cycle* crosses
        each main stage.

        The pipeline never stalls — a batch entering the fabric shifts
        one stage per :meth:`step`, unconditionally — so the timeline is
        deterministic: stage *k*'s routing logic runs during the step
        that begins at ``entered_cycle + 1 + k``, and the batch drains
        (delivery hooks fire) as stage ``m-1`` is crossed.  The tracing
        layer (:mod:`repro.obs.tracing`) derives per-stage trace records
        from this instead of timestamping the hot loop.
        """
        return [entered_cycle + 1 + stage for stage in range(self.m)]

    def route_batch(
        self, words: Sequence[Word], tag: Any = None
    ) -> List[Word]:
        """Synchronously route one batch of words through an idle fabric.

        Offers the batch, clocks until it emerges and returns its
        outputs.  The fabric must be idle — the method is the
        batch-at-a-time interface the fault-tolerance service drives;
        interleaved streaming still goes through :meth:`offer` /
        :meth:`step`.
        """
        if self.in_flight or self._pending is not None:
            raise ValueError(
                "route_batch needs an idle fabric; drain in-flight "
                "batches first"
            )
        self.offer_words(words, tag=tag)
        for completed_tag, outputs in self.drain():
            if completed_tag is tag or completed_tag == tag:
                return outputs
        raise AssertionError("offered batch never completed")  # pragma: no cover

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return sum(stage is not None for stage in self._stages)

    def stats(self) -> PipelineStats:
        return PipelineStats(
            cycles=self.cycle,
            accepted=self.accepted,
            delivered=self.delivered_count,
            latencies=list(self._latencies),
        )

    def __repr__(self) -> str:
        return (
            f"PipelinedBNBFabric(m={self.m}, cycle={self.cycle}, "
            f"in_flight={self.in_flight})"
        )
