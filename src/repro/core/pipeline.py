"""A cycle-accurate pipelined BNB fabric.

The paper positions the network for "high communication bandwidth" in
switching and parallel-processing systems.  Since each main stage's
decisions depend only on the words it currently holds, the main stages
pipeline naturally: insert a register column after every main stage and
a new permutation can enter every cycle, with a fill latency of ``m``
cycles and steady-state throughput of one full permutation per cycle.

:class:`PipelinedBNBFabric` models exactly that: ``m`` stage buffers,
one :meth:`step` per clock, independent permutations in flight
simultaneously.  The implementation reuses the same nested-network
routing code as the combinational model, so the pipeline is a schedule
around verified logic, not a reimplementation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bits import address_bit, unshuffle_index
from ..exceptions import NotAPermutationError
from .bnb import BNBNetwork
from .bsn import BitSorterNetwork
from .words import Word

__all__ = ["PipelinedBNBFabric", "PipelineBatch", "PipelineStats"]


@dataclasses.dataclass
class PipelineBatch:
    """One permutation's words travelling through the pipeline."""

    tag: Any
    words: List[Word]
    entered_cycle: int


@dataclasses.dataclass
class PipelineStats:
    """Aggregate pipeline behaviour over a run."""

    cycles: int
    accepted: int
    delivered: int
    latencies: List[int]

    @property
    def fill_latency(self) -> Optional[int]:
        return self.latencies[0] if self.latencies else None

    @property
    def throughput(self) -> float:
        """Delivered permutations per cycle over the whole run."""
        return self.delivered / self.cycles if self.cycles else 0.0


class PipelinedBNBFabric:
    """An ``m``-deep pipeline of the BNB network's main stages.

    Usage: :meth:`offer` a permutation (or ``None`` for a bubble) and
    :meth:`step` once per clock; completed batches come back from
    :meth:`step` as ``(tag, outputs)`` pairs.
    """

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError(f"the fabric needs m >= 1, got {m}")
        self.m = m
        self.n = 1 << m
        self._bsns: Dict[int, BitSorterNetwork] = {
            k: BitSorterNetwork(k) for k in range(1, m + 1)
        }
        # _stages[i] holds the batch currently inside main stage i.
        self._stages: List[Optional[PipelineBatch]] = [None] * m
        self._pending: Optional[PipelineBatch] = None
        self.cycle = 0
        self.accepted = 0
        self.delivered_batches: List[Tuple[Any, List[Word]]] = []
        self._latencies: List[int] = []

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def offer(self, addresses: Sequence[int], tag: Any = None) -> None:
        """Queue one permutation to enter at the next :meth:`step`.

        Raises if a permutation is already waiting (the fabric accepts
        one batch per cycle) or if the addresses are not a permutation.
        """
        if self._pending is not None:
            raise ValueError("a batch is already waiting to enter this cycle")
        if sorted(addresses) != list(range(self.n)):
            raise NotAPermutationError(list(addresses))
        words = [
            Word(address=address, payload=(tag, j))
            for j, address in enumerate(addresses)
        ]
        self._pending = PipelineBatch(
            tag=tag, words=words, entered_cycle=self.cycle
        )

    # ------------------------------------------------------------------
    # Clocking
    # ------------------------------------------------------------------
    def _route_stage(self, stage: int, words: List[Word]) -> List[Word]:
        """One main stage: nested networks + the following unshuffle."""
        m = self.m
        block_exp = m - stage
        block = 1 << block_exp
        bsn = self._bsns[block_exp]

        def key_of(word: Word) -> int:
            return address_bit(word.address, stage, m)

        routed: List[Word] = [None] * self.n  # type: ignore[list-item]
        for l in range(1 << stage):
            lo = l * block
            out, _rec = bsn.route_words(words[lo : lo + block], key_of)
            routed[lo : lo + block] = out
        if stage < m - 1:
            connected: List[Word] = [None] * self.n  # type: ignore[list-item]
            for j, value in enumerate(routed):
                connected[unshuffle_index(j, m - stage, m)] = value
            return connected
        return routed

    def step(self) -> List[Tuple[Any, List[Word]]]:
        """Advance one clock; return batches that completed this cycle."""
        completed: List[Tuple[Any, List[Word]]] = []
        # Stage m-1 drains first.
        leaving = self._stages[self.m - 1]
        if leaving is not None:
            outputs = self._route_stage(self.m - 1, leaving.words)
            completed.append((leaving.tag, outputs))
            self.delivered_batches.append((leaving.tag, outputs))
            self._latencies.append(self.cycle + 1 - leaving.entered_cycle)
        # Everything else shifts forward through its stage's logic.
        for stage in range(self.m - 2, -1, -1):
            batch = self._stages[stage]
            if batch is not None:
                batch.words = self._route_stage(stage, batch.words)
            self._stages[stage + 1] = batch
        # A pending batch enters stage 0.
        self._stages[0] = self._pending
        if self._pending is not None:
            self.accepted += 1
        self._pending = None
        self.cycle += 1
        return completed

    def drain(self) -> List[Tuple[Any, List[Word]]]:
        """Step until empty; return everything that completed."""
        completed: List[Tuple[Any, List[Word]]] = []
        while any(stage is not None for stage in self._stages) or self._pending:
            completed.extend(self.step())
        return completed

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return sum(stage is not None for stage in self._stages)

    def stats(self) -> PipelineStats:
        return PipelineStats(
            cycles=self.cycle,
            accepted=self.accepted,
            delivered=len(self.delivered_batches),
            latencies=list(self._latencies),
        )

    def __repr__(self) -> str:
        return (
            f"PipelinedBNBFabric(m={self.m}, cycle={self.cycle}, "
            f"in_flight={self.in_flight})"
        )
