"""The generalized baseline network (GBN), Definition 2 and Fig. 1.

An ``N = 2**m``-input GBN has ``m`` stages; stage ``i`` holds ``2**i``
switching boxes of size ``2**(m-i)`` and is followed by the
``2**(m-i)``-unshuffle connection ``U_{m-i}^m``.  The box contents are
a parameter: plain ``sw`` boxes give the original baseline network,
splitters give the bit-sorter network, and nested GBNs give the BNB
network itself.

This module provides the *structural* description (used by Fig. 1/3
benchmarks and the hardware accounting) and a generic routing driver
:func:`gbn_route` that threads any per-box router through the GBN's
stages and connections.  The driver is written once and reused by the
BSN, the BNB main network and each nested network, so the unshuffle
bookkeeping — the easiest thing to get subtly wrong — lives in exactly
one place.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Sequence, Tuple

from ..bits import require_power_of_two, unshuffle_index

__all__ = ["GBNStageSpec", "GeneralizedBaselineNetwork", "gbn_route"]


@dataclasses.dataclass(frozen=True)
class GBNStageSpec:
    """Inventory of one GBN stage.

    ``box_exponent`` is the ``p`` of the stage's boxes (each box spans
    ``2**p`` lines); ``box_count`` is how many sit side by side.
    """

    stage: int
    box_count: int
    box_exponent: int

    @property
    def box_size(self) -> int:
        return 1 << self.box_exponent

    @property
    def connection_k(self) -> int:
        """The ``k`` of the ``U_k^m`` connection following this stage."""
        return self.box_exponent


class GeneralizedBaselineNetwork:
    """Structural model of an ``N``-input GBN, ``B(m, SB)``.

    The class is agnostic about box contents; it answers structural
    queries (Fig. 1 and Fig. 3 of the paper) and exposes the canonical
    routing driver via :meth:`route`.
    """

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError(f"a GBN needs at least one stage, got m={m}")
        self.m = m
        self.n = 1 << m

    @property
    def stage_count(self) -> int:
        return self.m

    def stage_spec(self, stage: int) -> GBNStageSpec:
        """Stage ``i`` has ``2**i`` boxes ``SB(m - i)`` (Definition 2)."""
        if not 0 <= stage < self.m:
            raise ValueError(f"stage {stage} out of range for m={self.m}")
        return GBNStageSpec(
            stage=stage,
            box_count=1 << stage,
            box_exponent=self.m - stage,
        )

    def stages(self) -> List[GBNStageSpec]:
        return [self.stage_spec(i) for i in range(self.m)]

    def total_boxes(self) -> int:
        """Total switching boxes across all stages: ``2**m - 1``."""
        return self.n - 1

    def switch_count_if_simple(self) -> int:
        """2x2 switches when every box is a plain ``sw``: ``(N/2) * m``."""
        return (self.n // 2) * self.m

    def box_line_range(self, stage: int, box: int) -> Tuple[int, int]:
        """The half-open line interval ``[lo, hi)`` that a box spans."""
        spec = self.stage_spec(stage)
        if not 0 <= box < spec.box_count:
            raise ValueError(
                f"box {box} out of range for stage {stage} (m={self.m})"
            )
        lo = box * spec.box_size
        return lo, lo + spec.box_size

    def route(
        self,
        lines: Sequence[Any],
        box_router: Callable[[int, int, List[Any]], List[Any]],
    ) -> List[Any]:
        """Thread *lines* through the GBN; see :func:`gbn_route`."""
        return gbn_route(lines, self.m, box_router)

    def __repr__(self) -> str:
        return f"GeneralizedBaselineNetwork(m={self.m}, n={self.n})"


def gbn_route(
    lines: Sequence[Any],
    m: int,
    box_router: Callable[[int, int, List[Any]], List[Any]],
) -> List[Any]:
    """Route *lines* through an ``m``-stage GBN.

    ``box_router(stage, box_index, sub_lines)`` must return the routed
    values of one box (same length as *sub_lines*).  Between stage
    ``i`` and ``i + 1`` the driver applies the global ``U_{m-i}^m``
    unshuffle; no connection follows the final stage, matching the
    recursive construction in the paper.
    """
    n = 1 << m
    if len(lines) != n:
        raise ValueError(f"expected {n} lines for m={m}, got {len(lines)}")
    current: List[Any] = list(lines)
    for stage in range(m):
        box_size = 1 << (m - stage)
        routed: List[Any] = [None] * n
        for box in range(1 << stage):
            lo = box * box_size
            sub = current[lo : lo + box_size]
            out = box_router(stage, box, sub)
            if len(out) != box_size:
                raise ValueError(
                    f"box router returned {len(out)} lines for a "
                    f"{box_size}-line box at stage {stage}"
                )
            routed[lo : lo + box_size] = out
        if stage < m - 1:
            k = m - stage
            connected: List[Any] = [None] * n
            for j, value in enumerate(routed):
                connected[unshuffle_index(j, k, m)] = value
            current = connected
        else:
            current = routed
    return current
