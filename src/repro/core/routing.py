"""Routing records shared by the core networks.

Records exist for three consumers: tests (assert internal invariants,
not just end-to-end delivery), the gate-level hardware layer (functional
switch settings must equal netlist-simulated settings) and the fault
injector (which perturbs recorded controls to model stuck switches).
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Tuple

__all__ = ["RouteStep", "PacketPath"]


@dataclasses.dataclass(frozen=True)
class RouteStep:
    """One packet's position after one main-network stage of the BNB.

    ``line`` is the global line index the packet occupied when leaving
    ``main_stage`` (after the stage's nested network but before the
    following unshuffle connection); ``nested_network`` identifies the
    NB(i, l) it traversed.
    """

    main_stage: int
    nested_network: int
    line: int


@dataclasses.dataclass(frozen=True)
class PacketPath:
    """The full trajectory of one word through the BNB network."""

    input_line: int
    output_line: int
    address: int
    payload: Any
    steps: Tuple[RouteStep, ...]

    @property
    def delivered(self) -> bool:
        """``True`` when the packet reached its addressed output."""
        return self.output_line == self.address

    def nested_networks_visited(self) -> List[Tuple[int, int]]:
        """The (stage, NB index) sequence the packet passed through."""
        return [(step.main_stage, step.nested_network) for step in self.steps]
