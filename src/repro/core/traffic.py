"""Realistic traffic on top of the permutation contract.

The BNB network's contract (Theorem 2) requires a *full permutation*
of destination addresses.  Real switch traffic is messier: ports idle,
and several inputs may want the same output.  This module provides the
two standard reductions, both hinted at by the paper ("the other flags
and the other inputs can be used to deal with the conflicts if needed
in some applications"):

* **Partial permutations** (:func:`complete_partial_permutation`,
  :func:`route_partial`): idle inputs are filled with the unused
  addresses, restoring the balanced-bit precondition every splitter
  needs; dummy words are stripped after routing.

* **Arbitrary traffic with output contention**
  (:class:`MultipassRouter`): requests are partitioned into rounds with
  distinct destinations (FIFO per output port), each round routed as a
  partial permutation.  The number of rounds equals the maximum output
  multiplicity — the information-theoretic minimum for a fabric that
  delivers one word per output per pass.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..exceptions import InputError
from .bnb import BNBNetwork
from .words import Word

__all__ = [
    "complete_partial_permutation",
    "coalesce_frame",
    "FramePlan",
    "route_partial",
    "PartialRoutingResult",
    "MultipassRouter",
    "MultipassResult",
]


def complete_partial_permutation(
    destinations: Sequence[Optional[int]],
) -> Tuple[List[int], List[bool]]:
    """Fill idle slots with the unused addresses.

    Returns ``(full_permutation, is_real)`` where ``is_real[j]`` marks
    whether input ``j`` carried a genuine request.  Raises
    :class:`~repro.exceptions.InputError` when the non-idle
    destinations repeat or fall out of range.
    """
    n = len(destinations)
    used = [False] * n
    real = [dest is not None for dest in destinations]
    for dest in destinations:
        if dest is None:
            continue
        if not 0 <= dest < n:
            raise InputError(f"destination {dest} out of range for N={n}")
        if used[dest]:
            raise InputError(
                f"destination {dest} requested twice; use MultipassRouter "
                f"for contending traffic"
            )
        used[dest] = True
    unused = iter(address for address in range(n) if not used[address])
    full = [
        dest if dest is not None else next(unused) for dest in destinations
    ]
    return full, real


@dataclasses.dataclass
class FramePlan:
    """A conflict-free frame ready to enter the fabric.

    ``addresses`` is a full permutation (idle-filled); ``line_of[dest]``
    is the input line carrying the word for *dest* (only genuine
    requests appear); ``fill`` is the fraction of lines carrying real
    traffic — the frame fill ratio the serving layer reports.
    """

    addresses: List[int]
    line_of: Dict[int, int]

    @property
    def active(self) -> int:
        return len(self.line_of)

    @property
    def fill(self) -> float:
        return self.active / len(self.addresses) if self.addresses else 0.0


def coalesce_frame(head_destinations: Sequence[int], n: int) -> FramePlan:
    """Coalesce one head-of-line word per destination into a frame.

    This is the online scheduling step of decomposing arbitrary traffic
    into permutation rounds (POPS / routing-via-matchings): the caller
    picks at most one waiting word per distinct destination, and this
    function places them on consecutive input lines and idle-fills the
    rest so the balanced-bit precondition of every splitter holds.
    Duplicate or out-of-range destinations raise
    :class:`~repro.exceptions.InputError` — the caller's per-output
    queues should make duplicates impossible.
    """
    if len(head_destinations) > n:
        raise InputError(
            f"{len(head_destinations)} requests cannot fit an N={n} frame"
        )
    partial: List[Optional[int]] = list(head_destinations) + [None] * (
        n - len(head_destinations)
    )
    full, real = complete_partial_permutation(partial)
    line_of = {full[j]: j for j in range(n) if real[j]}
    return FramePlan(addresses=full, line_of=line_of)


@dataclasses.dataclass
class PartialRoutingResult:
    """Outputs of a partial-permutation pass.

    ``outputs[a]`` is the payload delivered to output ``a``, or ``None``
    if no genuine request addressed it.
    """

    outputs: List[Optional[Any]]
    active_count: int
    filler_count: int


def route_partial(
    network: BNBNetwork,
    requests: Sequence[Optional[Tuple[int, Any]]],
) -> PartialRoutingResult:
    """Route idle-capable traffic: ``requests[j]`` is ``(dest, payload)``
    or ``None`` for an idle input."""
    if len(requests) != network.n:
        raise ValueError(f"expected {network.n} requests, got {len(requests)}")
    destinations = [req[0] if req is not None else None for req in requests]
    full, real = complete_partial_permutation(destinations)
    words = [
        Word(
            address=full[j],
            payload=requests[j][1] if real[j] else None,  # type: ignore[index]
        )
        for j in range(network.n)
    ]
    routed, _record = network.route(words)
    # Which outputs correspond to genuine requests: exactly those whose
    # address was requested by a real input.
    requested = {full[j] for j in range(network.n) if real[j]}
    outputs: List[Optional[Any]] = [
        routed[a].payload if a in requested else None for a in range(network.n)
    ]
    return PartialRoutingResult(
        outputs=outputs,
        active_count=sum(real),
        filler_count=network.n - sum(real),
    )


@dataclasses.dataclass
class MultipassResult:
    """Outcome of contention-resolved multipass routing."""

    rounds: int
    delivered: List[List[Optional[Any]]]  # per round, per output line
    max_multiplicity: int

    def all_payloads_at(self, output: int) -> List[Any]:
        """Every payload delivered to *output* across rounds, in order."""
        return [
            round_outputs[output]
            for round_outputs in self.delivered
            if round_outputs[output] is not None
        ]


class MultipassRouter:
    """Deliver arbitrary (possibly contending) traffic in minimal rounds.

    Requests are ``(destination, payload)`` pairs per input (``None``
    idle).  Round ``k`` carries, for every destination, the ``k``-th
    request addressed to it (FIFO in input order), so the round count
    equals the maximum number of requests for any one output.
    """

    def __init__(self, network: BNBNetwork) -> None:
        self.network = network

    def plan_rounds(
        self, requests: Sequence[Optional[Tuple[int, Any]]]
    ) -> List[List[Optional[Tuple[int, Any]]]]:
        """Partition requests into per-round partial permutations."""
        if len(requests) != self.network.n:
            raise ValueError(
                f"expected {self.network.n} requests, got {len(requests)}"
            )
        per_destination_count: Dict[int, int] = {}
        rounds: List[List[Optional[Tuple[int, Any]]]] = []
        for j, request in enumerate(requests):
            if request is None:
                continue
            dest, _payload = request
            if not 0 <= dest < self.network.n:
                raise InputError(
                    f"destination {dest} out of range for N={self.network.n}"
                )
            round_index = per_destination_count.get(dest, 0)
            per_destination_count[dest] = round_index + 1
            while len(rounds) <= round_index:
                rounds.append([None] * self.network.n)
            rounds[round_index][j] = request
        return rounds

    def route(
        self, requests: Sequence[Optional[Tuple[int, Any]]]
    ) -> MultipassResult:
        """Plan and execute all rounds; every request is delivered once."""
        rounds = self.plan_rounds(requests)
        delivered = [
            route_partial(self.network, round_requests).outputs
            for round_requests in rounds
        ]
        max_multiplicity = max(
            (
                len(self._requests_for(requests, destination))
                for destination in range(self.network.n)
            ),
            default=0,
        )
        # Round count equals the worst output contention by construction.
        assert max_multiplicity == len(rounds)
        return MultipassResult(
            rounds=len(rounds),
            delivered=delivered,
            max_multiplicity=max_multiplicity,
        )

    @staticmethod
    def _requests_for(
        requests: Sequence[Optional[Tuple[int, Any]]], destination: int
    ) -> List[Tuple[int, Any]]:
        return [
            request
            for request in requests
            if request is not None and request[0] == destination
        ]
