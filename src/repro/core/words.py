"""Words: the unit of traffic through the BNB network.

The paper's inputs are ``q = m + w``-bit words: an ``m``-bit destination
address followed by ``w`` data bits.  The functional model carries the
payload as an arbitrary Python object — the hardware-accounting layer
is where the ``w`` extra bit-slices are charged for.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Sequence

from ..bits import address_bit, require_power_of_two, to_bits
from ..permutations.permutation import Permutation

__all__ = ["Word", "words_from_permutation", "addresses_of", "payloads_of"]


@dataclasses.dataclass(frozen=True)
class Word:
    """One routed word: a destination address plus an opaque payload."""

    address: int
    payload: Any = None

    def address_bit(self, index: int, m: int) -> int:
        """Bit ``b^index`` of the address in the paper's MSB-first numbering."""
        return address_bit(self.address, index, m)

    def address_bits(self, m: int) -> List[int]:
        """All address bits, MSB first (``b^0 .. b^{m-1}``)."""
        return to_bits(self.address, m)

    def __repr__(self) -> str:
        if self.payload is None:
            return f"Word({self.address})"
        return f"Word({self.address}, payload={self.payload!r})"


def words_from_permutation(
    pi: Permutation, payloads: Optional[Sequence[Any]] = None
) -> List[Word]:
    """Build the input word list realizing permutation *pi*.

    Input line ``j`` carries a word destined for output ``pi(j)``.
    Optional *payloads* attach data to each word (e.g. the source index,
    so tests can verify end-to-end delivery, or application messages in
    the switch-fabric example).
    """
    if payloads is not None and len(payloads) != len(pi):
        raise ValueError(
            f"expected {len(pi)} payloads, got {len(payloads)}"
        )
    return [
        Word(address=pi(j), payload=None if payloads is None else payloads[j])
        for j in range(len(pi))
    ]


def addresses_of(words: Sequence[Word]) -> List[int]:
    """Extract the destination addresses of a word list."""
    return [word.address for word in words]


def payloads_of(words: Sequence[Word]) -> List[Any]:
    """Extract the payloads of a word list."""
    return [word.payload for word in words]
