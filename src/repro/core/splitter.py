"""The splitter ``sp(p)``: the self-routing switching box of the BSN.

Definition 3 and Section 4 of the paper.  A ``2**p x 2**p`` splitter is
an arbiter ``A(p)`` plus one column of ``2**(p-1)`` two-by-two switches
``sw(p)``.  Given a one-bit-slice input vector with an even number of
1s, it routes so that the even-numbered and odd-numbered outputs carry
equally many 1s (``M_e = M_o``, Theorem 3); the unshuffle connection of
the surrounding GBN then delivers equal shares of 1s to the two
half-size splitters of the next stage.

Switch setting (algorithm step 5): input ``j`` exits on the upper
output when ``s(j) XOR f(j) == 0``.  Because a type-2 pair receives
equal flags and a type-1 pair the flags ``(0, 1)``, the two inputs of a
switch never contend; the control bit of switch ``t`` is simply
``s(2t) XOR f(2t)``.

For ``p == 1`` the splitter routes the 0 to the upper and the 1 to the
lower output (``A(1)`` is wiring: the control *is* the upper input
bit).
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Sequence, Tuple

from ..exceptions import UnbalancedInputError
from .arbiter import Arbiter, ArbiterTrace
from .switchbox import apply_pair_controls

__all__ = ["Splitter", "SplitterRecord", "splitter_balance"]


@dataclasses.dataclass
class SplitterRecord:
    """Everything one splitter pass decided.

    ``controls[t]`` is the setting of switch ``t`` (0 straight,
    1 exchange); ``flags`` the arbiter flags per input line;
    ``arbiter_trace`` the per-node record (``None`` for ``p == 1``,
    where the arbiter is wiring).
    """

    p: int
    input_bits: List[int]
    flags: List[int]
    controls: List[int]
    output_bits: List[int]
    arbiter_trace: Optional[ArbiterTrace] = None

    @property
    def switch_count(self) -> int:
        return len(self.controls)


def splitter_balance(bits: Sequence[int]) -> Tuple[int, int]:
    """Return ``(M_e, M_o)``: 1s on even-numbered and odd-numbered lines."""
    even = sum(bits[j] for j in range(0, len(bits), 2))
    odd = sum(bits[j] for j in range(1, len(bits), 2))
    return even, odd


class Splitter:
    """The splitter ``sp(p)`` (arbiter + switch column).

    Parameters
    ----------
    p:
        Size exponent (``2**p`` lines), ``p >= 1``.
    check_balance:
        When true (the default), reject input vectors with an odd
        number of 1s for ``p >= 2`` — the precondition of Theorem 3.
        The BNB network always satisfies it; fault-injection
        experiments disable the check to observe silent misrouting.
    """

    def __init__(self, p: int, check_balance: bool = True) -> None:
        if p < 1:
            raise ValueError(f"sp(p) needs p >= 1, got {p}")
        self.p = p
        self.size = 1 << p
        self.check_balance = check_balance
        self._arbiter = Arbiter(p) if p >= 2 else None

    @property
    def switch_count(self) -> int:
        return self.size // 2

    @property
    def function_node_count(self) -> int:
        """Arbiter nodes: ``2**p - 1`` for ``p >= 2``, 0 for ``p == 1``."""
        return self._arbiter.node_count if self._arbiter else 0

    # ------------------------------------------------------------------
    # Decision logic
    # ------------------------------------------------------------------
    def controls(self, bits: Sequence[int]) -> List[int]:
        """Switch settings for an input bit vector (no record)."""
        return self._decide(bits, want_trace=False)[0]

    def _decide(
        self, bits: Sequence[int], want_trace: bool
    ) -> Tuple[List[int], List[int], Optional[ArbiterTrace]]:
        if len(bits) != self.size:
            raise ValueError(
                f"sp({self.p}) expects {self.size} bits, got {len(bits)}"
            )
        for b in bits:
            if b not in (0, 1):
                raise ValueError(f"splitter inputs must be bits, got {b!r}")
        if self.check_balance and self.p >= 2:
            ones = sum(bits)
            if ones % 2:
                raise UnbalancedInputError(ones, len(bits) - ones)
        if self._arbiter is None:
            # sp(1): A(1) is wiring; the upper input bit is the control,
            # sending a 1 on the upper line to the lower output.
            flags = [0, 0]
            trace = None
        elif want_trace:
            trace = self._arbiter.trace(bits)
            flags = trace.flags
        else:
            flags = self._arbiter.flags(bits)
            trace = None
        controls = [bits[2 * t] ^ flags[2 * t] for t in range(self.switch_count)]
        return controls, flags, trace

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route_bits(
        self, bits: Sequence[int], record: bool = False
    ) -> Tuple[List[int], Optional[SplitterRecord]]:
        """Route a one-bit-slice vector; optionally return a full record."""
        controls, flags, trace = self._decide(bits, want_trace=record)
        outputs = apply_pair_controls(list(bits), controls)
        rec = None
        if record:
            rec = SplitterRecord(
                p=self.p,
                input_bits=list(bits),
                flags=flags,
                controls=controls,
                output_bits=outputs,
                arbiter_trace=trace,
            )
        return outputs, rec

    def route_words(
        self,
        words: Sequence[Any],
        key_bits: Sequence[int],
        record: bool = False,
    ) -> Tuple[List[Any], Optional[SplitterRecord]]:
        """Route arbitrary *words*, deciding from the *key_bits* slice.

        This models the paper's follower slices: the bit-sorter slice
        computes switch settings from its one bit per word, and every
        other slice of the nested network applies the same settings.
        """
        if len(words) != len(key_bits):
            raise ValueError(
                f"{len(words)} words do not match {len(key_bits)} key bits"
            )
        controls, flags, trace = self._decide(key_bits, want_trace=record)
        outputs = apply_pair_controls(list(words), controls)
        rec = None
        if record:
            rec = SplitterRecord(
                p=self.p,
                input_bits=list(key_bits),
                flags=flags,
                controls=controls,
                output_bits=apply_pair_controls(list(key_bits), controls),
                arbiter_trace=trace,
            )
        return outputs, rec

    def __repr__(self) -> str:
        return f"Splitter(p={self.p})"
