"""The bit-sorter network (BSN), Definition 4 and Theorem 1.

A ``2**k``-input BSN is a GBN whose boxes are splitters: stage ``l``
holds ``2**l`` splitters ``sp(k - l)``.  Fed a *balanced* one-bit
vector (equally many 0s and 1s), it delivers 0 to every even-numbered
output and 1 to every odd-numbered output.  Inside the BNB network one
BSN per nested network computes all switch settings; the other
``q - 1`` slices follow.

:class:`BitSorterNetwork` routes either raw bit vectors
(:meth:`~BitSorterNetwork.route_bits`) or arbitrary word lists keyed by
a caller-supplied bit extractor (:meth:`~BitSorterNetwork.route_words`)
— the follower-slice behaviour.  Both can emit a :class:`BSNRecord`
with every splitter's controls and flags for tracing and hardware
cross-validation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..bits import require_power_of_two, unshuffle_index
from ..exceptions import UnbalancedInputError
from .splitter import Splitter, SplitterRecord

__all__ = ["BitSorterNetwork", "BSNRecord"]


@dataclasses.dataclass
class BSNRecord:
    """Per-splitter records of one BSN pass.

    ``splitters[(stage, box)]`` is the :class:`SplitterRecord` of the
    box-th splitter in that stage; ``stage_vectors[l]`` snapshots the
    line values entering stage ``l``.
    """

    k: int
    splitters: Dict[Tuple[int, int], SplitterRecord]
    stage_vectors: List[List[int]]

    def controls_of(self, stage: int, box: int) -> List[int]:
        return self.splitters[(stage, box)].controls

    def total_switch_settings(self) -> int:
        return sum(len(rec.controls) for rec in self.splitters.values())

    def exchange_fraction(self) -> float:
        """Fraction of switches set to exchange (a routing-activity metric)."""
        total = 0
        exchanged = 0
        for rec in self.splitters.values():
            total += len(rec.controls)
            exchanged += sum(rec.controls)
        return exchanged / total if total else 0.0


class BitSorterNetwork:
    """The ``2**k``-input bit-sorter network ``B(k, sp)``.

    Parameters
    ----------
    k:
        Number of stages (the network spans ``2**k`` lines).
    check_balance:
        Propagated to every splitter; disable only for fault studies.
    """

    def __init__(self, k: int, check_balance: bool = True) -> None:
        if k < 1:
            raise ValueError(f"a BSN needs k >= 1, got {k}")
        self.k = k
        self.n = 1 << k
        self.check_balance = check_balance
        # One splitter object per size, shared across boxes (they are
        # stateless deciders).
        self._splitters = {
            p: Splitter(p, check_balance=check_balance) for p in range(1, k + 1)
        }

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def stage_count(self) -> int:
        return self.k

    def splitter_layout(self) -> List[Tuple[int, int, int]]:
        """Return ``(stage, box_count, p)`` triples: stage l has 2**l sp(k-l)."""
        return [(l, 1 << l, self.k - l) for l in range(self.k)]

    @property
    def switch_count(self) -> int:
        """Total 2 x 2 switches: ``(n / 2) * k`` (one column per stage)."""
        return (self.n // 2) * self.k

    @property
    def function_node_count(self) -> int:
        """Total arbiter nodes, counting ``A(1)`` as zero (it is wiring)."""
        total = 0
        for _stage, box_count, p in self.splitter_layout():
            if p >= 2:
                total += box_count * ((1 << p) - 1)
        return total

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route_bits(
        self, bits: Sequence[int], record: bool = False
    ) -> Tuple[List[int], Optional[BSNRecord]]:
        """Route a balanced bit vector (Theorem 1's setting)."""
        return self.route_words(list(bits), key_of=lambda b: b, record=record)

    def route_words(
        self,
        words: Sequence[Any],
        key_of: Callable[[Any], int],
        record: bool = False,
    ) -> Tuple[List[Any], Optional[BSNRecord]]:
        """Route arbitrary *words*; splitters decide on ``key_of(word)``.

        This single code path implements both the BSN slice (words are
        bits, ``key_of`` the identity) and the full nested network
        (words carry addresses and payloads, ``key_of`` extracts the
        stage's address bit); the paper's follower slices are the
        observation that both use identical switch settings.
        """
        if len(words) != self.n:
            raise ValueError(f"expected {self.n} words, got {len(words)}")
        splitter_records: Dict[Tuple[int, int], SplitterRecord] = {}
        stage_vectors: List[List[int]] = []
        current: List[Any] = list(words)
        for stage in range(self.k):
            box_size = 1 << (self.k - stage)
            if record:
                stage_vectors.append([key_of(w) for w in current])
            routed: List[Any] = [None] * self.n
            splitter = self._splitters[self.k - stage]
            for box in range(1 << stage):
                lo = box * box_size
                sub = current[lo : lo + box_size]
                key_bits = [key_of(w) for w in sub]
                out, rec = splitter.route_words(sub, key_bits, record=record)
                if record and rec is not None:
                    splitter_records[(stage, box)] = rec
                routed[lo : lo + box_size] = out
            if stage < self.k - 1:
                k_conn = self.k - stage
                connected: List[Any] = [None] * self.n
                for j, value in enumerate(routed):
                    connected[unshuffle_index(j, k_conn, self.k)] = value
                current = connected
            else:
                current = routed
        bsn_record = None
        if record:
            bsn_record = BSNRecord(
                k=self.k,
                splitters=splitter_records,
                stage_vectors=stage_vectors,
            )
        return current, bsn_record

    def sort_check(self, bits: Sequence[int]) -> bool:
        """Route *bits* and verify Theorem 1's postcondition."""
        ones = sum(bits)
        if 2 * ones != len(bits):
            raise UnbalancedInputError(ones, len(bits) - ones)
        outputs, _ = self.route_bits(bits)
        return all(outputs[j] == (j & 1) for j in range(self.n))

    def __repr__(self) -> str:
        return f"BitSorterNetwork(k={self.k}, n={self.n})"
