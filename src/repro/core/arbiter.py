"""The arbiter ``A(p)``: the splitter's flag-generating tree.

Definition 6 and Section 4 of the paper.  The arbiter is a complete
binary tree of identical *function nodes* over the ``2**p`` input bits.
Information flows up and then back down:

1. every node sends its parent the XOR of the two values arriving from
   its children (for a leaf node, the two input bits themselves);
2. a node whose children-XOR is **0** *generates* flags: it sends 0 to
   its upper child and 1 to its lower child, ignoring its parent;
3. a node whose children-XOR is **1** *forwards* the flag received from
   its parent to both children;
4. the root's parent flag is defined as an echo of its own up-value.

The flags reaching the leaves pair up the "type-2" switches (those with
unequal input bits) so that exactly half of them send their 1 upward —
the property (Theorem 3) that makes the splitter split evenly.

The implementation keeps a per-node record so tests, the gate-level
netlist and the fault injector can cross-check every intermediate
signal, not just the final flags.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..bits import require_power_of_two

__all__ = ["Arbiter", "ArbiterNodeRecord", "ArbiterTrace", "arbiter_flags"]


@dataclasses.dataclass(frozen=True)
class ArbiterNodeRecord:
    """Signals observed at one function node during a pass.

    Attributes mirror Fig. 5 of the paper: ``x1``/``x2`` are the values
    from the children, ``z_up`` the value sent to the parent, ``z_down``
    the flag received from the parent, ``y1``/``y2`` the flags sent to
    the upper and lower child.
    """

    level: int
    index: int
    x1: int
    x2: int
    z_up: int
    z_down: int
    y1: int
    y2: int

    @property
    def generated(self) -> bool:
        """``True`` when this node generated flags itself (children-XOR 0)."""
        return self.z_up == 0


@dataclasses.dataclass
class ArbiterTrace:
    """Full record of one arbiter pass: every node of every level.

    ``nodes[level][index]`` is the record of node *index* at tree
    *level*, level 0 being the leaf nodes (those fed by input bits) and
    level ``p - 1`` the root.
    """

    p: int
    inputs: List[int]
    flags: List[int]
    nodes: List[List[ArbiterNodeRecord]]

    @property
    def node_count(self) -> int:
        return sum(len(level) for level in self.nodes)

    def root(self) -> ArbiterNodeRecord:
        return self.nodes[-1][0]


def _validate_bits(bits: Sequence[int]) -> None:
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"arbiter inputs must be bits, got {b!r}")


class Arbiter:
    """The tree arbiter ``A(p)`` over ``2**p`` input bits.

    ``A(1)`` is pure wiring in the paper (the input bit itself is the
    switch-setting signal); this class therefore requires ``p >= 2``
    and the splitter special-cases ``p == 1``.
    """

    def __init__(self, p: int) -> None:
        if p < 2:
            raise ValueError(
                f"A(p) needs p >= 2 (A(1) is wiring, handled by the splitter); got {p}"
            )
        self.p = p
        self.input_count = 1 << p

    @property
    def node_count(self) -> int:
        """Number of function nodes: ``2**p - 1`` (a full binary tree)."""
        return self.input_count - 1

    @property
    def depth(self) -> int:
        """Tree height in nodes: a leaf-to-root path passes *p* nodes."""
        return self.p

    def flags(self, bits: Sequence[int]) -> List[int]:
        """Compute the flag ``f(j)`` for every input line (fast path)."""
        return self.trace(bits).flags

    def trace(self, bits: Sequence[int]) -> ArbiterTrace:
        """Run the up/down passes and record every node's signals."""
        if len(bits) != self.input_count:
            raise ValueError(
                f"A({self.p}) expects {self.input_count} bits, got {len(bits)}"
            )
        _validate_bits(bits)

        # Upward pass: level 0 nodes read the input bits; level k nodes
        # read the z_up values of level k-1.
        up_values: List[List[int]] = []
        current = list(bits)
        for _level in range(self.p):
            next_values = [
                current[2 * t] ^ current[2 * t + 1] for t in range(len(current) // 2)
            ]
            up_values.append(next_values)
            current = next_values

        # Downward pass: the root's parent flag echoes its own up-value
        # (algorithm step 4).  down_flags[level][index] is the z_down
        # seen by that node.
        down_flags: List[List[int]] = [
            [0] * len(level_values) for level_values in up_values
        ]
        root_level = self.p - 1
        down_flags[root_level][0] = up_values[root_level][0]
        records: List[List[Optional[ArbiterNodeRecord]]] = [
            [None] * len(level_values) for level_values in up_values
        ]
        for level in range(root_level, -1, -1):
            child_values = bits if level == 0 else up_values[level - 1]
            for index in range(len(up_values[level])):
                x1 = child_values[2 * index]
                x2 = child_values[2 * index + 1]
                z_up = up_values[level][index]
                z_down = down_flags[level][index]
                if z_up == 0:
                    y1, y2 = 0, 1  # generate (algorithm step 2)
                else:
                    y1 = y2 = z_down  # forward (algorithm step 3)
                records[level][index] = ArbiterNodeRecord(
                    level=level,
                    index=index,
                    x1=x1,
                    x2=x2,
                    z_up=z_up,
                    z_down=z_down,
                    y1=y1,
                    y2=y2,
                )
                if level > 0:
                    down_flags[level - 1][2 * index] = y1
                    down_flags[level - 1][2 * index + 1] = y2

        # Leaf flags: leaf node t sends y1 to input 2t and y2 to 2t+1.
        flags: List[int] = [0] * self.input_count
        for t, record in enumerate(records[0]):
            assert record is not None
            flags[2 * t] = record.y1
            flags[2 * t + 1] = record.y2
        return ArbiterTrace(
            p=self.p,
            inputs=list(bits),
            flags=flags,
            nodes=[[r for r in level if r is not None] for level in records],
        )

    def __repr__(self) -> str:
        return f"Arbiter(p={self.p})"


def arbiter_flags(bits: Sequence[int]) -> List[int]:
    """Compute arbiter flags for any power-of-two bit vector.

    For two inputs (``p == 1``) the arbiter is wiring and the flags are
    all zero — the switch control is then the upper input bit itself,
    which routes 0 up and 1 down exactly as Definition 3 requires.
    """
    p = require_power_of_two(len(bits), "arbiter input count")
    if p == 0:
        raise ValueError("arbiter needs at least two inputs")
    if p == 1:
        _validate_bits(bits)
        return [0, 0]
    return Arbiter(p).flags(bits)
