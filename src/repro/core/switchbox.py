"""Simple switch boxes: the paper's ``sw(p)``.

``sw(p)`` is a one-bit-slice ``2**p x 2**p`` box of ``2**(p-1)``
externally controlled ``2 x 2`` switches: switch ``t`` connects lines
``2t`` and ``2t+1`` and either passes them straight (control 0) or
exchanges them (control 1).  In the BNB network the follower slices of
every nested network are pure ``sw`` boxes driven by the bit-sorter
slice's controls; this module is the single implementation of that
behaviour.
"""

from __future__ import annotations

from typing import List, Sequence

from ..bits import require_power_of_two
from ..permutations.permutation import Permutation

__all__ = ["SimpleSwitchBox", "apply_pair_controls", "controls_to_permutation"]


def apply_pair_controls(lines: Sequence, controls: Sequence[int]) -> List:
    """Route *lines* through one column of pairwise 2 x 2 switches.

    ``controls[t] == 1`` exchanges ``lines[2t]`` and ``lines[2t+1]``.
    This free function is the hot path of the whole functional model,
    so it stays loop-simple and allocation-light.
    """
    if len(lines) != 2 * len(controls):
        raise ValueError(
            f"{len(controls)} controls cannot switch {len(lines)} lines"
        )
    out: List = [None] * len(lines)
    for t, control in enumerate(controls):
        if control:
            out[2 * t] = lines[2 * t + 1]
            out[2 * t + 1] = lines[2 * t]
        else:
            out[2 * t] = lines[2 * t]
            out[2 * t + 1] = lines[2 * t + 1]
    return out


def controls_to_permutation(controls: Sequence[int]) -> Permutation:
    """The line permutation realized by one switch column."""
    mapping: List[int] = []
    for t, control in enumerate(controls):
        if control not in (0, 1):
            raise ValueError(f"switch control must be 0 or 1, got {control!r}")
        if control:
            mapping.extend((2 * t + 1, 2 * t))
        else:
            mapping.extend((2 * t, 2 * t + 1))
    return Permutation(mapping)


class SimpleSwitchBox:
    """The paper's ``sw(p)``: ``2**(p-1)`` externally controlled switches.

    Parameters
    ----------
    p:
        Size exponent; the box has ``2**p`` inputs and outputs.
    """

    def __init__(self, p: int) -> None:
        if p < 1:
            raise ValueError(f"sw(p) needs p >= 1, got {p}")
        self.p = p
        self.size = 1 << p

    @property
    def switch_count(self) -> int:
        """Number of ``2 x 2`` switches (= external control signals)."""
        return self.size // 2

    def apply(self, lines: Sequence, controls: Sequence[int]) -> List:
        """Route ``2**p`` lines under ``2**(p-1)`` external controls."""
        if len(lines) != self.size:
            raise ValueError(f"sw({self.p}) expects {self.size} lines, got {len(lines)}")
        if len(controls) != self.switch_count:
            raise ValueError(
                f"sw({self.p}) expects {self.switch_count} controls, "
                f"got {len(controls)}"
            )
        return apply_pair_controls(lines, controls)

    def __repr__(self) -> str:
        return f"SimpleSwitchBox(p={self.p})"
