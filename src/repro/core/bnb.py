"""The BNB self-routing permutation network (Definition 5, Theorem 2).

An ``N = 2**m``-input BNB network is a GBN whose stage-``i`` switching
boxes are themselves ``q``-bit-slice GBNs ("nested networks") of size
``2**(m-i)``.  Slice ``i`` of every stage-``i`` nested network is a
bit-sorter network driven by address bit ``b^i`` (MSB-first numbering);
the remaining slices follow its switch settings.  Routing the words
through all ``m`` main stages radix-sorts the destination addresses
MSB-first, so a permutation of ``0 .. N-1`` arrives fully sorted:
word with address ``a`` on output line ``a``.

Two implementations share this module:

* :meth:`BNBNetwork.route` — the reference object model.  Accepts plain
  addresses or :class:`~repro.core.words.Word` instances with payloads,
  optionally records every splitter decision and per-packet path.
* :meth:`BNBNetwork.route_fast` — a vectorized numpy implementation of
  the same algorithm used by the throughput benchmarks.  Tests pin it
  to the reference model.

Structural accounting (switch slices, function nodes, critical-path
delays) lives here too, since it follows directly from the
construction; closed-form counterparts are in
:mod:`repro.analysis.complexity` and the two are reconciled in tests.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..bits import address_bit, require_power_of_two, unshuffle_index
from ..exceptions import NotAPermutationError, RoutingError
from ..permutations.permutation import Permutation
from .bsn import BitSorterNetwork, BSNRecord
from .plan import (
    compiled_plan,
    stage_take_indices,
    vector_apply_controls,
    vector_splitter_controls,
)
from .routing import PacketPath, RouteStep
from .words import Word

__all__ = ["BNBNetwork", "BNBRoutingRecord", "NestedNetworkSpec"]


@dataclasses.dataclass(frozen=True)
class NestedNetworkSpec:
    """Inventory entry for one nested network NB(i, l) (Fig. 3).

    ``slice_count`` is the number of one-bit slices the hardware
    carries at this point: the ``m - i`` not-yet-consumed address bits
    plus ``w`` data bits (Eq. 2 of the paper charges exactly this).
    """

    main_stage: int
    index: int
    size_exponent: int
    slice_count: int
    bsn_slice: int

    @property
    def size(self) -> int:
        return 1 << self.size_exponent

    @property
    def label(self) -> str:
        return f"NB({self.main_stage},{self.index})"

    @property
    def bsn_label(self) -> str:
        return f"BSN({self.main_stage},{self.index})"


@dataclasses.dataclass
class BNBRoutingRecord:
    """Everything one BNB routing pass decided.

    ``nested_records[(i, l)]`` holds the BSN record of NB(i, l);
    ``stage_outputs[i]`` snapshots the (line -> input index) arrangement
    after main stage ``i``'s nested networks (before the following
    unshuffle).
    """

    m: int
    input_addresses: List[int]
    nested_records: Dict[Tuple[int, int], BSNRecord]
    stage_outputs: List[List[int]]
    output_indices: List[int]

    def packet_path(self, input_line: int, words: Sequence[Word]) -> PacketPath:
        """Reconstruct the trajectory of the word that entered *input_line*."""
        steps: List[RouteStep] = []
        for stage, arrangement in enumerate(self.stage_outputs):
            line = arrangement.index(input_line)
            nested = line >> (self.m - stage)
            steps.append(
                RouteStep(main_stage=stage, nested_network=nested, line=line)
            )
        output_line = self.output_indices.index(input_line)
        word = words[input_line]
        return PacketPath(
            input_line=input_line,
            output_line=output_line,
            address=word.address,
            payload=word.payload,
            steps=tuple(steps),
        )

    def all_packet_paths(self, words: Sequence[Word]) -> List[PacketPath]:
        return [self.packet_path(j, words) for j in range(len(words))]

    def total_exchanges(self) -> int:
        """Number of switches set to exchange across the whole pass."""
        return sum(
            sum(sum(rec.controls) for rec in bsn.splitters.values())
            for bsn in self.nested_records.values()
        )


WordLike = Union[int, Word]


class BNBNetwork:
    """The ``N = 2**m``-input BNB self-routing permutation network.

    Parameters
    ----------
    m:
        Address width; the network has ``N = 2**m`` lines.
    w:
        Data-word width in bits.  Functionally payloads ride along for
        free; *w* matters for hardware accounting (the paper's ``q = m + w``
        slices) and is validated non-negative here so cost queries are
        always meaningful.
    check_inputs:
        Verify the destination addresses form a permutation before
        routing (Theorem 2's precondition).  Disable only in fault
        studies.
    """

    def __init__(self, m: int, w: int = 0, check_inputs: bool = True) -> None:
        if m < 1:
            raise ValueError(f"the BNB network needs m >= 1, got {m}")
        if w < 0:
            raise ValueError(f"data width must be non-negative, got {w}")
        self.m = m
        self.n = 1 << m
        self.w = w
        self.check_inputs = check_inputs
        self._bsns: Dict[int, BitSorterNetwork] = {
            k: BitSorterNetwork(k) for k in range(1, m + 1)
        }

    # ------------------------------------------------------------------
    # Structure (Fig. 3 profile and hardware accounting)
    # ------------------------------------------------------------------
    def nested_network_specs(self) -> List[NestedNetworkSpec]:
        """All NB(i, l) entries, stage by stage (the Fig. 3 profile)."""
        specs: List[NestedNetworkSpec] = []
        for i in range(self.m):
            for l in range(1 << i):
                specs.append(
                    NestedNetworkSpec(
                        main_stage=i,
                        index=l,
                        size_exponent=self.m - i,
                        slice_count=(self.m - i) + self.w,
                        bsn_slice=i,
                    )
                )
        return specs

    def profile(self) -> List[List[NestedNetworkSpec]]:
        """Nested-network inventory grouped by main stage."""
        grouped: List[List[NestedNetworkSpec]] = [[] for _ in range(self.m)]
        for spec in self.nested_network_specs():
            grouped[spec.main_stage].append(spec)
        return grouped

    @property
    def switch_count(self) -> int:
        """Total ``2 x 2`` switch slices across all nested networks.

        A nested network of size ``P = 2**p`` carries ``p + w`` one-bit
        slices, each a ``p``-stage GBN with ``P/2`` switches per stage
        (Eqs. 2-3).  Summed over the main network this reproduces the
        ``C_SW`` polynomial of Eq. 6; the test suite checks equality.
        """
        total = 0
        for spec in self.nested_network_specs():
            p = spec.size_exponent
            per_slice = (spec.size // 2) * p
            total += per_slice * spec.slice_count
        return total

    @property
    def function_node_count(self) -> int:
        """Total arbiter function nodes (Eq. 4 summed; ``A(1)`` is wiring)."""
        return sum(
            self._bsns[spec.size_exponent].function_node_count
            for spec in self.nested_network_specs()
        )

    @property
    def switch_stage_depth(self) -> int:
        """Switch columns on the critical path: ``m (m + 1) / 2`` (Eq. 7)."""
        return sum(self.m - i for i in range(self.m))

    @property
    def function_node_depth(self) -> int:
        """Arbiter nodes on the critical path (Eq. 8's sum).

        Each splitter ``sp(p)`` with ``p >= 2`` costs an up-and-down
        traversal of its ``p``-level tree; ``sp(1)`` costs nothing.
        """
        total = 0
        for i in range(self.m):
            for p in range(2, (self.m - i) + 1):
                total += 2 * p
        return total

    def propagation_delay(self, d_sw: float = 1.0, d_fn: float = 1.0) -> float:
        """Total delay with per-element delays ``D_SW`` and ``D_FN`` (Eq. 9)."""
        return self.switch_stage_depth * d_sw + self.function_node_depth * d_fn

    # ------------------------------------------------------------------
    # Routing (reference object model)
    # ------------------------------------------------------------------
    @staticmethod
    def _as_words(inputs: Sequence[WordLike]) -> List[Word]:
        return [
            item if isinstance(item, Word) else Word(address=int(item))
            for item in inputs
        ]

    def _validate_addresses(self, words: Sequence[Word]) -> None:
        addresses = [word.address for word in words]
        seen = [False] * self.n
        for a in addresses:
            if not 0 <= a < self.n or seen[a]:
                raise NotAPermutationError(addresses)
            seen[a] = True

    def route(
        self,
        inputs: Sequence[WordLike],
        record: bool = False,
    ) -> Tuple[List[Word], Optional[BNBRoutingRecord]]:
        """Self-route *inputs* (a permutation of addresses) to the outputs.

        Returns ``(outputs, record)`` where ``outputs[a]`` is the word
        addressed to ``a``.  With ``record=True`` the second element
        carries every splitter decision and per-stage arrangement.
        """
        if len(inputs) != self.n:
            raise ValueError(f"expected {self.n} inputs, got {len(inputs)}")
        words = self._as_words(inputs)
        if self.check_inputs:
            self._validate_addresses(words)

        # Carry (word, original input line) pairs so records can
        # reconstruct packet paths without guessing.
        current: List[Tuple[Word, int]] = [(word, j) for j, word in enumerate(words)]
        nested_records: Dict[Tuple[int, int], BSNRecord] = {}
        stage_outputs: List[List[int]] = []
        m = self.m
        for i in range(m):
            block_exp = m - i
            block = 1 << block_exp
            bsn = self._bsns[block_exp]
            bit_index = i

            def key_of(item: Tuple[Word, int]) -> int:
                return address_bit(item[0].address, bit_index, m)

            routed: List[Tuple[Word, int]] = [None] * self.n  # type: ignore[list-item]
            for l in range(1 << i):
                lo = l * block
                sub = current[lo : lo + block]
                out, rec = bsn.route_words(sub, key_of, record=record)
                if record and rec is not None:
                    nested_records[(i, l)] = rec
                routed[lo : lo + block] = out
            if record:
                stage_outputs.append([idx for _w, idx in routed])
            if i < m - 1:
                k = m - i
                connected: List[Tuple[Word, int]] = [None] * self.n  # type: ignore[list-item]
                for j, value in enumerate(routed):
                    connected[unshuffle_index(j, k, m)] = value
                current = connected
            else:
                current = routed

        outputs = [word for word, _idx in current]
        if self.check_inputs:
            for line, word in enumerate(outputs):
                if word.address != line:
                    raise RoutingError(
                        f"word addressed to {word.address} arrived on line "
                        f"{line}; this indicates a library bug since "
                        f"Theorem 2 guarantees delivery"
                    )
        record_obj = None
        if record:
            record_obj = BNBRoutingRecord(
                m=m,
                input_addresses=[word.address for word in words],
                nested_records=nested_records,
                stage_outputs=stage_outputs,
                output_indices=[idx for _w, idx in current],
            )
        return outputs, record_obj

    def route_permutation(self, pi: Permutation) -> bool:
        """Route permutation *pi* and report whether delivery succeeded."""
        words = [Word(address=pi(j), payload=j) for j in range(self.n)]
        outputs, _ = self.route(words)
        return all(outputs[a].address == a for a in range(self.n))

    # ------------------------------------------------------------------
    # Routing (vectorized fast path)
    # ------------------------------------------------------------------
    def route_fast(self, addresses: "np.ndarray") -> "np.ndarray":
        """Vectorized routing of raw addresses; returns the output lines.

        Same algorithm as :meth:`route`, expressed as whole-array
        operations over the per-``m`` :func:`~repro.core.plan.compiled_plan`
        index tables.  ``result[line] == line`` for every line when the
        input is a permutation; the function returns the array of
        addresses in output-line order so callers can assert that.

        Validation parity with :meth:`route` (honouring
        ``check_inputs``): a wrong input count raises the same
        ``ValueError``, a non-permutation raises
        :class:`~repro.exceptions.NotAPermutationError` with the same
        message, and a misdelivered output (impossible by Theorem 2
        without a fault) raises :class:`~repro.exceptions.RoutingError`.
        """
        lines = np.asarray(addresses, dtype=np.int64)
        if lines.ndim != 1:
            raise ValueError(f"expected shape ({self.n},), got {lines.shape}")
        if lines.shape[0] != self.n:
            raise ValueError(
                f"expected {self.n} inputs, got {lines.shape[0]}"
            )
        plan = compiled_plan(self.m)
        if self.check_inputs:
            if not np.array_equal(np.sort(lines), plan.identity):
                raise NotAPermutationError(lines.tolist())
        for stage in plan.stages:
            lines = lines[stage_take_indices(plan, stage, lines)]
        if self.check_inputs and not np.array_equal(lines, plan.identity):
            line = int(np.argmin(lines == plan.identity))
            raise RoutingError(
                f"word addressed to {int(lines[line])} arrived on line "
                f"{line}; this indicates a library bug since "
                f"Theorem 2 guarantees delivery"
            )
        return lines

    def __repr__(self) -> str:
        return f"BNBNetwork(m={self.m}, n={self.n}, w={self.w})"


# The vector kernels moved to :mod:`repro.core.plan` (shared with the
# pipelined engine); these aliases keep the historical import path.
_vector_splitter_controls = vector_splitter_controls
_vector_apply_controls = vector_apply_controls
