"""A compiled, vectorized cycle-accurate pipelined BNB fabric.

:class:`VectorPipelinedFabric` is the numpy counterpart of
:class:`~repro.core.pipeline.PipelinedBNBFabric`: the same ``m``-deep
register schedule (one batch per main stage, one :meth:`step` per
clock, fill latency ``m + 1``), but each stage's splitter decisions run
as log-depth XOR-up/flag-down array passes over **all** boxes of the
stage at once, and every interstage wire is a precompiled gather from
the per-``m`` :class:`~repro.core.plan.CompiledPlan` cache.  Nothing in
the hot loop touches a Python-level ``Word``, ``Splitter`` or
``Arbiter``; words only materialize again at the delivery boundary.

The engine keeps the exact feeding/delivery surface of the object
model (``offer`` / ``offer_words`` / ``try_offer_words`` /
``add_delivery_hook`` / ``step`` / ``drain`` / ``idle`` /
``route_batch`` / ``stats`` with ``retain_delivered``), so the serving
layer can swap engines per plane.  Physical faults ride along as data
rather than as the object engine's ``control_override`` callback: pass
a :class:`~repro.core.plan.FaultMask` (or install one mid-flight with
:meth:`~VectorPipelinedFabric.set_fault_mask`) and every stuck switch
becomes a masked ``where`` over the stage's control column, while dead
links clobber their line's address to
:data:`~repro.core.plan.DEAD_ADDRESS` at stage input so the sentinel
propagates to the output-side check.  Because each stage re-decides
its splitters from live addresses, the masked vector pass agrees with
the adaptive object model (``route_with_stuck_switch`` /
``PipelinedBNBFabric(control_override=...)``) bit for bit; the
differential fuzz suite drives both engines with identical frame and
fault sequences and asserts identical per-cycle deliveries.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import NotAPermutationError
from .pipeline import PipelineStats
from .plan import (
    DEAD_ADDRESS,
    CompiledPlan,
    FaultMask,
    batch_stage_take_indices,
    compiled_plan,
    stage_take_indices,
)
from .words import Word

__all__ = [
    "VectorPipelinedFabric",
    "VectorBatch",
    "route_frame_batch",
    "route_frame_sources",
]


@dataclasses.dataclass
class VectorBatch:
    """One permutation's words travelling through the vector pipeline.

    ``words`` stays in original input-line order (the payload store);
    ``addresses[line]`` / ``sources[line]`` track what currently sits on
    each line of the batch's stage: the destination address and the
    original input line it entered on.
    """

    tag: Any
    words: List[Word]
    entered_cycle: int
    addresses: np.ndarray
    sources: np.ndarray


def route_frame_sources(
    m: int, addresses: np.ndarray, mask: Optional[FaultMask] = None
) -> np.ndarray:
    """Combinationally route one frame; return source line per output.

    The single-shot form of the vector engine (all ``m`` main stages in
    one call): ``result[line]`` is the input line whose word arrives on
    output ``line``.  For a valid permutation on a healthy fabric,
    output ``line`` carries the word addressed to it; with a
    :class:`~repro.core.plan.FaultMask` the result is the (possibly
    misrouting) faulty fabric's arrival order.  Used by the
    multi-process plane pool, whose workers route whole frames rather
    than clocking a pipeline, and by the fault tests as the one-shot
    faulty-routing oracle.
    """
    plan = compiled_plan(m)
    current = np.asarray(addresses, dtype=np.int64)
    sources = plan.identity
    for stage in plan.stages:
        if mask is not None:
            dead = mask.dead_links.get(stage.stage)
            if dead is not None:
                current = np.where(dead, DEAD_ADDRESS, current)
        take = stage_take_indices(plan, stage, current, mask=mask)
        current = current[take]
        sources = sources[take]
    return sources


def route_frame_batch(
    m: int, addresses: np.ndarray, mask: Optional[FaultMask] = None
) -> np.ndarray:
    """Combinationally route a whole **batch** of frames in one pass.

    The frame-axis form of :func:`route_frame_sources`: *addresses* has
    shape ``(batch, n)`` — each row an independent full permutation —
    and the result has the same shape, ``result[b, line]`` being the
    input line of frame ``b`` whose word arrives on output ``line``.
    Every stage steps **all** frames with one set of numpy gathers
    (:func:`~repro.core.plan.batch_stage_take_indices`), so the
    per-frame Python overhead of the single-shot path amortizes across
    the batch — this is the kernel behind the gateway's batched wire
    protocol (``send_batch`` riding a
    :class:`~repro.server.planes.BatchVectorPlane`).  Row-for-row
    identical to :func:`route_frame_sources` on each frame alone, with
    or without a :class:`~repro.core.plan.FaultMask` (the mask
    broadcasts: the same physical fault afflicts every frame).
    """
    plan = compiled_plan(m)
    current = np.array(addresses, dtype=np.int64, copy=True)
    if current.ndim != 2 or current.shape[1] != plan.n:
        raise ValueError(
            f"a frame batch for m={m} needs shape (batch, {plan.n}), "
            f"got {current.shape}"
        )
    batch = current.shape[0]
    sources = np.broadcast_to(plan.identity, (batch, plan.n)).copy()
    # Flat row-offset gathers instead of take_along_axis: one shared
    # index array per stage, no per-call index-grid rebuild.
    offsets = (np.arange(batch, dtype=np.int64) * plan.n)[:, None]
    for stage in plan.stages:
        if mask is not None:
            dead = mask.dead_links.get(stage.stage)
            if dead is not None:
                current = np.where(dead[None, :], DEAD_ADDRESS, current)
        take = batch_stage_take_indices(plan, stage, current, mask=mask)
        flat = take + offsets
        current = current.ravel().take(flat)
        sources = sources.ravel().take(flat)
    return sources


class VectorPipelinedFabric:
    """An ``m``-deep vectorized pipeline of the BNB main stages.

    Drop-in engine-swap for
    :class:`~repro.core.pipeline.PipelinedBNBFabric`: :meth:`offer` a
    permutation (or nothing, for a bubble) and :meth:`step` once per
    clock; completed batches come back as ``(tag, outputs)`` pairs with
    payload identity preserved.  Physical faults are carried as a
    :class:`~repro.core.plan.FaultMask` (constructor argument or
    :meth:`set_fault_mask`) instead of the object engine's
    ``control_override`` callback.
    """

    def __init__(
        self,
        m: int,
        retain_delivered: bool = True,
        fault_mask: Optional[FaultMask] = None,
    ) -> None:
        if m < 1:
            raise ValueError(f"the fabric needs m >= 1, got {m}")
        if fault_mask is not None and fault_mask.m != m:
            raise ValueError(
                f"fault mask is for m={fault_mask.m}, fabric is m={m}"
            )
        self.m = m
        self.n = 1 << m
        self.fault_mask = fault_mask
        self.plan: CompiledPlan = compiled_plan(m)
        self._stages: List[Optional[VectorBatch]] = [None] * m
        self._pending: Optional[VectorBatch] = None
        self.cycle = 0
        self.accepted = 0
        self.retain_delivered = retain_delivered
        self.delivered_batches: List[Tuple[Any, List[Word]]] = []
        self.delivered_count = 0
        self._latencies: List[int] = []
        self._latency_window = 4096
        self._delivery_hooks: List[Callable[[Any, List[Word]], None]] = []

    # ------------------------------------------------------------------
    # Feeding (same contract as the object engine)
    # ------------------------------------------------------------------
    def offer(self, addresses: Sequence[int], tag: Any = None) -> None:
        """Queue one permutation to enter at the next :meth:`step`."""
        words = [
            Word(address=address, payload=(tag, j))
            for j, address in enumerate(addresses)
        ]
        self.offer_words(words, tag=tag)

    def offer_words(self, words: Sequence[Word], tag: Any = None) -> None:
        """Queue pre-built words (payload identity preserved)."""
        if self._pending is not None:
            raise ValueError("a batch is already waiting to enter this cycle")
        address_array = np.fromiter(
            (word.address for word in words),
            dtype=np.int64,
            count=len(words),
        )
        if len(words) != self.n or not np.array_equal(
            np.sort(address_array), self.plan.identity
        ):
            raise NotAPermutationError([word.address for word in words])
        self._pending = VectorBatch(
            tag=tag,
            words=list(words),
            entered_cycle=self.cycle,
            addresses=address_array,
            sources=self.plan.identity.copy(),
        )

    @property
    def can_accept(self) -> bool:
        """Whether :meth:`offer` would succeed this cycle (no batch waiting)."""
        return self._pending is None

    def try_offer_words(self, words: Sequence[Word], tag: Any = None) -> bool:
        """Non-blocking :meth:`offer_words`: ``False`` when a batch already
        waits, instead of raising.  Address validation still raises — a
        malformed batch is a caller bug, not backpressure."""
        if self._pending is not None:
            return False
        self.offer_words(words, tag=tag)
        return True

    def add_delivery_hook(
        self, hook: Callable[[Any, List[Word]], None]
    ) -> None:
        """Register ``hook(tag, outputs)`` to fire as each batch drains."""
        self._delivery_hooks.append(hook)

    # ------------------------------------------------------------------
    # Clocking
    # ------------------------------------------------------------------
    def set_fault_mask(self, mask: Optional[FaultMask]) -> None:
        """Install (or clear) the fault mask, effective immediately.

        Batches already in flight feel the new mask from their next
        stage onward — exactly how a physical fault appearing mid-frame
        would behave.
        """
        if mask is not None and mask.m != self.m:
            raise ValueError(
                f"fault mask is for m={mask.m}, fabric is m={self.m}"
            )
        self.fault_mask = mask

    def _advance(self, batch: VectorBatch, stage_index: int) -> None:
        """Route *batch* through main stage *stage_index*, in place."""
        stage = self.plan.stages[stage_index]
        mask = self.fault_mask
        if mask is not None:
            dead = mask.dead_links.get(stage_index)
            if dead is not None:
                # Clobber persists in the batch: the sentinel rides to
                # the output-side address check (DEAD_ADDRESS propagation).
                batch.addresses = np.where(dead, DEAD_ADDRESS, batch.addresses)
        take = stage_take_indices(self.plan, stage, batch.addresses, mask=mask)
        batch.addresses = batch.addresses[take]
        batch.sources = batch.sources[take]

    def _materialize(self, batch: VectorBatch) -> List[Word]:
        """Rebuild the output word list (original objects, new order)."""
        words = batch.words
        return [words[source] for source in batch.sources.tolist()]

    def step(self) -> List[Tuple[Any, List[Word]]]:
        """Advance one clock; return batches that completed this cycle."""
        completed: List[Tuple[Any, List[Word]]] = []
        leaving = self._stages[self.m - 1]
        if leaving is not None:
            self._advance(leaving, self.m - 1)
            outputs = self._materialize(leaving)
            completed.append((leaving.tag, outputs))
            self.delivered_count += 1
            if self.retain_delivered:
                self.delivered_batches.append((leaving.tag, outputs))
            self._latencies.append(self.cycle + 1 - leaving.entered_cycle)
            if (
                not self.retain_delivered
                and len(self._latencies) > self._latency_window
            ):
                del self._latencies[: -self._latency_window]
            for hook in self._delivery_hooks:
                hook(leaving.tag, outputs)
        for stage in range(self.m - 2, -1, -1):
            batch = self._stages[stage]
            if batch is not None:
                self._advance(batch, stage)
            self._stages[stage + 1] = batch
        self._stages[0] = self._pending
        if self._pending is not None:
            self.accepted += 1
        self._pending = None
        self.cycle += 1
        return completed

    def drain(self) -> List[Tuple[Any, List[Word]]]:
        """Step until empty; return everything that completed."""
        completed: List[Tuple[Any, List[Word]]] = []
        while any(stage is not None for stage in self._stages) or self._pending:
            completed.extend(self.step())
        return completed

    def idle(self, cycles: int) -> None:
        """Clock *cycles* bubbles through the fabric."""
        for _ in range(cycles):
            self.step()

    def stage_timeline(self, entered_cycle: int) -> List[int]:
        """The cycle at which a batch offered at *entered_cycle* crosses
        each main stage — same deterministic, stall-free timeline as
        :meth:`repro.core.pipeline.PipelinedBNBFabric.stage_timeline`
        (the engines share the clocking contract, so the tracing layer
        needs no per-engine cases).
        """
        return [entered_cycle + 1 + stage for stage in range(self.m)]

    def route_batch(
        self, words: Sequence[Word], tag: Any = None
    ) -> List[Word]:
        """Synchronously route one batch through an idle fabric."""
        if self.in_flight or self._pending is not None:
            raise ValueError(
                "route_batch needs an idle fabric; drain in-flight "
                "batches first"
            )
        self.offer_words(words, tag=tag)
        for completed_tag, outputs in self.drain():
            if completed_tag is tag or completed_tag == tag:
                return outputs
        raise AssertionError("offered batch never completed")  # pragma: no cover

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return sum(stage is not None for stage in self._stages)

    def stats(self) -> PipelineStats:
        return PipelineStats(
            cycles=self.cycle,
            accepted=self.accepted,
            delivered=self.delivered_count,
            latencies=list(self._latencies),
        )

    def __repr__(self) -> str:
        return (
            f"VectorPipelinedFabric(m={self.m}, cycle={self.cycle}, "
            f"in_flight={self.in_flight})"
        )
