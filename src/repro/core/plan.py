"""Compiled routing plans: precomputed index tables for the vector dataplane.

The BNB network's wiring is entirely static — only the splitter
*controls* depend on the words in flight.  The object model nonetheless
recomputes ``unshuffle_index`` per line per stage per cycle, which is
exactly the kind of work a hardware fabric does zero of.  A
:class:`CompiledPlan` hoists all of it out of the hot loop: for each
main stage it precomputes, as numpy arrays,

* the **inner gathers** — the within-splitter-block unshuffle of every
  nested-GBN stage, expressed as one full-width gather index so a stage
  transition is a single fancy-indexing operation;
* the **main-stage gather** — the ``U_{m-i}^m`` unshuffle following the
  stage's nested networks;
* the **nested-network line groupings** — which contiguous lines form
  each NB(i, l), for boundary checks and sampled verification;
* the **pair indices** — even/odd line index arrays the switch columns
  pair up.

Plans are cached per ``m`` (:func:`compiled_plan`), so every fabric,
plane and worker process of a given size shares one set of tables.

The two routing kernels live here too: :func:`vector_splitter_controls`
(the log-depth XOR-up/flag-down arbiter pass over all boxes of a stage
at once) and :func:`vector_apply_controls`.  They are the single vector
implementation behind both the combinational
:meth:`~repro.core.bnb.BNBNetwork.route_fast` and the registered
:class:`~repro.core.pipeline_fast.VectorPipelinedFabric`.

Faults are data here, not control flow: a :class:`FaultMask` carries
per-(main stage, inner stage) stuck-control override arrays plus
per-stage dead-link flags, and :func:`stage_take_indices` applies them
as one masked ``where`` over the freshly computed control column.
Because the vector kernels re-decide every splitter from the addresses
actually present on its inputs — exactly like the adaptive object model
in :mod:`repro.faults.adaptive` — a masked vector pass reproduces
:func:`~repro.faults.adaptive.route_with_stuck_switch` bit for bit
(pinned exhaustively in the tests), so a faulty fabric is the same
numpy gather pipeline plus a masked ``where``.  Dead links propagate as
an int64 sentinel: :data:`DEAD_ADDRESS` is ``-1``, whose every address
bit reads 1, so a word crossing a dead link keeps routing (as garbage)
and keeps the sentinel through every later stage until the output-side
address check flags it.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..bits import cached_shuffle_permutation
from ..exceptions import FaultError

__all__ = [
    "CompiledPlan",
    "DEAD_ADDRESS",
    "FaultMask",
    "StagePlan",
    "batch_stage_take_indices",
    "build_fault_mask",
    "compiled_plan",
    "stage_take_indices",
    "vector_splitter_controls",
    "vector_apply_controls",
]

#: The dead-link sentinel.  As an int64, ``(-1 >> shift) & 1 == 1`` for
#: every shift, so a clobbered word still routes deterministically (as
#: an all-ones address) and the sentinel survives every later stage.
DEAD_ADDRESS = np.int64(-1)


@dataclasses.dataclass(frozen=True)
class StagePlan:
    """Precomputed index tables for one main stage of the BNB network.

    ``inner_gathers[j]`` implements the interstage unshuffle after inner
    (nested-GBN) stage ``j`` as a full-width gather: ``new = old[g]``.
    The last inner stage has no trailing unshuffle (``None``), matching
    the object model.  ``stage_gather`` is the main-network unshuffle
    ``U_{m-i}^m`` following the stage (``None`` on the last main stage).
    """

    stage: int
    block_exp: int  # nested networks have size 2**block_exp
    shift: int  # address bit b^stage sits at this LSB-first position
    inner_widths: Tuple[int, ...]
    inner_gathers: Tuple[Optional[np.ndarray], ...]
    stage_gather: Optional[np.ndarray]

    @property
    def nested_count(self) -> int:
        return 1 << self.stage


@dataclasses.dataclass(frozen=True)
class CompiledPlan:
    """All static routing structure of an ``N = 2**m`` BNB network."""

    m: int
    n: int
    stages: Tuple[StagePlan, ...]
    #: ``line_groups[i]`` has shape ``(2**i, 2**(m-i))``: row ``l`` lists
    #: the contiguous lines of nested network NB(i, l).
    line_groups: Tuple[np.ndarray, ...]
    #: Even/odd members of every switch pair (``pair_even[t]`` and
    #: ``pair_odd[t]`` are the two lines of pair ``t``).
    pair_even: np.ndarray
    pair_odd: np.ndarray
    #: ``identity[j] == j`` — the scratch index base for swap composition.
    identity: np.ndarray


@dataclasses.dataclass(frozen=True)
class FaultMask:
    """Physical faults of one fabric instance, as dataplane arrays.

    ``overrides[(i, j)]`` is a ``(forced, values)`` pair of arrays
    shaped ``(2**(i + j), width // 2)`` — one row per splitter box of
    inner stage ``j`` of main stage ``i`` (row ``l * 2**j + box``, the
    order ``current.reshape(-1, width)`` produces), one column per
    switch.  Where ``forced`` is True the switch control is stuck at
    ``values`` regardless of what the arbiter decided; everywhere else
    the healthy control passes through.  ``dead_links[i]`` flags input
    lines of main stage ``i`` whose words are clobbered to
    :data:`DEAD_ADDRESS` on entry.

    The declarative ``stuck`` / ``dead`` tuples that built the mask are
    retained so fault sets can be merged (live injection rebuilds the
    mask from the union) and reported.
    """

    m: int
    stuck: Tuple[Tuple[Tuple[int, int, int, int, int], int], ...]
    dead: Tuple[Tuple[int, int], ...]
    overrides: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]]
    dead_links: Dict[int, np.ndarray]

    def describe(self) -> Dict[str, object]:
        return {
            "m": self.m,
            "stuck": [
                {"coordinate": list(coordinate), "value": value}
                for coordinate, value in self.stuck
            ],
            "dead_links": [
                {"main_stage": stage, "line": line}
                for stage, line in self.dead
            ],
        }


def build_fault_mask(
    m: int,
    stuck: Iterable[Tuple[Tuple[int, int, int, int, int], int]] = (),
    dead_links: Iterable[Tuple[int, int]] = (),
) -> FaultMask:
    """Compile a declarative fault set into per-stage override arrays.

    *stuck* items are ``((main_stage, nested, nested_stage, box,
    switch), value)`` — the same five-axis coordinates the object fault
    model uses (:class:`repro.faults.injector.SwitchCoordinate` fields,
    kept as plain tuples so the core layer stays import-free of the
    faults layer).  *dead_links* items are ``(main_stage, line)``.
    """
    if m < 1:
        raise ValueError(f"a fault mask needs m >= 1, got {m}")
    n = 1 << m
    stuck = tuple(
        (tuple(int(c) for c in coordinate), int(value))
        for coordinate, value in stuck
    )
    dead = tuple((int(stage), int(line)) for stage, line in dead_links)
    overrides: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
    for coordinate, value in stuck:
        if len(coordinate) != 5:
            raise FaultError(
                f"stuck coordinate needs 5 axes (main_stage, nested, "
                f"nested_stage, box, switch), got {coordinate}"
            )
        i, nested, j, box, switch = coordinate
        if not 0 <= i < m:
            raise FaultError(f"main stage {i} out of range for m={m}")
        block_exp = m - i
        if not 0 <= nested < (1 << i):
            raise FaultError(f"nested index {nested} out of range at stage {i}")
        if not 0 <= j < block_exp:
            raise FaultError(f"nested stage {j} out of range at stage {i}")
        width = 1 << (block_exp - j)
        if not 0 <= box < (1 << j):
            raise FaultError(f"box {box} out of range at stage ({i}, {j})")
        if not 0 <= switch < width // 2:
            raise FaultError(
                f"switch {switch} out of range for width-{width} boxes"
            )
        if value not in (0, 1):
            raise FaultError(f"stuck value must be 0 or 1, got {value}")
        key = (i, j)
        if key not in overrides:
            rows = 1 << (i + j)
            overrides[key] = (
                np.zeros((rows, width // 2), dtype=bool),
                np.zeros((rows, width // 2), dtype=np.int64),
            )
        forced, values = overrides[key]
        row = (nested << j) + box
        forced[row, switch] = True
        values[row, switch] = value
    dead_map: Dict[int, np.ndarray] = {}
    for stage, line in dead:
        if not 0 <= stage < m:
            raise FaultError(f"main stage {stage} out of range for m={m}")
        if not 0 <= line < n:
            raise FaultError(f"line {line} out of range for n={n}")
        if stage not in dead_map:
            dead_map[stage] = np.zeros(n, dtype=bool)
        dead_map[stage][line] = True
    for forced, values in overrides.values():
        forced.flags.writeable = False
        values.flags.writeable = False
    for flags in dead_map.values():
        flags.flags.writeable = False
    return FaultMask(
        m=m, stuck=stuck, dead=dead, overrides=overrides, dead_links=dead_map
    )


def _block_gather(n: int, width_exp: int) -> np.ndarray:
    """Gather array applying the same unshuffle inside every width block.

    The scatter form used by the object model is
    ``new[U(x)] = old[x]`` within each block of ``2**width_exp`` lines;
    the equivalent gather is ``new[x] = old[S(x)]`` with ``S`` the
    shuffle (inverse) wiring.  Composed over all blocks of the full
    ``n``-line column.
    """
    width = 1 << width_exp
    inverse = np.fromiter(
        cached_shuffle_permutation(width_exp, width_exp),
        dtype=np.int64,
        count=width,
    )
    bases = np.arange(0, n, width, dtype=np.int64)
    return (bases[:, None] + inverse[None, :]).reshape(-1)


@functools.lru_cache(maxsize=None)
def compiled_plan(m: int) -> CompiledPlan:
    """Build (once per process per ``m``) the compiled routing plan."""
    if m < 1:
        raise ValueError(f"a routing plan needs m >= 1, got {m}")
    n = 1 << m
    stages = []
    for i in range(m):
        block_exp = m - i
        widths = tuple(1 << (block_exp - j) for j in range(block_exp))
        gathers = tuple(
            _block_gather(n, block_exp - j) if j < block_exp - 1 else None
            for j in range(block_exp)
        )
        stage_gather = _block_gather(n, block_exp) if i < m - 1 else None
        stages.append(
            StagePlan(
                stage=i,
                block_exp=block_exp,
                shift=m - 1 - i,
                inner_widths=widths,
                inner_gathers=gathers,
                stage_gather=stage_gather,
            )
        )
    line_groups = tuple(
        np.arange(n, dtype=np.int64).reshape(1 << i, 1 << (m - i))
        for i in range(m)
    )
    plan = CompiledPlan(
        m=m,
        n=n,
        stages=tuple(stages),
        line_groups=line_groups,
        pair_even=np.arange(0, n, 2, dtype=np.int64),
        pair_odd=np.arange(1, n, 2, dtype=np.int64),
        identity=np.arange(n, dtype=np.int64),
    )
    # The plan is cached and shared by every fabric, plane and worker of
    # this size; freeze the tables so no caller can corrupt the cache.
    for stage in plan.stages:
        for gather in stage.inner_gathers:
            if gather is not None:
                gather.flags.writeable = False
        if stage.stage_gather is not None:
            stage.stage_gather.flags.writeable = False
    for group in plan.line_groups:
        group.flags.writeable = False
    for array in (plan.pair_even, plan.pair_odd, plan.identity):
        array.flags.writeable = False
    return plan


def vector_splitter_controls(bits: np.ndarray) -> np.ndarray:
    """Vectorized arbiter + switch-setting over blocks of bit rows.

    *bits* has shape ``(blocks, width)``; returns controls of shape
    ``(blocks, width // 2)``.  Mirrors :class:`~repro.core.arbiter.Arbiter`
    exactly (tests enforce agreement element by element).
    """
    width = bits.shape[1]
    if width == 2:
        # sp(1): the upper input bit is the control.
        return bits[:, 0:1].copy()
    # Upward pass.
    ups = []
    current = bits
    while current.shape[1] > 1:
        current = current[:, 0::2] ^ current[:, 1::2]
        ups.append(current)
    # Downward pass; the root echoes its own up-value as its parent flag.
    # All values are 0/1 ints, so the per-node selection "u == 0 picks
    # (0, 1), u == 1 echoes the parent flag" is pure bit arithmetic:
    # y1 = z & u, y2 = z | ~u — cheaper than the equivalent ``where``.
    z_down = ups[-1]  # shape (blocks, 1)
    for level in range(len(ups) - 1, -1, -1):
        u = ups[level]
        interleaved = np.empty((u.shape[0], u.shape[1] * 2), dtype=bits.dtype)
        interleaved[:, 0::2] = z_down & u
        interleaved[:, 1::2] = z_down | (u ^ 1)
        z_down = interleaved
    flags = z_down  # shape (blocks, width): one flag per input line
    return bits[:, 0::2] ^ flags[:, 0::2]


def vector_apply_controls(
    blocks: np.ndarray, controls: np.ndarray
) -> np.ndarray:
    """Apply pairwise exchange controls to blocks of lines."""
    out = np.empty_like(blocks)
    even = blocks[:, 0::2]
    odd = blocks[:, 1::2]
    exchange = controls.astype(bool)
    out[:, 0::2] = np.where(exchange, odd, even)
    out[:, 1::2] = np.where(exchange, even, odd)
    return out


def stage_take_indices(
    plan: CompiledPlan,
    stage: StagePlan,
    addresses: np.ndarray,
    mask: Optional[FaultMask] = None,
) -> np.ndarray:
    """One main stage's full line permutation, as a gather index array.

    Runs the stage's nested networks over *addresses* (the per-line
    destination addresses at the stage's input) exactly as the hardware
    would — all boxes of each inner stage decided at once by the
    log-depth arbiter pass — and composes the resulting exchanges with
    the precompiled unshuffle gathers.  The caller applies the returned
    ``take`` to every per-line array it carries:
    ``new_arr = arr[take]``.

    With a :class:`FaultMask`, each inner stage's stuck switches hold
    their forced value in place of the arbiter's decision — a single
    masked ``where`` over the control column.  Downstream splitters
    still re-decide from the addresses actually in front of them, so
    the faulty vector pass matches the adaptive object model exactly.
    (Dead-link clobbering happens at stage *input*, in the caller —
    see :data:`DEAD_ADDRESS`.)
    """
    take = plan.identity
    current = addresses
    shift = stage.shift
    for j, (width, gather) in enumerate(
        zip(stage.inner_widths, stage.inner_gathers)
    ):
        blocks = current.reshape(-1, width)
        bits = (blocks >> shift) & 1
        controls = vector_splitter_controls(bits)
        if mask is not None:
            override = mask.overrides.get((stage.stage, j))
            if override is not None:
                forced, values = override
                controls = np.where(forced, values, controls)
        # One full-width "swap with partner" index per line...
        exchange = np.repeat(controls.reshape(-1).astype(bool), 2)
        swap = np.where(exchange, plan.identity ^ 1, plan.identity)
        # ...composed with the (precompiled) interstage unshuffle.
        step = swap if gather is None else swap[gather]
        take = take[step]
        current = current[step]
    if stage.stage_gather is not None:
        take = take[stage.stage_gather]
    return take


def batch_stage_take_indices(
    plan: CompiledPlan,
    stage: StagePlan,
    addresses: np.ndarray,
    mask: Optional[FaultMask] = None,
) -> np.ndarray:
    """One main stage over a whole **batch** of frames at once.

    The frame-axis form of :func:`stage_take_indices`: *addresses* has
    shape ``(batch, n)`` — one row per independent frame — and the
    returned ``take`` has the same shape, row ``b`` being the gather
    index array for frame ``b``.  Every splitter column of every frame
    is decided in one arbiter pass (the frames stack onto the block
    axis, so the log-depth XOR-up/flag-down recursion is identical),
    and the per-frame exchange/unshuffle compositions become
    ``take_along_axis`` gathers with the frame axis leading.  A
    :class:`FaultMask` broadcasts over the batch: the same physical
    switch is stuck in every frame, exactly as hardware would be.
    """
    batch = addresses.shape[0]
    # Row offsets turn per-frame gathers into one flat ``take`` over the
    # ravelled batch — much cheaper than ``take_along_axis``, which
    # rebuilds a full index grid on every call.
    offsets = (np.arange(batch, dtype=np.int64) * plan.n)[:, None]
    take: Optional[np.ndarray] = None
    current = addresses
    shift = stage.shift
    for j, (width, gather) in enumerate(
        zip(stage.inner_widths, stage.inner_gathers)
    ):
        # (batch * blocks, width): frames stack onto the block axis.
        blocks = current.reshape(-1, width)
        bits = (blocks >> shift) & 1
        controls = vector_splitter_controls(bits)
        if mask is not None:
            override = mask.overrides.get((stage.stage, j))
            if override is not None:
                forced, values = override
                per_frame = controls.reshape(batch, *forced.shape)
                controls = np.where(
                    forced[None, :, :], values[None, :, :], per_frame
                )
        # identity ^ control sends a line to its pair partner exactly
        # when its splitter says exchange (controls are 0/1 ints).
        swap = plan.identity ^ np.repeat(
            controls.reshape(batch, -1), 2, axis=1
        )
        # gather is frame-independent wiring, so fancy-indexing the
        # column axis applies it to every frame at once.
        step = swap if gather is None else swap[:, gather]
        flat = step + offsets
        current = current.ravel().take(flat)
        # First step composes with identity — the step IS the take.
        take = step if take is None else take.ravel().take(flat)
    if stage.stage_gather is not None:
        take = take[:, stage.stage_gather]
    return take
