"""Gate-level hardware substrate.

The paper counts hardware in two primitive units: ``2 x 2`` switches
(``C_SW``) and arbiter function nodes (``C_FN``).  This package builds
*actual gate netlists* for both primitives (Figs. 4-5) and composes
them into arbiters, splitters, bit-sorter networks, complete (small)
BNB networks and Batcher comparators.  Three things come out of it:

* **counts** — gates, switch cells and function nodes of constructed
  hardware, reconciled against the paper's closed forms
  (:mod:`~repro.hardware.accounting`);
* **logic verification** — netlists are evaluated (levelized, or
  event-driven via :mod:`repro.sim`) and must agree with the
  functional models bit for bit;
* **measured delay** — levelized depth and event-driven settle times
  reproduce the delay expressions of Section 5.2.
"""

from .gates import GateType, Gate, GATE_EVALUATORS, evaluate_gate
from .netlist import Netlist
from .library import CostModel, DEFAULT_COST_MODEL
from .function_node import build_function_node, function_node_truth
from .switch_cell import build_switch_cell, switch_cell_truth
from .arbiter_hw import build_arbiter_netlist
from .splitter_hw import build_splitter_netlist
from .bsn_hw import build_bsn_netlist
from .bnb_hw import build_bnb_netlist, BNBNetlistPorts
from .batcher_hw import build_comparator_cell, build_batcher_netlist
from .accounting import (
    HardwareInventory,
    bnb_inventory,
    batcher_inventory,
    koppelman_inventory,
    table1_rows,
)
from .verilog import emit_verilog, parse_verilog, sanitize_identifier
from .layout import (
    WiringCost,
    wiring_cost,
    gbn_wiring_costs,
    bnb_total_wire_length,
)
from .synthesis import optimize, OptimizationReport
from .fault_hw import (
    CoverageReport,
    all_single_stuck_at_faults,
    evaluate_with_faults,
    single_stuck_at_coverage,
)

__all__ = [
    "GateType",
    "Gate",
    "GATE_EVALUATORS",
    "evaluate_gate",
    "Netlist",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "build_function_node",
    "function_node_truth",
    "build_switch_cell",
    "switch_cell_truth",
    "build_arbiter_netlist",
    "build_splitter_netlist",
    "build_bsn_netlist",
    "build_bnb_netlist",
    "BNBNetlistPorts",
    "build_comparator_cell",
    "build_batcher_netlist",
    "HardwareInventory",
    "bnb_inventory",
    "batcher_inventory",
    "koppelman_inventory",
    "table1_rows",
    "emit_verilog",
    "parse_verilog",
    "sanitize_identifier",
    "WiringCost",
    "wiring_cost",
    "gbn_wiring_costs",
    "bnb_total_wire_length",
    "optimize",
    "OptimizationReport",
    "CoverageReport",
    "all_single_stuck_at_faults",
    "evaluate_with_faults",
    "single_stuck_at_coverage",
]
