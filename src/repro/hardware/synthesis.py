"""Light-weight logic optimization for netlists.

Three classic cleanups, enough to make generated netlists tidy without
changing their behaviour:

* **constant folding** — gates whose inputs are known constants become
  constants; muxes with constant selects collapse to a branch;
* **buffer/double-inverter collapsing** — ``BUF(x)`` and
  ``NOT(NOT(x))`` forward to ``x``;
* **dead-gate elimination** — gates outside every output cone are
  dropped.

:func:`optimize` returns a *new* netlist plus a report; equivalence is
the caller's to check, and the tests check it exhaustively on every
cell in the library (the optimizer must never change a truth table).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from .gates import GateType, evaluate_gate
from .netlist import Netlist

__all__ = ["optimize", "OptimizationReport"]


@dataclasses.dataclass(frozen=True)
class OptimizationReport:
    """What the optimizer did."""

    gates_before: int
    gates_after: int
    folded_constants: int
    collapsed_buffers: int
    removed_dead: int

    @property
    def gates_saved(self) -> int:
        return self.gates_before - self.gates_after


_CONSTANTS = (GateType.CONST0, GateType.CONST1)


def optimize(netlist: Netlist) -> Tuple[Netlist, OptimizationReport]:
    """Return an equivalent, cleaned-up copy of *netlist*."""
    # Pass 1 (forward): for every net, record either a known constant
    # value or a representative net it forwards to.
    constant_of: Dict[int, int] = {}
    forwards_to: Dict[int, int] = {}
    folded = 0
    collapsed = 0

    def resolve(net: int) -> int:
        while net in forwards_to:
            net = forwards_to[net]
        return net

    driver_kind: Dict[int, GateType] = {}
    driver_inputs: Dict[int, Tuple[int, ...]] = {}
    for gate in netlist.gates:
        kind = gate.gate_type
        output = gate.output
        driver_kind[output] = kind
        if kind is GateType.INPUT:
            continue
        if kind is GateType.CONST0:
            constant_of[output] = 0
            continue
        if kind is GateType.CONST1:
            constant_of[output] = 1
            continue
        inputs = tuple(resolve(n) for n in gate.inputs)
        driver_inputs[output] = inputs
        values = [constant_of.get(n) for n in inputs]
        if all(v is not None for v in values):
            constant_of[output] = evaluate_gate(kind, values)  # type: ignore[arg-type]
            folded += 1
            continue
        if kind is GateType.BUF:
            forwards_to[output] = inputs[0]
            collapsed += 1
            continue
        # Idempotence / self-cancellation on equal inputs.  These arise
        # naturally from the arbiter's root echo (z_down wired to z_up),
        # whose node then computes AND(z, z) and OR(~z, z).
        if len(inputs) == 2 and inputs[0] == inputs[1]:
            if kind in (GateType.AND, GateType.OR):
                forwards_to[output] = inputs[0]
                collapsed += 1
                continue
            if kind is GateType.XOR:
                constant_of[output] = 0
                folded += 1
                continue
            if kind is GateType.XNOR:
                constant_of[output] = 1
                folded += 1
                continue
        if kind is GateType.OR and len(inputs) == 2:
            # OR(~z, z) == 1 (and symmetrically).
            for first, second in (inputs, inputs[::-1]):
                if (
                    driver_kind.get(first) is GateType.NOT
                    and driver_inputs.get(first, (None,))[0] == second
                ):
                    constant_of[output] = 1
                    folded += 1
                    break
            if output in constant_of:
                continue
        if kind is GateType.AND and len(inputs) == 2:
            # AND(~z, z) == 0.
            for first, second in (inputs, inputs[::-1]):
                if (
                    driver_kind.get(first) is GateType.NOT
                    and driver_inputs.get(first, (None,))[0] == second
                ):
                    constant_of[output] = 0
                    folded += 1
                    break
            if output in constant_of:
                continue
        if kind is GateType.NOT:
            source = inputs[0]
            if driver_kind.get(source) is GateType.NOT:
                inner = driver_inputs[source][0]
                forwards_to[output] = inner
                collapsed += 1
                continue
        if kind is GateType.MUX2:
            select, a, b = inputs
            select_value = constant_of.get(select)
            if select_value is not None:
                forwards_to[output] = b if select_value else a
                folded += 1
                continue
            if a == b:
                forwards_to[output] = a
                collapsed += 1
                continue

    # Pass 2 (backward): mark live cone from the outputs.
    live: set = set()
    stack = [resolve(net) for net in netlist.outputs.values()]
    while stack:
        net = stack.pop()
        if net in live or net in constant_of:
            continue
        live.add(net)
        kind = driver_kind.get(net)
        if kind in (GateType.INPUT, None) or kind in _CONSTANTS:
            continue
        stack.extend(resolve(n) for n in driver_inputs.get(net, ()))

    # Pass 3: rebuild.
    rebuilt = Netlist(name=netlist.name + "_opt" if netlist.name else "opt")
    new_net: Dict[int, int] = {}
    const_nets: Dict[int, int] = {}

    def constant_net(value: int) -> int:
        if value not in const_nets:
            kind = GateType.CONST1 if value else GateType.CONST0
            const_nets[value] = rebuilt.add_gate(kind, ())
        return const_nets[value]

    for name, net in netlist.inputs.items():
        new_net[net] = rebuilt.add_input(name)

    removed = 0
    for gate in netlist.gates:
        if gate.gate_type is GateType.INPUT or gate.gate_type in _CONSTANTS:
            continue
        output = gate.output
        if output in constant_of or output in forwards_to:
            continue  # replaced by constant or forwarding
        if output not in live:
            removed += 1
            continue
        inputs = []
        for raw in driver_inputs[output]:
            if raw in constant_of:
                inputs.append(constant_net(constant_of[raw]))
            else:
                inputs.append(new_net[raw])
        new_net[output] = rebuilt.add_gate(
            gate.gate_type, tuple(inputs), group=gate.group
        )

    for name, net in netlist.outputs.items():
        target = resolve(net)
        if target in constant_of:
            rebuilt.mark_output(name, constant_net(constant_of[target]))
        else:
            rebuilt.mark_output(name, new_net[target])

    report = OptimizationReport(
        gates_before=netlist.gate_count,
        gates_after=rebuilt.gate_count,
        folded_constants=folded,
        collapsed_buffers=collapsed,
        removed_dead=removed,
    )
    return rebuilt, report
