"""A complete gate-level BNB network (for small ``m``).

Every line carries ``m`` address-bit nets (payload slices would be
follower copies of the same switch cells, so they add hardware but no
logic novelty; the accounting layer charges them analytically).  At
main stage ``i`` each nested network is built slice by slice:

* slice ``i`` (the BSN slice) gets splitters — arbiter trees plus
  switch-setting XORs plus its own switch cells;
* every other slice gets one *follower* switch cell per switch,
  driven by the BSN slice's control net, exactly as the paper wires
  them ("this switch setting signal is sent to all other sw(1)'s in
  the corresponding locations of other slices").

Evaluating the netlist on a permutation's address bits must produce the
sorted addresses — the gate-level restatement of Theorem 2, and the
strongest cross-check the reproduction has: the functional model, the
vectorized model and the netlist all have to agree.

Size guard: gate count grows as ``N log^3 N``; ``m <= 6`` keeps
construction in the tens of thousands of gates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from ..bits import unshuffle_index
from .netlist import Netlist
from .splitter_hw import add_splitter
from .switch_cell import add_switch_cell

__all__ = ["build_bnb_netlist", "BNBNetlistPorts"]

_MAX_M = 6


@dataclasses.dataclass
class BNBNetlistPorts:
    """Port map of a generated BNB netlist.

    ``address_inputs[j][b]`` / ``address_outputs[j][b]`` are the net
    names of address bit ``b`` (MSB-first, the paper's ``b^b``) of line
    ``j``.
    """

    m: int
    address_inputs: List[List[str]]
    address_outputs: List[List[str]]

    def input_assignment(self, addresses: Sequence[int]) -> Dict[str, int]:
        """Input-value mapping that feeds *addresses* into the netlist."""
        n = 1 << self.m
        if len(addresses) != n:
            raise ValueError(f"expected {n} addresses, got {len(addresses)}")
        assignment: Dict[str, int] = {}
        for j, address in enumerate(addresses):
            for b in range(self.m):
                assignment[self.address_inputs[j][b]] = (
                    address >> (self.m - 1 - b)
                ) & 1
        return assignment

    def decode_outputs(self, outputs: Dict[str, int]) -> List[int]:
        """Reassemble per-line addresses from evaluated output values."""
        n = 1 << self.m
        result: List[int] = []
        for j in range(n):
            value = 0
            for b in range(self.m):
                value = (value << 1) | outputs[self.address_outputs[j][b]]
            result.append(value)
        return result


def build_bnb_netlist(m: int) -> Tuple[Netlist, BNBNetlistPorts]:
    """Build the full ``2**m``-input BNB netlist (address slices only)."""
    if not 1 <= m <= _MAX_M:
        raise ValueError(
            f"gate-level BNB supports 1 <= m <= {_MAX_M} "
            f"(N log^3 N gates), got m={m}"
        )
    n = 1 << m
    netlist = Netlist(name=f"bnb_{n}")
    # lines[j][b]: current net of address bit b on line j.
    lines: List[List[int]] = []
    input_names: List[List[str]] = []
    for j in range(n):
        names = [f"a{j}b{b}" for b in range(m)]
        input_names.append(names)
        lines.append([netlist.add_input(name) for name in names])

    for i in range(m):  # main stage
        block_exp = m - i
        for l in range(1 << i):  # nested network NB(i, l)
            lo = l * (1 << block_exp)
            _route_nested(netlist, lines, lo, block_exp, bsn_slice=i, m=m)
        if i < m - 1:  # main unshuffle U_{m-i}^m
            k = m - i
            connected: List[List[int]] = [None] * n  # type: ignore[list-item]
            for j in range(n):
                connected[unshuffle_index(j, k, m)] = lines[j]
            lines = connected

    output_names: List[List[str]] = []
    for j in range(n):
        names = [f"o{j}b{b}" for b in range(m)]
        output_names.append(names)
        for b in range(m):
            netlist.mark_output(names[b], lines[j][b])
    ports = BNBNetlistPorts(
        m=m, address_inputs=input_names, address_outputs=output_names
    )
    return netlist, ports


def _route_nested(
    netlist: Netlist,
    lines: List[List[int]],
    lo: int,
    block_exp: int,
    bsn_slice: int,
    m: int,
) -> None:
    """Wire one nested network in place over ``lines[lo : lo + 2**block_exp]``."""
    size = 1 << block_exp
    for j in range(block_exp):  # nested stage
        splitter_exp = block_exp - j
        width = 1 << splitter_exp
        for box in range(1 << j):
            base = lo + box * width
            sub = [lines[base + t] for t in range(width)]
            key_nets = [line[bsn_slice] for line in sub]
            bsn_nets, controls = add_splitter(netlist, key_nets, key_nets)
            # Follower slices: same switch cells, driven by the same
            # control nets, one per remaining address slice.
            new_lines: List[List[int]] = [
                [0] * m for _ in range(width)
            ]
            for t, control in enumerate(controls):
                for b in range(m):
                    if b == bsn_slice:
                        new_lines[2 * t][b] = bsn_nets[2 * t]
                        new_lines[2 * t + 1][b] = bsn_nets[2 * t + 1]
                    else:
                        upper, lower = add_switch_cell(
                            netlist,
                            sub[2 * t][b],
                            sub[2 * t + 1][b],
                            control,
                        )
                        new_lines[2 * t][b] = upper
                        new_lines[2 * t + 1][b] = lower
            for t in range(width):
                lines[base + t] = new_lines[t]
        if j < block_exp - 1:
            # Nested unshuffle within each splitter-sized block.
            for box in range(1 << j):
                base = lo + box * width
                block_lines = [lines[base + t] for t in range(width)]
                half = width // 2
                reordered = block_lines[0::2] + block_lines[1::2]
                for t in range(width):
                    lines[base + t] = reordered[t]
