"""Gate-level arbiter trees ``A(p)`` (Fig. 4's tree, nodes from Fig. 5).

The tree is a DAG in the netlist sense: the XOR (``z_up``) gates feed
bottom-up, the flag gates (``y1``/``y2``) feed top-down, and the root's
parent flag is its own up-value (the echo of algorithm step 4 — pure
wiring, no gate).  Construction therefore runs in two passes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..bits import require_power_of_two
from .gates import GateType
from .netlist import Netlist

__all__ = ["add_arbiter_tree", "build_arbiter_netlist"]


def add_arbiter_tree(
    netlist: Netlist, input_nets: Sequence[int], group: str = "fn"
) -> List[int]:
    """Instantiate ``A(p)`` over *input_nets*; return per-line flag nets.

    Requires at least four inputs (``p >= 2``); for two inputs the
    arbiter is wiring and callers should use the input bit directly
    (see the splitter builder).
    """
    p = require_power_of_two(len(input_nets), "arbiter input count")
    if p < 2:
        raise ValueError("gate-level A(p) needs p >= 2; A(1) is wiring")

    # Upward pass: XOR tree.  up_nets[level][i] is node i's z_up net.
    up_nets: List[List[int]] = []
    current = list(input_nets)
    while len(current) > 1:
        next_nets = [
            netlist.add_gate(
                GateType.XOR, (current[2 * t], current[2 * t + 1]), group=group
            )
            for t in range(len(current) // 2)
        ]
        up_nets.append(next_nets)
        current = next_nets

    # Downward pass: per node, y1 = z_up AND z_down; y2 = !z_up OR z_down.
    root_level = len(up_nets) - 1
    down_nets: List[List[int]] = [[0] * len(level) for level in up_nets]
    down_nets[root_level][0] = up_nets[root_level][0]  # echo wire
    flags: List[int] = [0] * len(input_nets)
    for level in range(root_level, -1, -1):
        for index, z_up in enumerate(up_nets[level]):
            z_down = down_nets[level][index]
            y1 = netlist.add_gate(GateType.AND, (z_up, z_down), group=group)
            not_z_up = netlist.add_gate(GateType.NOT, (z_up,), group=group)
            y2 = netlist.add_gate(GateType.OR, (not_z_up, z_down), group=group)
            if level > 0:
                down_nets[level - 1][2 * index] = y1
                down_nets[level - 1][2 * index + 1] = y2
            else:
                flags[2 * index] = y1
                flags[2 * index + 1] = y2
    return flags


def build_arbiter_netlist(p: int) -> Netlist:
    """A standalone ``A(p)`` netlist with inputs ``s[j]`` / outputs ``f[j]``."""
    if p < 2:
        raise ValueError(f"gate-level A(p) needs p >= 2, got {p}")
    netlist = Netlist(name=f"arbiter_A{p}")
    inputs = [netlist.add_input(f"s[{j}]") for j in range(1 << p)]
    flags = add_arbiter_tree(netlist, inputs)
    for j, net in enumerate(flags):
        netlist.mark_output(f"f[{j}]", net)
    return netlist
