"""A first-order VLSI layout model: wire lengths of the connections.

The paper counts switches and nodes; in silicon the interstage wiring
is the other cost.  In the standard column layout (line ``j`` of every
stage at vertical track ``j``), a connection's cost is the vertical
distance each wire spans and the number of *tracks* (max cut) the
pattern needs.  This module computes both for any wiring and totals
them per network, giving a quantitative version of the paper's
"good regularity" remark — and showing its price: the BNB's early
full-width unshuffles are long-haul wiring, like every log-stage
network's.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from ..bits import require_power_of_two
from ..topology.connections import unshuffle_connection

__all__ = [
    "WiringCost",
    "wiring_cost",
    "gbn_wiring_costs",
    "bnb_total_wire_length",
]


@dataclasses.dataclass(frozen=True)
class WiringCost:
    """Costs of one interstage wiring in the column layout."""

    total_length: int  # sum over wires of |dest - source|
    max_length: int    # longest single wire
    track_count: int   # max number of wires crossing any horizontal cut
    wire_count: int

    @property
    def average_length(self) -> float:
        return self.total_length / self.wire_count if self.wire_count else 0.0


def wiring_cost(wiring: Sequence[int]) -> WiringCost:
    """Vertical wire lengths and channel density of a wiring."""
    n = len(wiring)
    lengths = [abs(destination - source) for source, destination in enumerate(wiring)]
    # Channel density: sweep the n-1 horizontal cuts; a wire from s to d
    # crosses cut c (between track c and c+1) iff min < c+1 <= max.
    crossings = [0] * max(n - 1, 1)
    for source, destination in enumerate(wiring):
        low, high = sorted((source, destination))
        for cut in range(low, high):
            crossings[cut] += 1
    return WiringCost(
        total_length=sum(lengths),
        max_length=max(lengths, default=0),
        track_count=max(crossings, default=0),
        wire_count=n,
    )


def gbn_wiring_costs(m: int) -> List[WiringCost]:
    """Costs of the GBN's ``m - 1`` unshuffle connections ``U_{m-i}^m``."""
    require_power_of_two(1 << m, "network size")
    n = 1 << m
    return [wiring_cost(unshuffle_connection(n, m - i)) for i in range(m - 1)]


def bnb_total_wire_length(m: int, w: int = 0) -> int:
    """Total vertical wire length of every connection in a BNB network.

    Each nested network at main stage ``i`` contributes its internal
    GBN connections on ``m - i + w`` slices; the main network's
    ``U_{m-i}^m`` connections run once per slice as well.  Wire length
    of a connection inside a block is independent of the block's
    position, so block counts multiply.
    """
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    total = 0
    # Main-network connections: after main stage i (i < m-1), a global
    # U_{m-i}^m on (m - i + w)... the words leaving stage i still carry
    # (m - i - 1 + w) remaining slices plus the consumed bit's slice is
    # dropped; charge the slices present *on the wire*: (m - i - 1) + w
    # address+data slices (bit i is consumed inside stage i).
    n = 1 << m
    for i in range(m - 1):
        slices = (m - i - 1) + w
        total += wiring_cost(unshuffle_connection(n, m - i)).total_length * slices
    # Nested-network internals: stage i has 2**i nested GBNs of size
    # 2**(m-i) with (m - i + w) slices each; their internal connection
    # after nested stage j is U_{p-j}^p per block of size 2**(p-j).
    for i in range(m):
        p = m - i
        slices = p + w
        block_count_of_nested = 1 << i
        for j in range(p - 1):
            width = 1 << (p - j)
            per_block = wiring_cost(
                unshuffle_connection(width, p - j)
            ).total_length
            blocks_inside = 1 << j
            total += (
                per_block * blocks_inside * block_count_of_nested * slices
            )
    return total
