"""Gate-level stuck-at fault analysis (test-pattern coverage).

Complementing the control-level fault model in :mod:`repro.faults`,
this module works at the netlist level: force any net to a constant
(stuck-at-0/1) and evaluate.  On top of that,
:func:`single_stuck_at_coverage` answers the classic
design-for-test question — what fraction of all single stuck-at faults
does a given test-vector set detect at the outputs?

The exhaustive-input coverage of a netlist is also a *testability*
statement about the design: tests show every fault in the Fig. 5
function node and the splitter is detectable, i.e. the paper's cells
contain no untestable redundancy.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import FaultError
from .gates import GateType, evaluate_gate
from .netlist import Netlist

__all__ = [
    "evaluate_with_faults",
    "all_single_stuck_at_faults",
    "single_stuck_at_coverage",
    "CoverageReport",
]


def evaluate_with_faults(
    netlist: Netlist,
    input_values: Mapping[str, int],
    stuck: Mapping[int, int],
) -> Dict[str, int]:
    """Evaluate with the nets in *stuck* forced to constant values."""
    for net, value in stuck.items():
        if value not in (0, 1):
            raise FaultError(f"stuck value must be 0 or 1, got {value!r}")
        if net < 0 or net >= netlist._net_count:
            raise FaultError(f"no net {net} in this netlist")
    missing = set(netlist.inputs) - set(input_values)
    if missing:
        raise ValueError(f"missing input values for {sorted(missing)}")
    values: Dict[int, int] = {}
    for name, net in netlist.inputs.items():
        values[net] = stuck.get(net, input_values[name])
    for gate in netlist.gates:
        if gate.gate_type is GateType.INPUT:
            continue
        output = gate.output
        if output in stuck:
            values[output] = stuck[output]
            continue
        values[output] = evaluate_gate(
            gate.gate_type, [values[n] for n in gate.inputs]
        )
    return {name: values[net] for name, net in netlist.outputs.items()}


def all_single_stuck_at_faults(netlist: Netlist) -> List[Tuple[int, int]]:
    """Every (net, stuck_value) pair over all driven nets."""
    return [
        (gate.output, value) for gate in netlist.gates for value in (0, 1)
    ]


@dataclasses.dataclass
class CoverageReport:
    """Result of a stuck-at coverage run."""

    total_faults: int
    detected_faults: int
    undetected: List[Tuple[int, int]]

    @property
    def coverage(self) -> float:
        return (
            self.detected_faults / self.total_faults if self.total_faults else 0.0
        )


def single_stuck_at_coverage(
    netlist: Netlist,
    test_vectors: Iterable[Mapping[str, int]],
    faults: Optional[Sequence[Tuple[int, int]]] = None,
) -> CoverageReport:
    """Fraction of single stuck-at faults detected by *test_vectors*.

    A fault is detected when at least one vector produces an output
    that differs from the fault-free response.
    """
    vectors = [dict(vector) for vector in test_vectors]
    if not vectors:
        raise ValueError("need at least one test vector")
    golden = [netlist.evaluate(vector) for vector in vectors]
    fault_list = list(faults) if faults is not None else all_single_stuck_at_faults(
        netlist
    )
    undetected: List[Tuple[int, int]] = []
    detected = 0
    for net, value in fault_list:
        caught = False
        for vector, expected in zip(vectors, golden):
            observed = evaluate_with_faults(netlist, vector, {net: value})
            if observed != expected:
                caught = True
                break
        if caught:
            detected += 1
        else:
            undetected.append((net, value))
    return CoverageReport(
        total_faults=len(fault_list),
        detected_faults=detected,
        undetected=undetected,
    )
