"""Gate-level Batcher comparators and (small) complete sorting networks.

The paper's Eq. 11 hardware model for a ``q = m + w``-bit comparator:
``m`` one-bit function slices (the compare logic, one per address bit)
plus ``q`` one-bit switch slices (the swap path).  The comparator here
matches that structure: an MSB-first ripple comparator producing
``a > b`` — one greater/equal slice per bit, tagged ``cmp`` — then one
switch cell per bit with the comparison result as the shared control.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..baselines.batcher import odd_even_merge_sort_pairs
from .gates import GateType
from .netlist import Netlist
from .switch_cell import add_switch_cell

__all__ = ["add_comparator", "build_comparator_cell", "build_batcher_netlist"]

_MAX_M = 4


def add_comparator(
    netlist: Netlist,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
) -> Tuple[List[int], List[int]]:
    """Compare-exchange two words (bit nets MSB first).

    Returns ``(min_bits, max_bits)``: the smaller word on the first
    output, as in an ascending comparator.
    """
    if len(a_bits) != len(b_bits) or not a_bits:
        raise ValueError("comparator needs two equal, non-empty bit vectors")
    # MSB-first ripple: greater = a>b so far, equal = a==b so far.
    greater = None
    equal = None
    for a, b in zip(a_bits, b_bits):
        not_b = netlist.add_gate(GateType.NOT, (b,), group="cmp")
        a_gt_b = netlist.add_gate(GateType.AND, (a, not_b), group="cmp")
        a_eq_b = netlist.add_gate(GateType.XNOR, (a, b), group="cmp")
        if greater is None:
            greater = a_gt_b
            equal = a_eq_b
        else:
            step = netlist.add_gate(GateType.AND, (equal, a_gt_b), group="cmp")
            greater = netlist.add_gate(GateType.OR, (greater, step), group="cmp")
            equal = netlist.add_gate(GateType.AND, (equal, a_eq_b), group="cmp")
    assert greater is not None
    min_bits: List[int] = []
    max_bits: List[int] = []
    for a, b in zip(a_bits, b_bits):
        # control = greater: when a > b the words swap lines.
        upper, lower = add_switch_cell(netlist, a, b, greater)
        min_bits.append(upper)
        max_bits.append(lower)
    return min_bits, max_bits


def build_comparator_cell(width: int) -> Netlist:
    """A standalone *width*-bit comparator with ports ``a[b]``/``b[b]``."""
    if width < 1:
        raise ValueError(f"comparator width must be positive, got {width}")
    netlist = Netlist(name=f"comparator_{width}b")
    a_bits = [netlist.add_input(f"a[{b}]") for b in range(width)]
    b_bits = [netlist.add_input(f"b[{b}]") for b in range(width)]
    min_bits, max_bits = add_comparator(netlist, a_bits, b_bits)
    for b in range(width):
        netlist.mark_output(f"min[{b}]", min_bits[b])
        netlist.mark_output(f"max[{b}]", max_bits[b])
    return netlist


def build_batcher_netlist(m: int) -> Tuple[Netlist, List[List[str]], List[List[str]]]:
    """A complete ``2**m``-input odd-even merge sorter on ``m``-bit keys.

    Returns ``(netlist, input_names, output_names)`` with
    ``input_names[j][b]`` naming bit ``b`` (MSB first) of line ``j``.
    """
    if not 1 <= m <= _MAX_M:
        raise ValueError(
            f"gate-level Batcher supports 1 <= m <= {_MAX_M}, got m={m}"
        )
    n = 1 << m
    netlist = Netlist(name=f"batcher_{n}")
    input_names = [[f"a{j}b{b}" for b in range(m)] for j in range(n)]
    lines: List[List[int]] = [
        [netlist.add_input(name) for name in names] for names in input_names
    ]
    for i, j in odd_even_merge_sort_pairs(n):
        lines[i], lines[j] = add_comparator(netlist, lines[i], lines[j])
    output_names = [[f"o{j}b{b}" for b in range(m)] for j in range(n)]
    for j in range(n):
        for b in range(m):
            netlist.mark_output(output_names[j][b], lines[j][b])
    return netlist, input_names, output_names
