"""The arbiter function node at gate level (Fig. 5 of the paper).

Behaviour (Section 4):

* send up the XOR of the children: ``z_u = x1 XOR x2``;
* if ``z_u == 0`` (type-1 pair below), *generate* flags
  ``y1 = 0``, ``y2 = 1`` regardless of the parent;
* if ``z_u == 1`` (type-2 pair below), *forward* the parent flag:
  ``y1 = y2 = z_d``.

As two-level logic: ``y1 = z_u AND z_d`` and ``y2 = (NOT z_u) OR z_d``.
That is one XOR, one AND, one NOT and one OR — "the function node ...
consists of few gates", as the paper says; its delay is charged as one
``D_FN`` unit in the analytical model.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .gates import GateType
from .netlist import Netlist

__all__ = ["build_function_node", "add_function_node", "function_node_truth"]


def function_node_truth(x1: int, x2: int, z_down: int) -> Tuple[int, int, int]:
    """Reference truth function: returns ``(z_up, y1, y2)``."""
    for v in (x1, x2, z_down):
        if v not in (0, 1):
            raise ValueError(f"function node inputs must be bits, got {v!r}")
    z_up = x1 ^ x2
    if z_up == 0:
        return z_up, 0, 1
    return z_up, z_down, z_down


def add_function_node(
    netlist: Netlist, x1: int, x2: int, z_down: int, group: str = "fn"
) -> Tuple[int, int, int]:
    """Instantiate one function node inside *netlist*.

    Takes three existing net ids and returns the net ids of
    ``(z_up, y1, y2)``.  All four gates carry the *group* tag so the
    accounting layer can count function nodes from raw netlists.
    """
    z_up = netlist.add_gate(GateType.XOR, (x1, x2), group=group)
    y1 = netlist.add_gate(GateType.AND, (z_up, z_down), group=group)
    not_z_up = netlist.add_gate(GateType.NOT, (z_up,), group=group)
    y2 = netlist.add_gate(GateType.OR, (not_z_up, z_down), group=group)
    return z_up, y1, y2


def build_function_node() -> Netlist:
    """A standalone function-node netlist with named ports."""
    netlist = Netlist(name="function_node")
    x1 = netlist.add_input("x1")
    x2 = netlist.add_input("x2")
    z_down = netlist.add_input("z_down")
    z_up, y1, y2 = add_function_node(netlist, x1, x2, z_down)
    netlist.mark_output("z_up", z_up)
    netlist.mark_output("y1", y1)
    netlist.mark_output("y2", y2)
    return netlist
