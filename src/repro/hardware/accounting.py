"""Hardware accounting in the paper's units (Table 1 reproduction).

Each network's hardware is inventoried as counts of the paper's
primitive units — one-bit ``2 x 2`` switch slices, arbiter function
nodes / comparator function slices, and adder slices (Koppelman only).
Counts come from the *constructed* objects
(:class:`~repro.core.bnb.BNBNetwork`,
:class:`~repro.baselines.batcher.BatcherNetwork`) so that the closed
forms in :mod:`repro.analysis.complexity` are verified against real
structures, not against themselves.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..baselines.batcher import BatcherNetwork
from ..baselines.koppelman import KoppelmanSRPN
from ..core.bnb import BNBNetwork
from .library import CostModel, DEFAULT_COST_MODEL

__all__ = [
    "HardwareInventory",
    "bnb_inventory",
    "batcher_inventory",
    "koppelman_inventory",
    "table1_rows",
]


@dataclasses.dataclass(frozen=True)
class HardwareInventory:
    """Primitive-unit counts of one network instance."""

    network: str
    n: int
    w: int
    switch_slices: int
    function_units: int
    adder_slices: int = 0

    def total_cost(self, model: CostModel = DEFAULT_COST_MODEL) -> float:
        """Scalar cost under a technology model (all units weighted)."""
        return (
            self.switch_slices * model.c_sw
            + self.function_units * model.c_fn
            + self.adder_slices * model.c_adder
        )

    def as_row(self) -> Dict[str, object]:
        return {
            "network": self.network,
            "N": self.n,
            "w": self.w,
            "2x2 switches": self.switch_slices,
            "function units": self.function_units,
            "adder slices": self.adder_slices,
        }


def bnb_inventory(m: int, w: int = 0) -> HardwareInventory:
    """Count the BNB network's hardware from its constructed structure."""
    network = BNBNetwork(m=m, w=w)
    return HardwareInventory(
        network="BNB (this paper)",
        n=network.n,
        w=w,
        switch_slices=network.switch_count,
        function_units=network.function_node_count,
    )


def batcher_inventory(m: int, w: int = 0) -> HardwareInventory:
    """Count the Batcher network's hardware (Eq. 11's model)."""
    network = BatcherNetwork(m=m, w=w)
    return HardwareInventory(
        network="Batcher",
        n=network.n,
        w=w,
        switch_slices=network.switch_slice_count,
        function_units=network.function_slice_count,
    )


def koppelman_inventory(m: int, w: int = 0) -> HardwareInventory:
    """Koppelman SRPN hardware per its published leading terms."""
    network = KoppelmanSRPN(m=m, w=w)
    return HardwareInventory(
        network="Koppelman SRPN",
        n=network.n,
        w=w,
        switch_slices=network.switch_slice_count,
        function_units=network.function_slice_count,
        adder_slices=network.adder_slice_count,
    )


def table1_rows(m: int, w: int = 0) -> List[HardwareInventory]:
    """The three Table 1 rows for one network size."""
    return [
        batcher_inventory(m, w),
        koppelman_inventory(m, w),
        bnb_inventory(m, w),
    ]
