"""Netlists: gates wired by integer net ids, with analysis passes.

A :class:`Netlist` is built incrementally (``add_input`` / ``add_gate``
/ ``mark_output``), then analyzed:

* :meth:`Netlist.evaluate` — levelized combinational evaluation;
* :meth:`Netlist.levelize` — topological levels (each gate's level is
  one more than its deepest input), the basis for
* :meth:`Netlist.critical_path_length` and
  :meth:`Netlist.weighted_depth` — unit and per-type-weighted depth;
* :meth:`Netlist.gate_census` / :meth:`Netlist.group_census` — counts
  by gate type and by component group, feeding the hardware accounting.

Netlists here are purely combinational; cycles are rejected at
levelization time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from .gates import Gate, GateType, evaluate_gate

__all__ = ["Netlist"]


class Netlist:
    """A combinational gate network over integer net ids."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.gates: List[Gate] = []
        self._net_count = 0
        self.inputs: Dict[str, int] = {}
        self.outputs: Dict[str, int] = {}
        self._driver: Dict[int, int] = {}  # net id -> index into self.gates
        self._levels: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_net(self) -> int:
        net = self._net_count
        self._net_count += 1
        return net

    def add_input(self, name: str) -> int:
        """Declare a primary input; returns its net id."""
        if name in self.inputs:
            raise ConfigurationError(f"duplicate input name {name!r}")
        net = self.new_net()
        gate = Gate(
            gate_id=len(self.gates),
            gate_type=GateType.INPUT,
            inputs=(),
            output=net,
            group="input",
        )
        self.gates.append(gate)
        self._driver[net] = gate.gate_id
        self.inputs[name] = net
        self._levels = None
        return net

    def add_gate(
        self, gate_type: GateType, inputs: Sequence[int], group: str = ""
    ) -> int:
        """Add a gate driven by existing nets; returns its output net id."""
        for net in inputs:
            if net not in self._driver:
                raise ConfigurationError(f"net {net} has no driver")
        output = self.new_net()
        gate = Gate(
            gate_id=len(self.gates),
            gate_type=gate_type,
            inputs=tuple(inputs),
            output=output,
            group=group,
        )
        self.gates.append(gate)
        self._driver[output] = gate.gate_id
        self._levels = None
        return output

    def mark_output(self, name: str, net: int) -> None:
        """Name a net as a primary output."""
        if name in self.outputs:
            raise ConfigurationError(f"duplicate output name {name!r}")
        if net not in self._driver:
            raise ConfigurationError(f"net {net} has no driver")
        self.outputs[name] = net
        self._levels = None

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    @property
    def gate_count(self) -> int:
        """Logic gates, excluding INPUT markers."""
        return sum(1 for g in self.gates if g.gate_type is not GateType.INPUT)

    def gate_census(self) -> Dict[GateType, int]:
        census: Dict[GateType, int] = {}
        for gate in self.gates:
            if gate.gate_type is GateType.INPUT:
                continue
            census[gate.gate_type] = census.get(gate.gate_type, 0) + 1
        return census

    def group_census(self) -> Dict[str, int]:
        """Gate counts per component group tag."""
        census: Dict[str, int] = {}
        for gate in self.gates:
            if gate.gate_type is GateType.INPUT:
                continue
            census[gate.group] = census.get(gate.group, 0) + 1
        return census

    def levelize(self) -> List[int]:
        """Per-gate levels; INPUT/CONST gates are level 0.

        Gates are appended post-order by construction (every input net
        already has a driver), so a single forward pass levelizes.
        """
        if self._levels is not None:
            return self._levels
        levels: List[int] = [0] * len(self.gates)
        for gate in self.gates:
            if gate.gate_type in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
                levels[gate.gate_id] = 0
                continue
            deepest = 0
            for net in gate.inputs:
                deepest = max(deepest, levels[self._driver[net]])
            levels[gate.gate_id] = deepest + 1
        self._levels = levels
        return levels

    def critical_path_length(self) -> int:
        """Depth in gate levels to the deepest *output* net."""
        if not self.outputs:
            raise ConfigurationError("netlist has no outputs marked")
        levels = self.levelize()
        return max(levels[self._driver[net]] for net in self.outputs.values())

    def weighted_depth(self, delays: Mapping[GateType, float]) -> float:
        """Longest output path with per-gate-type *delays*.

        Unknown gate types default to delay 1.0; INPUT costs 0.
        """
        if not self.outputs:
            raise ConfigurationError("netlist has no outputs marked")
        arrival: List[float] = [0.0] * len(self.gates)
        for gate in self.gates:
            if gate.gate_type in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
                arrival[gate.gate_id] = 0.0
                continue
            latest = 0.0
            for net in gate.inputs:
                latest = max(latest, arrival[self._driver[net]])
            arrival[gate.gate_id] = latest + float(
                delays.get(gate.gate_type, 1.0)
            )
        return max(arrival[self._driver[net]] for net in self.outputs.values())

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, input_values: Mapping[str, int]) -> Dict[str, int]:
        """Levelized evaluation; returns the named output values."""
        missing = set(self.inputs) - set(input_values)
        if missing:
            raise ValueError(f"missing input values for {sorted(missing)}")
        values: Dict[int, int] = {}
        for name, net in self.inputs.items():
            v = input_values[name]
            if v not in (0, 1):
                raise ValueError(f"input {name!r} must be 0 or 1, got {v!r}")
            values[net] = v
        for gate in self.gates:
            if gate.gate_type is GateType.INPUT:
                continue
            values[gate.output] = evaluate_gate(
                gate.gate_type, [values[net] for net in gate.inputs]
            )
        return {name: values[net] for name, net in self.outputs.items()}

    def __repr__(self) -> str:
        return (
            f"Netlist(name={self.name!r}, gates={self.gate_count}, "
            f"inputs={len(self.inputs)}, outputs={len(self.outputs)})"
        )
