"""Gate-level bit-sorter networks (one-bit-slice GBNs of splitters)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..bits import require_power_of_two, unshuffle_index
from .netlist import Netlist
from .splitter_hw import add_splitter

__all__ = ["add_bsn", "build_bsn_netlist"]


def add_bsn(
    netlist: Netlist, input_nets: Sequence[int]
) -> Tuple[List[int], List[List[List[int]]]]:
    """Instantiate a ``2**k``-input BSN over *input_nets*.

    Returns ``(output_nets, controls)`` where
    ``controls[stage][box]`` lists the control nets of that splitter —
    the hooks follower slices attach to.
    """
    k = require_power_of_two(len(input_nets), "BSN size")
    if k < 1:
        raise ValueError("a BSN needs at least two lines")
    n = 1 << k
    current = list(input_nets)
    all_controls: List[List[List[int]]] = []
    for stage in range(k):
        box_size = 1 << (k - stage)
        routed: List[int] = [0] * n
        stage_controls: List[List[int]] = []
        for box in range(1 << stage):
            lo = box * box_size
            sub = current[lo : lo + box_size]
            out, controls = add_splitter(netlist, sub, sub)
            routed[lo : lo + box_size] = out
            stage_controls.append(controls)
        all_controls.append(stage_controls)
        if stage < k - 1:
            connected: List[int] = [0] * n
            for j, net in enumerate(routed):
                connected[unshuffle_index(j, k - stage, k)] = net
            current = connected
        else:
            current = routed
    return current, all_controls


def build_bsn_netlist(k: int) -> Netlist:
    """A standalone ``2**k``-input BSN with ports ``s[j]`` / ``o[j]``."""
    netlist = Netlist(name=f"bsn_{1 << k}")
    inputs = [netlist.add_input(f"s[{j}]") for j in range(1 << k)]
    outputs, _controls = add_bsn(netlist, inputs)
    for j, net in enumerate(outputs):
        netlist.mark_output(f"o[{j}]", net)
    return netlist
