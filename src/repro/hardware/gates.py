"""Gate primitives for netlist construction."""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, Sequence, Tuple

__all__ = ["GateType", "Gate", "GATE_EVALUATORS", "evaluate_gate"]


class GateType(enum.Enum):
    """Supported combinational gate types.

    ``INPUT`` marks primary inputs; ``CONST0``/``CONST1`` tie-offs.
    ``MUX2`` selects ``a`` when ``sel == 0`` and ``b`` when ``sel == 1``
    (input order ``(sel, a, b)``).
    """

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    MUX2 = "mux2"


_ARITY: Dict[GateType, int] = {
    GateType.INPUT: 0,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.AND: 2,
    GateType.OR: 2,
    GateType.XOR: 2,
    GateType.NAND: 2,
    GateType.NOR: 2,
    GateType.XNOR: 2,
    GateType.MUX2: 3,
}


GATE_EVALUATORS: Dict[GateType, Callable[..., int]] = {
    GateType.CONST0: lambda: 0,
    GateType.CONST1: lambda: 1,
    GateType.BUF: lambda a: a,
    GateType.NOT: lambda a: 1 - a,
    GateType.AND: lambda a, b: a & b,
    GateType.OR: lambda a, b: a | b,
    GateType.XOR: lambda a, b: a ^ b,
    GateType.NAND: lambda a, b: 1 - (a & b),
    GateType.NOR: lambda a, b: 1 - (a | b),
    GateType.XNOR: lambda a, b: 1 - (a ^ b),
    GateType.MUX2: lambda sel, a, b: b if sel else a,
}


@dataclasses.dataclass(frozen=True)
class Gate:
    """One gate instance: its type, input net ids and output net id.

    ``group`` tags the logical component the gate belongs to
    (e.g. ``"fn"`` for arbiter function nodes, ``"sw"`` for switch
    cells) so hardware accounting can aggregate in the paper's units.
    """

    gate_id: int
    gate_type: GateType
    inputs: Tuple[int, ...]
    output: int
    group: str = ""

    def __post_init__(self) -> None:
        expected = _ARITY[self.gate_type]
        if len(self.inputs) != expected:
            raise ValueError(
                f"{self.gate_type.value} gate takes {expected} inputs, "
                f"got {len(self.inputs)}"
            )


def evaluate_gate(gate_type: GateType, values: Sequence[int]) -> int:
    """Evaluate one gate on known-0/1 input values."""
    evaluator = GATE_EVALUATORS.get(gate_type)
    if evaluator is None:
        raise ValueError(f"gate type {gate_type} is not evaluable")
    for v in values:
        if v not in (0, 1):
            raise ValueError(f"gate inputs must be bits, got {v!r}")
    return evaluator(*values)
