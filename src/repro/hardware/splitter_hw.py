"""Gate-level splitters ``sp(p)`` (Fig. 4): arbiter + switch column.

The switch-setting logic (algorithm step 5) is one XOR per switch —
``control_t = s(2t) XOR f(2t)`` — tagged as its own group (``swctl``)
so accounting can separate decision logic from the data path.  The
returned control nets are also what the follower slices of a nested
network consume.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..bits import require_power_of_two
from .arbiter_hw import add_arbiter_tree
from .gates import GateType
from .netlist import Netlist
from .switch_cell import add_switch_cell

__all__ = ["add_splitter", "build_splitter_netlist"]


def add_splitter(
    netlist: Netlist,
    data_nets: Sequence[int],
    key_nets: Sequence[int],
) -> Tuple[List[int], List[int]]:
    """Instantiate ``sp(p)`` routing *data_nets* by *key_nets*.

    *key_nets* carry the one-bit-slice values the splitter decides on;
    *data_nets* are the lines physically switched (for the BSN slice
    itself they are the same nets).  Returns
    ``(routed_data_nets, control_nets)``.
    """
    if len(data_nets) != len(key_nets):
        raise ValueError(
            f"{len(data_nets)} data nets do not match {len(key_nets)} key nets"
        )
    p = require_power_of_two(len(key_nets), "splitter size")
    if p < 1:
        raise ValueError("a splitter needs at least two lines")
    if p == 1:
        # sp(1): A(1) is wiring; the upper key bit is the control.
        controls = [key_nets[0]]
    else:
        flags = add_arbiter_tree(netlist, key_nets)
        controls = [
            netlist.add_gate(
                GateType.XOR, (key_nets[2 * t], flags[2 * t]), group="swctl"
            )
            for t in range(len(key_nets) // 2)
        ]
    routed: List[int] = []
    for t, control in enumerate(controls):
        out_upper, out_lower = add_switch_cell(
            netlist, data_nets[2 * t], data_nets[2 * t + 1], control
        )
        routed.extend((out_upper, out_lower))
    return routed, controls


def build_splitter_netlist(p: int) -> Netlist:
    """A standalone one-bit-slice ``sp(p)`` with ports ``s[j]`` / ``o[j]``."""
    if p < 1:
        raise ValueError(f"sp(p) needs p >= 1, got {p}")
    netlist = Netlist(name=f"splitter_sp{p}")
    inputs = [netlist.add_input(f"s[{j}]") for j in range(1 << p)]
    routed, controls = add_splitter(netlist, inputs, inputs)
    for j, net in enumerate(routed):
        netlist.mark_output(f"o[{j}]", net)
    for t, net in enumerate(controls):
        netlist.mark_output(f"c[{t}]", net)
    return netlist
